"""Algorithm 3: the analysis-redesign loop (Section 8).

Pushes a design 15% past its maximum frequency and lets the loop trade
area for speed until all paths are fast enough, reporting rounds, chosen
modules and area cost -- the closed-loop workflow the paper proposes
(with Singh et al.'s optimiser substituted by a delay/area model).
"""

from __future__ import annotations

import pytest

from repro.core.frequency import find_max_frequency
from repro.core.resynthesis import SpeedupModel, run_redesign_loop
from repro.delay import estimate_delays
from repro.generators import random_design

from benchmarks.conftest import emit

_outcome = {}


@pytest.fixture(scope="module")
def overclocked():
    network, schedule = random_design(
        seed=303, n_banks=3, gates_per_bank=40, bits=6, style="latch"
    )
    delays = estimate_delays(network)
    search = find_max_frequency(network, schedule, delays)
    assert search.min_period is not None
    too_fast = search.schedule.scaled("0.85")
    return network, too_fast, delays


def test_redesign_loop(benchmark, overclocked):
    network, schedule, delays = overclocked
    result = benchmark.pedantic(
        lambda: run_redesign_loop(
            network,
            schedule,
            delays,
            speedup=SpeedupModel(speedup_factor=0.7, min_scale=0.2),
            max_rounds=300,
        ),
        rounds=3,
        iterations=1,
    )
    _outcome["loop"] = result
    assert result.success


def test_redesign_report(benchmark, overclocked):
    benchmark(lambda: None)
    result = _outcome.get("loop")
    if result is None:
        pytest.skip("loop bench did not run")
    modules = [r.chosen_module for r in result.rounds if r.chosen_module]
    lines = [
        f"rounds:                {result.num_rounds}",
        f"distinct modules sped up: {len(set(modules))}",
        f"total speed-up applications: {len(modules)}",
        f"area cost (relative): {result.area_cost:.2f}",
        f"worst slack trajectory: "
        + " -> ".join(f"{r.worst_slack:.2f}" for r in result.rounds[:8])
        + (" ..." if result.num_rounds > 8 else ""),
    ]
    emit("Algorithm 3: analysis-redesign loop", lines)
    # With warm-started (incremental) rounds each analysis may settle at
    # a different-but-valid fixed point, so per-round slack values can
    # wobble; the guarantees are convergence and overall improvement.
    slacks = [r.worst_slack for r in result.rounds]
    assert slacks[-1] > slacks[0]
    assert slacks[-1] > 0
