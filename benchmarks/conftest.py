"""Shared helpers for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index) and prints the reproduced rows; the pytest-benchmark
table provides the timing statistics.  Measured-vs-paper numbers are
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def emit(title: str, lines) -> None:
    """Print a reproduced table (visible with -s or on failures)."""
    banner = "=" * len(title)
    print(f"\n{banner}\n{title}\n{banner}")
    for line in lines:
        print(line)


@pytest.fixture(scope="session")
def lib():
    from repro.cells import standard_library

    return standard_library()


@pytest.fixture
def obs_recorder():
    """Opt-in instrumentation for a bench: installs a fresh
    :class:`repro.obs.Recorder` for the duration of the test.

    Benches using this fixture measure the recorder-enabled path; leave
    it out to bench the (default) disabled path.
    """
    from repro import obs

    with obs.recording() as recorder:
        yield recorder


@pytest.fixture
def obs_metrics(request):
    """Like ``obs_recorder`` but also emits the non-zero counters at
    teardown, using the same metric names as ``repro-sta --metrics`` --
    so bench logs and CLI dumps are diffable against each other."""
    from repro import obs

    recorder = obs.Recorder()
    previous = obs.set_recorder(recorder)
    try:
        yield recorder
    finally:
        obs.set_recorder(previous)
    data = obs.metrics_dict(recorder)
    lines = [
        f"{name} {value:g}"
        for name, value in data["counters"].items()
        if value
    ]
    for name, stats in data["spans"].items():
        lines.append(
            f"{name}.total_s {stats['total_s']:.6f} "
            f"(count {stats['count']})"
        )
    emit(f"obs metrics: {request.node.name}", lines)
