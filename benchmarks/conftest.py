"""Shared helpers for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index) and prints the reproduced rows; the pytest-benchmark
table provides the timing statistics.  Measured-vs-paper numbers are
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def emit(title: str, lines) -> None:
    """Print a reproduced table (visible with -s or on failures)."""
    banner = "=" * len(title)
    print(f"\n{banner}\n{title}\n{banner}")
    for line in lines:
        print(line)


@pytest.fixture(scope="session")
def lib():
    from repro.cells import standard_library

    return standard_library()
