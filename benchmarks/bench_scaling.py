"""Scaling shape behind Table 1: analysis time vs design size.

The paper's run times (SM1F ~ hundreds of cells to DES at 3681 cells)
indicate near-linear growth of both pre-processing and analysis with the
number of standard cells; this bench sweeps random two-phase latch
designs from ~100 to ~3200 cells and checks the growth stays sub-quadratic.
"""

from __future__ import annotations

import pytest

from repro.core import Hummingbird
from repro.core.algorithm1 import run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators import random_design
from repro.generators._util import standard_cell_count

from benchmarks.conftest import emit

SIZES = [(2, 50), (4, 100), (8, 200), (8, 400)]  # (banks, gates per bank)

_rows = {}


@pytest.fixture(scope="module", params=range(len(SIZES)))
def design(request):
    banks, gates = SIZES[request.param]
    network, schedule = random_design(
        seed=1000 + request.param,
        n_banks=banks,
        gates_per_bank=gates,
        bits=8,
        style="latch",
    )
    return request.param, network, schedule


def test_scaling_preprocess(benchmark, design):
    index, network, schedule = design
    hb = benchmark.pedantic(
        lambda: Hummingbird(network, schedule), rounds=3, iterations=1
    )
    row = _rows.setdefault(index, {})
    row["cells"] = standard_cell_count(network)
    row["preprocess_s"] = benchmark.stats.stats.mean


def test_scaling_analysis(benchmark, design):
    index, network, schedule = design
    delays = estimate_delays(network)
    model = AnalysisModel(network, schedule, delays)
    engine = SlackEngine(model)
    benchmark(lambda: run_algorithm1(model, engine))
    _rows.setdefault(index, {})["analysis_s"] = benchmark.stats.stats.mean


def test_scaling_report(benchmark):
    benchmark(lambda: None)
    header = f"{'cells':>7} {'preproc_s':>10} {'analysis_s':>11}"
    lines = [header, "-" * len(header)]
    ordered = [
        _rows[i] for i in sorted(_rows) if "analysis_s" in _rows[i]
    ]
    for row in ordered:
        lines.append(
            f"{row['cells']:>7} {row.get('preprocess_s', float('nan')):>10.4f} "
            f"{row['analysis_s']:>11.4f}"
        )
    emit("Scaling: analysis time vs standard cells", lines)
    if len(ordered) >= 2:
        first, last = ordered[0], ordered[-1]
        cell_ratio = last["cells"] / first["cells"]
        time_ratio = last["analysis_s"] / max(first["analysis_s"], 1e-9)
        lines_note = (
            f"cells x{cell_ratio:.1f} -> analysis x{time_ratio:.1f}"
        )
        print(lines_note)
        # Sub-quadratic growth (near-linear claim, with generous slop for
        # timer noise on small designs).
        assert time_ratio < cell_ratio**2
