"""Dynamic validation: event simulation vs static analysis.

Implements the paper's definition of intended behaviour directly: the
real-delay system must capture the same values as the ideal
(delays-to-zero) system.  On STA-clean designs the simulator must find
no capture mismatch and no setup violation under random stimulus; the
bench times the simulation and reports the cross-check outcome for a
flat FSM, a cycle-borrowing latch pipeline and the four-phase Figure 1
circuit.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import run_algorithm1
from repro.core.mindelay import check_min_delays
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators import fig1_circuit, generate_sm1f, latch_pipeline
from repro.sim import dynamic_intended_check

from benchmarks.conftest import emit

WORKLOADS = {
    "SM1F": lambda: generate_sm1f(n_gates=120, period=150),
    "borrowing": lambda: latch_pipeline(
        stages=3, stage_lengths=[16, 2, 16], period=30
    ),
    "fig1": lambda: fig1_circuit(period=100),
}

_rows = {}


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_dynamic_validation(benchmark, name):
    network, schedule = WORKLOADS[name]()
    delays = estimate_delays(network)
    model = AnalysisModel(network, schedule, delays)
    engine = SlackEngine(model)
    sta = run_algorithm1(model, engine)
    assert sta.intended
    assert not check_min_delays(model, engine)

    check = benchmark.pedantic(
        lambda: dynamic_intended_check(
            network, schedule, delays, cycles=8, seed=1989
        ),
        rounds=3,
        iterations=1,
    )
    _rows[name] = (sta.worst_slack, check)
    assert check.intended, check.mismatches[:3]


def test_dynamic_validation_report(benchmark):
    benchmark(lambda: None)
    header = (
        f"{'design':<10} {'STA slack':>10} {'captures':>9} "
        f"{'mismatches':>11} {'setup viol':>11}"
    )
    lines = [header, "-" * len(header)]
    for name, (slack, check) in _rows.items():
        lines.append(
            f"{name:<10} {slack:>10.3f} {check.captures_compared:>9} "
            f"{len(check.mismatches):>11} {len(check.setup_violations):>11}"
        )
    lines.append("")
    lines.append(
        "every STA-clean design captures identically to the ideal system"
    )
    emit("Dynamic validation: simulation vs static analysis", lines)
