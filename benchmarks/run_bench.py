#!/usr/bin/env python
"""Headless benchmark harness: ``python benchmarks/run_bench.py``.

Unlike the pytest-benchmark suites next to it (which reproduce paper
tables interactively), this harness is built for CI perf tracking: it
runs a fixed registry of workloads with no test framework in the way,
measures wall time, peak RSS and the key :mod:`repro.obs` counters, and
writes a machine-readable ``BENCH_PR<current>.json`` at the repo root
(override with ``--output``)::

    python benchmarks/run_bench.py             # full workloads
    python benchmarks/run_bench.py --quick     # CI-sized workloads
    python benchmarks/run_bench.py --only analyze_pipeline --repeat 3
    python benchmarks/run_bench.py --output /tmp/bench.json

Output schema (``repro.bench/1``)::

    {
      "schema": "repro.bench/1",
      "quick": true,
      "benches": {
        "<name>": {
          "wall_s": 0.0123,          # best of --repeat runs
          "peak_rss_kb": 43210,      # ru_maxrss after the run
          "counters": {...},         # non-zero obs counters
          "extra": {...}             # workload-specific facts
        }, ...
      }
    }

The counters make regressions diagnosable: a wall-time jump with flat
``alg1.iterations_total`` is a code slowdown; a jump *with* more
iterations is a convergence regression (paper, Section 8).
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: The PR this harness currently reports for; bump alongside new
#: workloads so every PR leaves its own ``BENCH_PR<n>.json`` artifact.
CURRENT_PR = 10
DEFAULT_OUTPUT = REPO_ROOT / f"BENCH_PR{CURRENT_PR}.json"

from repro import obs  # noqa: E402
from repro.core.analyzer import Hummingbird  # noqa: E402
from repro.generators import random_design  # noqa: E402
from repro.generators.pipelines import latch_pipeline  # noqa: E402
from repro.report import (  # noqa: E402
    auditing,
    build_manifest,
    diff_manifests,
)

#: Counters copied into every bench row (when non-zero).
KEY_COUNTERS = (
    "alg1.runs",
    "alg1.iterations_total",
    "alg1.forward_cycles",
    "alg1.backward_cycles",
    "slack.evaluations",
    "slack.nodes_visited",
    "transfer.complete_forward.moved",
    "transfer.complete_backward.moved",
)

Workload = Callable[[bool], Dict[str, object]]
_REGISTRY: List[Tuple[str, Workload]] = []


def bench(name: str):
    def register(func: Workload) -> Workload:
        _REGISTRY.append((name, func))
        return func

    return register


def _pipeline(quick: bool):
    stages = 6 if quick else 12
    lengths = [12] + [1] * (stages - 1)
    return latch_pipeline(
        stages=stages, stage_lengths=lengths, period=12.0
    )


def _random(quick: bool):
    banks, gates = (4, 100) if quick else (8, 400)
    return random_design(
        seed=2026, n_banks=banks, gates_per_bank=gates, bits=8,
        style="latch",
    )


@bench("analyze_pipeline")
def bench_analyze_pipeline(quick: bool) -> Dict[str, object]:
    """Algorithm 1 on the cycle-borrowing latch pipeline."""
    network, schedule = _pipeline(quick)
    result = Hummingbird(network, schedule).analyze()
    return {
        "intended": result.intended,
        "iterations": result.algorithm1.iterations.total,
    }


@bench("analyze_random")
def bench_analyze_random(quick: bool) -> Dict[str, object]:
    """Algorithm 1 on a randomly generated multi-bank latch design."""
    network, schedule = _random(quick)
    result = Hummingbird(network, schedule).analyze()
    return {
        "intended": result.intended,
        "iterations": result.algorithm1.iterations.total,
    }


@bench("audit_overhead")
def bench_audit_overhead(quick: bool) -> Dict[str, object]:
    """Same pipeline analysis with the slack-transfer audit trail on.

    Comparing ``wall_s`` against ``analyze_pipeline`` bounds the
    provenance-recording overhead.
    """
    network, schedule = _pipeline(quick)
    with auditing() as trail:
        result = Hummingbird(network, schedule).analyze()
    return {
        "intended": result.intended,
        "audit_events": trail.total_events,
        "total_moved": round(trail.total_moved, 6),
    }


@bench("forensics_report")
def bench_forensics_report(quick: bool) -> Dict[str, object]:
    """Explain every capture endpoint and render JSON + HTML reports."""
    network, schedule = _pipeline(quick)
    result = Hummingbird(network, schedule).analyze()
    forensics = result.path_forensics()
    explained = [
        forensics.explain(name)
        for name in sorted(result.algorithm1.slacks.capture)
    ]
    json_doc = forensics.to_json(explained)
    html_doc = forensics.render_html(explained)
    return {
        "endpoints": len(explained),
        "json_bytes": len(json_doc),
        "html_bytes": len(html_doc),
        "borrow_links": sum(len(f.borrow_chain) for f in explained),
    }


def _write_job_set(
    directory: Path, quick: bool, n_jobs: int
) -> "List[object]":
    """Materialise ``n_jobs`` distinct designs + a batch job list."""
    from repro.clocks.serialize import save_schedule
    from repro.netlist.persistence import save_network
    from repro.service import BatchJob

    jobs = []
    for index in range(n_jobs):
        banks, gates = (2, 40) if quick else (4, 120)
        network, schedule = random_design(
            seed=3000 + index,
            n_banks=banks,
            gates_per_bank=gates,
            bits=4,
            style="latch",
        )
        netlist = directory / f"job{index}.json"
        clocks = directory / f"job{index}.clocks.json"
        save_network(network, netlist)
        save_schedule(schedule, clocks)
        jobs.append(
            BatchJob(f"job{index}", str(netlist), str(clocks))
        )
    return jobs


@bench("batch_cold_vs_warm")
def bench_batch_cold_vs_warm(quick: bool) -> Dict[str, object]:
    """The PR-3 headline: a batch re-run of an unchanged job set must be
    served entirely from the content-addressed cache -- zero Algorithm 1
    iterations -- and be >=5x faster than the cold run."""
    import tempfile

    from repro.service import BatchEngine, ResultCache

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        directory = Path(tmp)
        jobs = _write_job_set(directory, quick, n_jobs=3 if quick else 6)
        engine = BatchEngine(
            cache=ResultCache(directory / "cache"), max_workers=2
        )
        started = time.perf_counter()
        cold = engine.run(jobs)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm = engine.run(jobs)
        warm_s = time.perf_counter() - started
    return {
        "jobs": cold.jobs,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 2) if warm_s else None,
        "cold_iterations": cold.total_iterations,
        "warm_iterations": warm.total_iterations,
        "warm_hit_rate": warm.hit_rate,
    }


@bench("batch_throughput")
def bench_batch_throughput(quick: bool) -> Dict[str, object]:
    """Distinct-design batch throughput through the worker pool."""
    import tempfile

    from repro.service import BatchEngine, ResultCache

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        directory = Path(tmp)
        jobs = _write_job_set(directory, quick, n_jobs=4 if quick else 8)
        engine = BatchEngine(
            cache=ResultCache(directory / "cache"), max_workers=4
        )
        started = time.perf_counter()
        report = engine.run(jobs)
        wall = time.perf_counter() - started
    return {
        "jobs": report.jobs,
        "computed": report.computed,
        "failed": report.failed,
        "jobs_per_s": round(report.jobs / wall, 3) if wall else None,
        "iterations": report.total_iterations,
    }


def _fabric_corpus(directory: Path, quick: bool):
    """A generator corpus with overlapping sub-circuits across designs.

    Two-phase latch pipelines of increasing depth share every prefix
    stage's cluster (the cluster digest is a function of the
    sub-circuit's content, not the owning design), plus a couple of
    random designs that share nothing -- realistic probe volume.
    Returns ``(jobs, grown_job)`` where ``grown_job`` is one *deeper*
    pipeline absent from the corpus: a guaranteed result-cache miss
    whose clusters were all (but the tail) stored by *other* designs.
    """
    from repro.clocks.serialize import save_schedule
    from repro.generators.pipelines import latch_pipeline
    from repro.netlist.persistence import save_network
    from repro.service import BatchJob

    depths = range(3, 7 if quick else 9)
    random_seeds = range(4000, 4002 if quick else 4003)

    def _job(name, network, schedule):
        netlist = directory / f"{name}.json"
        clocks = directory / f"{name}.clocks.json"
        save_network(network, netlist)
        save_schedule(schedule, clocks)
        return BatchJob(name, str(netlist), str(clocks))

    jobs = []
    for stages in depths:
        network, schedule = latch_pipeline(
            stages=stages, period=40.0, name=f"pipe{stages}"
        )
        jobs.append(_job(f"pipe{stages}", network, schedule))
    for seed in random_seeds:
        banks, gates = (2, 30) if quick else (3, 60)
        network, schedule = random_design(
            seed=seed, n_banks=banks, gates_per_bank=gates, bits=4,
            style="latch",
        )
        jobs.append(_job(f"rand{seed}", network, schedule))
    grown_stages = max(depths) + 1
    network, schedule = latch_pipeline(
        stages=grown_stages, period=40.0, name=f"pipe{grown_stages}"
    )
    grown = _job(f"pipe{grown_stages}", network, schedule)
    return jobs, grown


@bench("fabric_warm_scaling")
def bench_fabric_warm_scaling(quick: bool) -> Dict[str, object]:
    """The PR-8 headline: two cache-fabric peers turn separate "hosts"
    into one warm cache.  Host A computes the corpus cold and pushes
    every result + cluster artifact into the sharded fabric; host B
    (fresh local caches, same peers) must serve >= 90% of its probes
    remotely.  A *grown* design host A never saw then computes on host
    B with a warm cluster tier: its prefix clusters were stored by
    *different* designs -- the measured cross-design cluster hit rate
    must be > 0."""
    import tempfile

    from repro.service import (
        BatchEngine,
        CacheServer,
        RemoteCache,
        ResultCache,
        TieredCache,
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        directory = Path(tmp)
        servers = [
            CacheServer(directory / f"peer{index}") for index in range(2)
        ]
        try:
            peers = [
                f"http://{host}:{port}"
                for host, port in (srv.start() for srv in servers)
            ]
            jobs, grown = _fabric_corpus(directory, quick)

            def _host(label: str):
                remote = RemoteCache(peers, timeout_s=2.0)
                engine = BatchEngine(
                    cache=TieredCache(
                        ResultCache(directory / label / "cache"), remote
                    ),
                    cluster_cache=str(directory / label / "clusters"),
                    peers=peers,
                    max_workers=2,
                )
                return engine, remote

            # Host A: cold compute -- fills both fabric shards.
            engine_a, remote_a = _host("host_a")
            started = time.perf_counter()
            cold = engine_a.run(jobs)
            cold_s = time.perf_counter() - started

            # Host B, fresh local caches: the same corpus must be
            # served from the fabric, not recomputed.
            engine_b, remote_b = _host("host_b")
            started = time.perf_counter()
            warm = engine_b.run(jobs)
            warm_s = time.perf_counter() - started
            warm_remote_hit_rate = remote_b.stats.hit_rate

            # Host B then meets a design nobody ever analyzed: a
            # result-cache miss whose prefix clusters are already in
            # the fabric -- stored by *other* (shallower) designs.
            grown_report = engine_b.run([grown])
            outcome = grown_report.outcomes[0]
            cluster_info = outcome.cluster_cache or {}
        finally:
            for srv in servers:
                srv.stop()
    return {
        "jobs": cold.jobs,
        "peers": len(peers),
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 2) if warm_s else None,
        "warm_cached": warm.cached,
        "warm_remote_hit_rate": round(warm_remote_hit_rate, 4),
        "remote_stores": remote_a.stats.remote_stores,
        "shard_objects": [srv.cache.stats.entries for srv in servers],
        "grown_status": outcome.status,
        "cross_design_cluster_hits": int(cluster_info.get("hits", 0)),
        "cross_design_cluster_hit_rate": float(
            cluster_info.get("hit_rate", 0.0)
        ),
    }


@bench("service_telemetry_overhead")
def bench_service_telemetry_overhead(quick: bool) -> Dict[str, object]:
    """The PR-4 headline: the always-on daemon telemetry (service
    recorder, request/queue-wait/handle histograms, health snapshot
    bookkeeping) must cost <5% on warm analyze latency versus a
    ``telemetry=False`` daemon.

    Methodology: per-request wall times over many warm round trips,
    compared at the *minimum* -- the deterministic latency floor --
    because a ~0.5 ms Unix-socket round trip is otherwise dominated by
    scheduler noise.  The opt-in access log is measured as a third arm
    and reported separately (it is off by default, so it does not gate
    the 5%% bound).
    """
    import tempfile

    from repro.service import DaemonClient, TimingDaemon

    rounds = 150 if quick else 400

    def _warm_floor(tmp: Path, label: str, **kwargs: object) -> float:
        """Minimum warm-analyze latency against one daemon."""
        from repro.clocks.serialize import save_schedule
        from repro.netlist.persistence import save_network

        network, schedule = _pipeline(quick)
        netlist = tmp / f"design_{label}.json"
        clocks = tmp / f"clocks_{label}.json"
        save_network(network, netlist)
        save_schedule(schedule, clocks)
        socket_path = tmp / f"bench_{label}.sock"
        samples = []
        # Measure the *always-on* telemetry cost: requests must not be
        # traced (the harness's own recorder would make every request
        # carry a trace context, adding snapshot/merge work to both
        # arms and masking the difference under test).
        previous = obs.set_recorder(None)
        try:
            with TimingDaemon(str(socket_path), **kwargs):
                with DaemonClient(str(socket_path)) as client:
                    for __ in range(10):  # warm the incremental engine
                        client.analyze(str(netlist), str(clocks))
                    for __ in range(rounds):
                        started = time.perf_counter()
                        response = client.analyze(
                            str(netlist), str(clocks)
                        )
                        samples.append(time.perf_counter() - started)
                        assert response["ok"]
        finally:
            obs.set_recorder(previous)
        return min(samples)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        directory = Path(tmp)
        off_s = _warm_floor(directory, "off", telemetry=False)
        on_s = _warm_floor(directory, "on", telemetry=True)
        log_s = _warm_floor(
            directory,
            "onlog",
            telemetry=True,
            access_log=str(directory / "bench.access.jsonl"),
        )
    overhead_pct = ((on_s - off_s) / off_s * 100.0) if off_s else 0.0
    log_pct = ((log_s - off_s) / off_s * 100.0) if off_s else 0.0
    return {
        "rounds": rounds,
        "warm_analyze_off_s": round(off_s, 6),
        "warm_analyze_on_s": round(on_s, 6),
        "warm_analyze_accesslog_s": round(log_s, 6),
        "overhead_pct": round(overhead_pct, 2),
        "accesslog_overhead_pct": round(log_pct, 2),
    }


@bench("snapshot_read_concurrency")
def bench_snapshot_read_concurrency(quick: bool) -> Dict[str, object]:
    """The PR-10 headline: copy-on-write snapshot reads must collapse
    read-path queue-wait under concurrency without changing a single
    answer.

    A 90% read / 10% mutate mixed workload with 8 concurrent clients
    (7 reader threads + 1 mutator thread driving ``handle_line``
    directly) runs twice against the same design: once with
    ``snapshot_reads=False`` (every analyze queues on the per-design
    lock -- the pre-PR-10 behaviour) and once with the lock-free
    snapshot path on.  Queue waits are exact per-request samples read
    back from the daemon's handler-thread state, not histogram
    interpolations.  A serial reference run of the identical mutation
    sequence supplies the complete set of legal answers: every
    snapshot-arm response ``manifest_digest`` must be a member
    (snapshot reads -- lock-free hits and double-checked misses alike
    -- republish published responses byte-for-byte), while the locked
    arm is held to ``timing_digest`` membership (its warm re-analyses
    converge in fewer Algorithm 1 iterations than the reference
    analyses, so their manifests hash differently even though the
    answer is identical -- which is exactly why the snapshot path's
    byte-identity is worth paying for).  Both arms' quiesced final
    answers must equal the serial final answer.

    Gate (asserted by CI, reported here): ``queue_wait_p95_collapse_x``
    >= 5 and ``digests_identical`` is true.
    """
    import random
    import tempfile
    import threading

    from repro.clocks.serialize import save_schedule
    from repro.netlist.persistence import save_network
    from repro.service import TimingDaemon

    readers = 7
    reads_per_thread = 30 if quick else 80
    total_reads = readers * reads_per_thread
    # ~10% of total traffic is mutations: m / (reads + m) ~= 0.1.
    n_mutations = max(2, round(total_reads / 9))

    def _mutation_requests(netlist: str, clocks: str) -> List[Dict]:
        rng = random.Random(1989)
        cells = ["s0_i0", "s0_i5", "s1_i0", "s2_i0", "s3_i0"]
        return [
            {
                "op": "mutate",
                "netlist": netlist,
                "clocks": clocks,
                "action": "scale_cell",
                "cell": rng.choice(cells),
                "factor": round(rng.uniform(1.01, 1.15), 3),
                "analyze": True,
            }
            for __ in range(n_mutations)
        ]

    def _send(daemon: "TimingDaemon", request: Dict) -> Dict:
        response = daemon.handle_line(
            json.dumps(request).encode("utf-8")
        )
        assert response.get("ok"), response.get("error")
        return response

    def _p95(samples: List[float]) -> float:
        ordered = sorted(samples)
        return ordered[int(0.95 * (len(ordered) - 1))]

    def _arm(
        tmp: Path,
        label: str,
        snapshot_reads: bool,
        netlist: str,
        clocks: str,
        mutation_list: List[Dict],
    ) -> Dict[str, object]:
        daemon = TimingDaemon(
            str(tmp / f"{label}.sock"), snapshot_reads=snapshot_reads
        )
        analyze_req = {"op": "analyze", "netlist": netlist, "clocks": clocks}
        _send(daemon, dict(analyze_req))  # warm load + first publish
        waits: List[List[float]] = [[] for __ in range(readers)]
        manifests: List[List[str]] = [[] for __ in range(readers + 1)]
        timings: List[List[str]] = [[] for __ in range(readers + 1)]
        failures: List[BaseException] = []

        def reader(slot: int) -> None:
            try:
                for __ in range(reads_per_thread):
                    response = _send(daemon, dict(analyze_req))
                    manifests[slot].append(response["manifest_digest"])
                    timings[slot].append(response["timing_digest"])
                    # Exact per-request queue wait: handle_line stores it
                    # thread-locally, and this thread ran the handler.
                    wait = getattr(daemon._local, "queue_wait", None)
                    if wait is not None:
                        waits[slot].append(wait)
            except BaseException as exc:  # noqa: BLE001 -- report, not hang
                failures.append(exc)

        def mutator() -> None:
            try:
                for mutation in mutation_list:
                    analysis = _send(daemon, dict(mutation))["analysis"]
                    manifests[readers].append(analysis["manifest_digest"])
                    timings[readers].append(analysis["timing_digest"])
                    time.sleep(0.002)  # spread edits across the read phase
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(readers)
        ]
        threads.append(threading.Thread(target=mutator))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)
        assert not failures, failures
        final = _send(daemon, dict(analyze_req))
        read_waits = [w for rows in waits for w in rows]
        return {
            "p95_s": _p95(read_waits),
            "manifests": {d for rows in manifests for d in rows},
            "timings": {d for rows in timings for d in rows},
            "final_manifest": final["manifest_digest"],
            "final_timing": final["timing_digest"],
            "snapshot_hits": daemon.recorder.counters.get(
                "service.daemon.snapshot_hits", 0
            ),
        }

    previous = obs.set_recorder(None)  # untraced requests only
    try:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            directory = Path(tmp)
            network, schedule = _pipeline(quick)
            netlist = str(directory / "design.json")
            clocks = str(directory / "clocks.json")
            save_network(network, netlist)
            save_schedule(schedule, clocks)
            mutation_list = _mutation_requests(netlist, clocks)

            # Serial reference: the same ops, one thread.  The digest
            # after the initial load plus after each mutation is the
            # complete set of answers the design may legally give.
            serial = TimingDaemon(str(directory / "serial.sock"))
            first = _send(
                serial,
                {"op": "analyze", "netlist": netlist, "clocks": clocks},
            )
            ref_manifests = [first["manifest_digest"]]
            ref_timings = [first["timing_digest"]]
            for mutation in mutation_list:
                analysis = _send(serial, dict(mutation))["analysis"]
                ref_manifests.append(analysis["manifest_digest"])
                ref_timings.append(analysis["timing_digest"])
            legal_manifests = set(ref_manifests)
            legal_timings = set(ref_timings)

            locked = _arm(
                directory, "locked", False, netlist, clocks, mutation_list
            )
            snap = _arm(
                directory, "snapshot", True, netlist, clocks, mutation_list
            )
    finally:
        obs.set_recorder(previous)

    digests_identical = (
        snap["manifests"] <= legal_manifests
        and snap["final_manifest"] == ref_manifests[-1]
    )
    locked_answers_match = (
        locked["timings"] <= legal_timings
        and locked["final_timing"] == ref_timings[-1]
    )
    collapse = locked["p95_s"] / max(snap["p95_s"], 1e-9)
    return {
        "clients": readers + 1,
        "reads": total_reads,
        "mutations": n_mutations,
        "queue_wait_p95_locked_s": round(locked["p95_s"], 6),
        "queue_wait_p95_snapshot_s": round(snap["p95_s"], 9),
        "queue_wait_p95_collapse_x": round(collapse, 1),
        "digests_identical": digests_identical,
        "locked_answers_match": locked_answers_match,
        "snapshot_hits": snap["snapshot_hits"],
        "legal_digests": len(legal_manifests),
    }


@bench("profiler_overhead")
def bench_profiler_overhead(quick: bool) -> Dict[str, object]:
    """The PR-6 headline: the span-attributed sampling profiler must be
    effectively free when off and cost <= 5% at the default 100 Hz.

    Three arms over the same traced pipeline analysis, compared at the
    minimum wall time (the deterministic floor, same methodology as
    ``service_telemetry_overhead``):

    * ``baseline`` -- recorder active, no profiler (the span-stack
      bookkeeping the profiler reads is always on, so this arm prices
      it in);
    * ``on`` -- a :class:`repro.obs.SamplingProfiler` running at
      100 Hz for the whole arm;
    * attribution -- from the ``on`` arm's profile document: the share
      of samples landing inside an open span must stay >= 90% for the
      phase table to mean anything.
    """
    rounds = 12 if quick else 30
    network, schedule = _random(quick)

    def _floor(hz: Optional[float]) -> Tuple[float, Optional[dict]]:
        """Minimum per-round analyze wall under one recorder, with the
        profiler (when ``hz``) running across the *whole* arm -- the
        way ``repro-sta analyze --profile`` runs it."""
        samples = []
        with obs.recording() as recorder:
            profiler = (
                obs.SamplingProfiler(hz=hz, recorder=recorder)
                if hz
                else None
            )
            if profiler is not None:
                profiler.start()
            try:
                for __ in range(rounds):
                    started = time.perf_counter()
                    Hummingbird(network, schedule).analyze()
                    samples.append(time.perf_counter() - started)
            finally:
                doc = profiler.stop() if profiler is not None else None
        return min(samples), doc

    off_s, __ = _floor(None)
    on_s, doc = _floor(100.0)
    total = int(doc["samples"]) if doc else 0
    attributed_pct = (
        int(doc["attributed"]) / total * 100.0 if total else 0.0
    )
    overhead_pct = ((on_s - off_s) / off_s * 100.0) if off_s else 0.0
    return {
        "rounds": rounds,
        "hz": 100.0,
        "analyze_off_s": round(off_s, 6),
        "analyze_on_s": round(on_s, 6),
        "overhead_pct": round(overhead_pct, 2),
        "profile_samples": total,
        "attributed_pct": round(attributed_pct, 2),
    }


@bench("watchdog_overhead")
def bench_watchdog_overhead(quick: bool) -> Dict[str, object]:
    """The PR-7 headline: the self-diagnosis plumbing on the request
    path -- stall-watchdog track/annotate/untrack plus one flight-ring
    append per request -- must stay within the noise floor of a warm
    analyze round trip.

    Two arms, same min-floor methodology as
    ``service_telemetry_overhead`` (both arms keep telemetry *on*, so
    only the PR-7 additions differ):

    * ``off`` -- watchdog and flight recorder disabled
      (``stall_timeout_s=None``, ``flight_capacity=0``);
    * ``on``  -- daemon defaults (30 s watchdog, 256-event ring, alert
      engine evaluating in the history thread, off the request path).
    """
    import tempfile

    from repro.service import DaemonClient, TimingDaemon

    rounds = 150 if quick else 400

    def _warm_floor(tmp: Path, label: str, **kwargs: object) -> float:
        from repro.clocks.serialize import save_schedule
        from repro.netlist.persistence import save_network

        network, schedule = _pipeline(quick)
        netlist = tmp / f"design_{label}.json"
        clocks = tmp / f"clocks_{label}.json"
        save_network(network, netlist)
        save_schedule(schedule, clocks)
        socket_path = tmp / f"bench_{label}.sock"
        samples = []
        previous = obs.set_recorder(None)  # untraced requests only
        try:
            with TimingDaemon(str(socket_path), **kwargs):
                with DaemonClient(str(socket_path)) as client:
                    for __ in range(10):  # warm the incremental engine
                        client.analyze(str(netlist), str(clocks))
                    for __ in range(rounds):
                        started = time.perf_counter()
                        response = client.analyze(
                            str(netlist), str(clocks)
                        )
                        samples.append(time.perf_counter() - started)
                        assert response["ok"]
        finally:
            obs.set_recorder(previous)
        return min(samples)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        directory = Path(tmp)
        off_s = _warm_floor(
            directory, "off", stall_timeout_s=None, flight_capacity=0
        )
        on_s = _warm_floor(directory, "on")
    overhead_pct = ((on_s - off_s) / off_s * 100.0) if off_s else 0.0
    return {
        "rounds": rounds,
        "warm_analyze_off_s": round(off_s, 6),
        "warm_analyze_on_s": round(on_s, 6),
        "overhead_pct": round(overhead_pct, 2),
    }


@bench("collector_overhead")
def bench_collector_overhead(quick: bool) -> Dict[str, object]:
    """The PR-9 headline: the fleet observability plane -- the
    tail-sampling trace store on the request tail plus an embedded
    collector scraping the daemon's own sidecar every second -- must
    cost <= 5% on warm analyze latency.

    Two arms, same min-floor methodology as
    ``service_telemetry_overhead`` (both arms keep telemetry and the
    HTTP sidecar on, so only the PR-9 additions differ):

    * ``off`` -- sidecar only, no trace store, no collector;
    * ``on``  -- ``--trace-dir`` at the default 5%% sample rate and a
      ``serve --collect``-style :class:`FleetCollector` whose peers
      file points back at this daemon.

    The arms are *interleaved* (off, on, off, on) and each arm keeps
    the minimum across its passes: host-load drift between passes
    otherwise swamps the tens-of-microseconds delta under test.
    """
    import os
    import tempfile

    from repro.service import DaemonClient, FleetCollector, TimingDaemon

    rounds = 150 if quick else 400

    def _warm_floor(tmp: Path, label: str, **kwargs: object) -> float:
        from repro.clocks.serialize import save_schedule
        from repro.netlist.persistence import save_network

        network, schedule = _pipeline(quick)
        netlist = tmp / f"design_{label}.json"
        clocks = tmp / f"clocks_{label}.json"
        save_network(network, netlist)
        save_schedule(schedule, clocks)
        socket_path = tmp / f"bench_{label}.sock"
        samples = []
        previous = obs.set_recorder(None)  # untraced requests only
        try:
            with TimingDaemon(
                str(socket_path), http_port=0, **kwargs
            ) as daemon:
                collector = kwargs.get("collector")
                if collector is not None:
                    # Point the collector back at this daemon now that
                    # the sidecar port is known; the next sweep reloads.
                    host, port = daemon.http_address
                    peers_file = Path(collector.peers_file)
                    peers_file.write_text(f"http://{host}:{port}\n")
                    stamp = peers_file.stat().st_mtime + 10
                    os.utime(peers_file, (stamp, stamp))
                with DaemonClient(str(socket_path)) as client:
                    for __ in range(10):  # warm the incremental engine
                        client.analyze(str(netlist), str(clocks))
                    for __ in range(rounds):
                        started = time.perf_counter()
                        response = client.analyze(
                            str(netlist), str(clocks)
                        )
                        samples.append(time.perf_counter() - started)
                        assert response["ok"]
        finally:
            obs.set_recorder(previous)
        return min(samples)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        directory = Path(tmp)
        off_s = on_s = float("inf")
        swept = 0
        for arm in range(2):
            off_s = min(off_s, _warm_floor(directory, f"off{arm}"))
            peers_file = directory / f"peers{arm}.txt"
            peers_file.write_text("")
            collector = FleetCollector(
                peers_file, interval_s=1.0, timeout_s=1.0,
                http_port=None,
            )
            on_s = min(
                on_s,
                _warm_floor(
                    directory,
                    f"on{arm}",
                    trace_dir=directory / f"traces{arm}",
                    collector=collector,
                ),
            )
            swept += collector.health()["sweeps"]
    overhead_pct = ((on_s - off_s) / off_s * 100.0) if off_s else 0.0
    return {
        "rounds": rounds,
        "warm_analyze_off_s": round(off_s, 6),
        "warm_analyze_on_s": round(on_s, 6),
        "overhead_pct": round(overhead_pct, 2),
        "collector_sweeps": int(swept),
    }


@bench("cluster_invalidation")
def bench_cluster_invalidation(quick: bool) -> Dict[str, object]:
    """The PR-5 headline: after a one-gate edit, a cluster-cached
    re-analysis recomputes only the dirty cluster's artifact -- the
    clean-cluster hit rate stays >= 90% -- and beats the full-triple
    path (which rebuilds every cluster artifact from scratch), while
    the answer stays byte-identical to the from-scratch run.
    """
    import tempfile

    from repro.core.clusters import extract_clusters
    from repro.delay.estimator import estimate_delays
    from repro.report.manifest import manifest_digest
    from repro.service import ClusterCache

    stages = 12
    lengths = [10 if quick else 40] + [2 if quick else 4] * (stages - 1)
    network, schedule = latch_pipeline(
        stages=stages, stage_lengths=lengths, period=60.0
    )
    config_sha = "0" * 64  # one fixed analysis configuration
    delays = estimate_delays(network)
    edits = 3 if quick else 6

    def _pass(store: ClusterCache, current):
        """One service-style analyze: warm the artifact store, then
        run Algorithm 1 on the warmed clusters."""
        started = time.perf_counter()
        clusters = extract_clusters(network)
        warmup = store.warm(
            network, schedule, current, config_sha, clusters=clusters
        )
        result = Hummingbird(
            network, schedule, delays=current, clusters=clusters
        ).analyze()
        return time.perf_counter() - started, warmup, result

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        directory = Path(tmp)
        store = ClusterCache(directory / "clusters")
        __, cold_warmup, __ = _pass(store, delays)  # cold fill
        cached_s = 0.0
        full_s = 0.0
        hit_rates = []
        digests_equal = True
        for index in range(edits):
            delays = delays.with_scaled_cell(
                f"s{index % stages}_i0", 1.25
            )
            # Cluster-granular path: only the dirty cluster recomputes.
            wall, warmup, cached = _pass(store, delays)
            cached_s += wall
            hit_rates.append(warmup.hit_rate)
            # Full-triple invalidation: an empty store forces every
            # cluster artifact to be rebuilt (the pre-PR-5 behaviour).
            scratch = ClusterCache(
                directory / f"scratch{index}"
            )
            wall, __, fresh = _pass(scratch, delays)
            full_s += wall
            digests_equal = digests_equal and (
                manifest_digest(cached.manifest())
                == manifest_digest(fresh.manifest())
            )
    return {
        "clusters": cold_warmup.clusters,
        "edits": edits,
        "clean_hit_rate_min": round(min(hit_rates), 4),
        "cached_s": round(cached_s, 6),
        "full_triple_s": round(full_s, 6),
        "speedup": round(full_s / cached_s, 2) if cached_s else None,
        "digests_equal": digests_equal,
    }


@bench("manifest_diff")
def bench_manifest_diff(quick: bool) -> Dict[str, object]:
    """Build two run manifests and diff them (the CI primitive)."""
    network, schedule = _pipeline(quick)
    analyzer = Hummingbird(network, schedule)
    result = analyzer.analyze()
    manifest_a = build_manifest(analyzer, result, label="a")
    manifest_b = build_manifest(analyzer, result, label="b")
    diff = diff_manifests(manifest_a, manifest_b)
    return {
        "endpoints": len(diff.endpoints),
        "has_regression": diff.has_regression,
    }


def run_one(
    name: str, workload: Workload, quick: bool, repeat: int
) -> Dict[str, object]:
    best_wall: Optional[float] = None
    counters: Dict[str, float] = {}
    extra: Dict[str, object] = {}
    for __ in range(max(1, repeat)):
        with obs.recording() as recorder:
            start = time.perf_counter()
            extra = workload(quick)
            wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
            counters = {
                key: recorder.counters[key]
                for key in KEY_COUNTERS
                if recorder.counters.get(key)
            }
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "wall_s": round(best_wall or 0.0, 6),
        "peak_rss_kb": int(peak_rss_kb),
        "counters": counters,
        "extra": extra,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workloads"
    )
    parser.add_argument(
        "--repeat", type=int, default=2,
        help="runs per bench; best wall time is kept (default 2)",
    )
    parser.add_argument(
        "--only", action="append",
        help="run only this bench (repeatable)",
    )
    parser.add_argument(
        "--output", "--out", dest="output",
        default=str(DEFAULT_OUTPUT),
        help="output JSON path "
        f"(default: BENCH_PR{CURRENT_PR}.json at repo root)",
    )
    args = parser.parse_args(argv)

    selected = [
        (name, workload)
        for name, workload in _REGISTRY
        if not args.only or name in args.only
    ]
    if not selected:
        known = ", ".join(name for name, __ in _REGISTRY)
        parser.error(f"no such bench (known: {known})")

    benches: Dict[str, object] = {}
    for name, workload in selected:
        row = run_one(name, workload, args.quick, args.repeat)
        benches[name] = row
        print(
            f"{name:<20} wall {row['wall_s']:>9.4f}s  "
            f"rss {row['peak_rss_kb']:>8} kB  "
            f"{row['extra']}"
        )

    document = {
        "schema": "repro.bench/1",
        "pr": CURRENT_PR,
        "quick": bool(args.quick),
        "repeat": args.repeat,
        "python": platform.python_version(),
        "benches": benches,
    }
    out = Path(args.output)
    out.write_text(
        json.dumps(
            document, indent=2, sort_keys=True, separators=(",", ": ")
        )
        + "\n"
    )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
