"""Ablation B (Section 2 motivation): transparent latch modelling.

McWilliams-style analysis [5] "can not model the behaviour of transparent
latches": degrading every latch to edge-triggered forfeits cycle
borrowing, under-estimating the maximum clock frequency of latch-based
pipelines.  This bench measures the frequency gap on pipelines with
increasingly unbalanced stages -- the more borrowing matters, the larger
Hummingbird's advantage.
"""

from __future__ import annotations

import pytest

from repro.baselines.mcwilliams import mcwilliams_max_frequency
from repro.core.frequency import find_max_frequency
from repro.delay import estimate_delays
from repro.generators import latch_pipeline

from benchmarks.conftest import emit

#: (label, stage lengths): progressively more unbalanced pipelines whose
#: long stage follows a latch (where borrowing pays).
CASES = [
    ("balanced", [8, 8]),
    ("mild", [4, 12]),
    ("skewed", [2, 20]),
    ("extreme", [2, 30]),
]

_rows = {}


@pytest.fixture(scope="module", params=[label for label, __ in CASES])
def case(request, lib):
    lengths = dict(CASES)[request.param]
    network, schedule = latch_pipeline(
        stages=len(lengths), stage_lengths=lengths, period=100, library=lib
    )
    return request.param, network, schedule, estimate_delays(network)


def test_hummingbird_max_frequency(benchmark, case):
    label, network, schedule, delays = case
    result = benchmark.pedantic(
        lambda: find_max_frequency(network, schedule, delays),
        rounds=3,
        iterations=1,
    )
    _rows.setdefault(label, {})["ours"] = result.min_period


def test_mcwilliams_max_frequency(benchmark, case):
    label, network, schedule, delays = case
    result = benchmark.pedantic(
        lambda: mcwilliams_max_frequency(network, schedule, delays),
        rounds=3,
        iterations=1,
    )
    _rows.setdefault(label, {})["theirs"] = result.min_period


def test_latch_model_report(benchmark):
    benchmark(lambda: None)
    header = (
        f"{'pipeline':<10} {'Hummingbird T*':>15} {'edge-only T*':>14} "
        f"{'penalty':>8}"
    )
    lines = [header, "-" * len(header)]
    penalties = {}
    for label, __ in CASES:
        row = _rows.get(label, {})
        ours, theirs = row.get("ours"), row.get("theirs")
        if ours is None or theirs is None:
            continue
        penalty = theirs / ours
        penalties[label] = penalty
        lines.append(
            f"{label:<10} {ours:>15.3f} {theirs:>14.3f} {penalty:>7.2f}x"
        )
    lines.append("")
    lines.append(
        "T* = minimum feasible overall period; penalty = edge-only / ours"
    )
    emit("Ablation B: transparent-latch model vs edge-triggered", lines)
    if {"balanced", "extreme"} <= set(penalties):
        # Borrowing matters more as the pipeline skews.
        assert penalties["extreme"] > penalties["balanced"]
        assert penalties["extreme"] > 1.2
