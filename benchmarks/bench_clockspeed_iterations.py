"""Section 8's observation: iteration counts depend on clock speed.

"We point out that the number of iterations required, and hence the run
times, depend upon the specified clock speeds."  Sweeping the overall
period of a latch pipeline from comfortable to infeasible shows slack
transfer working hardest near the feasibility boundary, and iteration
counts bounded by roughly the number of synchronising elements in a
directed path (paper: "typically less than ten").
"""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators import latch_pipeline

from benchmarks.conftest import emit

#: Overall periods to sweep (the pipeline is feasible down to ~13ns).
PERIODS = [60, 30, 20, 16, 14, 12, 10]

_rows = {}


@pytest.fixture(scope="module")
def pipeline(lib):
    network, schedule = latch_pipeline(
        stages=6, stage_lengths=[2, 12, 2, 12, 2, 12], period=60, library=lib
    )
    return network, schedule, estimate_delays(network)


@pytest.mark.parametrize("period", PERIODS)
def test_iterations_vs_clock_speed(benchmark, pipeline, period):
    network, base_schedule, delays = pipeline
    schedule = base_schedule.scaled(
        __import__("fractions").Fraction(period, 60)
    )
    model = AnalysisModel(network, schedule, delays)
    engine = SlackEngine(model)
    result = benchmark(lambda: run_algorithm1(model, engine))
    _rows[period] = result


def test_iterations_report(benchmark, pipeline):
    benchmark(lambda: None)
    network, __, __ = pipeline
    n_latches = len(network.synchronisers)
    header = (
        f"{'period':>7} {'intended':>9} {'fwd':>4} {'bwd':>4} "
        f"{'pfwd':>5} {'pbwd':>5} {'total':>6}"
    )
    lines = [header, "-" * len(header)]
    for period in PERIODS:
        r = _rows.get(period)
        if r is None:
            continue
        it = r.iterations
        lines.append(
            f"{period:>7} {str(r.intended):>9} {it.forward:>4} "
            f"{it.backward:>4} {it.partial_forward:>5} "
            f"{it.partial_backward:>5} {it.total:>6}"
        )
    lines.append("")
    lines.append(
        f"pipeline has {n_latches} latches; the paper bounds complete "
        "iterations by elements-in-a-path + 1 ('typically less than ten')"
    )
    emit("Iteration counts vs clock speed (Algorithm 1)", lines)

    results = [_rows[p] for p in PERIODS if p in _rows]
    if results:
        # Fast clocks need transfer work; slow clocks may finish with 0.
        slowest = _rows[max(_rows)]
        assert slowest.intended
        assert all(r.converged for r in results)
        bound = n_latches + 2
        for r in results:
            assert r.iterations.forward <= bound
            assert r.iterations.backward <= bound
        # Iteration effort is non-trivial somewhere in the sweep.
        assert any(r.iterations.total > 0 for r in results)
