"""Ablation E: abstract re-synthesis model vs real gate sizing.

Algorithm 3 needs a re-synthesis back-end.  The paper delegates to Singh
et al. [1]; this repository has both an *abstract* model (scale a
module's delays, charge area) and a *real* one (swap cells for X2/X4
drive variants, with the true load feedback).  The bench runs both on
the same load-dominated design pushed past its maximum frequency and
compares convergence and area cost.
"""

from __future__ import annotations

import pytest

from repro.cells import standard_library
from repro.clocks import ClockSchedule
from repro.core import Hummingbird
from repro.core.resynthesis import SpeedupModel, run_redesign_loop
from repro.delay import estimate_delays
from repro.netlist import NetworkBuilder
from repro.synth.sizing import (
    add_drive_variants,
    size_for_timing,
    total_gate_area,
)

from benchmarks.conftest import emit

_rows = {}


def _fanout_tree(lib, hubs=6, fanout=10, period=5.2):
    """Several high-fanout hubs: load-dominated critical paths."""
    b = NetworkBuilder(lib)
    b.clock("clk")
    b.input("i", "w", clock="clk")
    b.latch("fa", "DFF", D="w", CK="clk", Q="q0")
    previous = "q0"
    for h in range(hubs):
        b.gate(f"hub{h}", "INV", A=previous, Z=f"h{h}")
        for k in range(fanout - 1):
            b.gate(f"ld{h}_{k}", "INV", A=f"h{h}", Z=f"l{h}_{k}")
        b.gate(f"next{h}", "INV", A=f"h{h}", Z=f"n{h}")
        previous = f"n{h}"
    b.latch("fb", "DFF", D=previous, CK="clk", Q="qz")
    b.output("o", "qz", clock="clk")
    return b.build(), ClockSchedule.single("clk", period)


@pytest.fixture(scope="module")
def sized_lib():
    return add_drive_variants(standard_library())


def test_real_gate_sizing(benchmark, sized_lib):
    def run():
        network, schedule = _fanout_tree(sized_lib, period=14.0)
        area_before = total_gate_area(network)
        result = size_for_timing(network, schedule, sized_lib)
        return network, schedule, area_before, result

    network, schedule, area_before, result = benchmark.pedantic(
        run, rounds=3, iterations=1
    )
    assert result.success
    _rows["sizing"] = {
        "passes": result.passes,
        "area_before": area_before,
        "area_after": result.area_after,
        "resized": len(result.resized),
    }
    assert Hummingbird(network, schedule).analyze().intended


def test_abstract_resynthesis(benchmark, sized_lib):
    network, schedule = _fanout_tree(sized_lib, period=14.0)
    delays = estimate_delays(network)

    result = benchmark.pedantic(
        lambda: run_redesign_loop(
            network,
            schedule,
            delays,
            speedup=SpeedupModel(speedup_factor=0.7, min_scale=0.25),
            max_rounds=100,
        ),
        rounds=3,
        iterations=1,
    )
    assert result.success
    _rows["abstract"] = {
        "rounds": result.num_rounds,
        "area_cost": result.area_cost,
    }


def test_sizing_report(benchmark):
    benchmark(lambda: None)
    lines = []
    if "sizing" in _rows:
        row = _rows["sizing"]
        lines.append(
            f"real gate sizing: {row['resized']} cells resized in "
            f"{row['passes']} passes; area {row['area_before']:.0f} -> "
            f"{row['area_after']:.0f} "
            f"(+{row['area_after'] / row['area_before'] - 1:.0%})"
        )
    if "abstract" in _rows:
        row = _rows["abstract"]
        lines.append(
            f"abstract model: {row['rounds']} rounds; "
            f"relative area cost {row['area_cost']:.2f}"
        )
    lines.append(
        "both close timing; the real sizer pays measured area and feeds "
        "load changes back into the delays"
    )
    emit("Ablation E: abstract re-synthesis vs real gate sizing", lines)
