"""Figure 1: time-multiplexed logic needs a minimum of two settling times.

The paper's Figure 1 shows a gate fed by latches on different clock
phases whose output must settle to two different valid states per clock
period.  Section 7's pre-processing finds the minimum number of analysis
passes; the prior per-edge attribution (Wallace/Szymanski style) computes
one settling time per clock edge -- eight for the four-phase clock.
"""

from __future__ import annotations

import pytest

from repro.baselines import settling_comparison
from repro.core import Hummingbird
from repro.core.algorithm1 import run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators import fig1_circuit

from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def fig1():
    network, schedule = fig1_circuit()
    return network, schedule, estimate_delays(network)


def test_fig1_minimum_pass_analysis(benchmark, fig1):
    network, schedule, delays = fig1
    model = AnalysisModel(network, schedule, delays)
    engine = SlackEngine(model)
    benchmark(lambda: run_algorithm1(model, engine))


def test_fig1_per_edge_analysis(benchmark, fig1):
    network, schedule, delays = fig1
    model = AnalysisModel(network, schedule, delays, pass_strategy="per_edge")
    engine = SlackEngine(model)
    benchmark(lambda: run_algorithm1(model, engine))


def test_fig1_settling_report(benchmark, fig1):
    network, schedule, delays = fig1
    comparison = benchmark(
        lambda: settling_comparison(network, schedule, delays)
    )
    hb = Hummingbird(network, schedule, delays=delays)
    constraints = hb.generate_constraints().constraints
    gate_settlings = constraints.settling_count("g_out")

    emit(
        "Figure 1: settling times for the time-multiplexed gate",
        [
            f"clock edge times in period:        {comparison.clock_edge_times}",
            f"minimum passes (Hummingbird):      {comparison.minimum_passes_total}",
            f"per-edge passes (prior work):      {comparison.per_edge_passes_total}",
            f"settlings evaluated (minimum):     {comparison.minimum_settlings}",
            f"settlings evaluated (per-edge):    {comparison.per_edge_settlings}",
            f"gate output settling times:        {gate_settlings} "
            "(paper: two valid states per period)",
        ],
    )
    # The paper's headline claims for this configuration:
    assert gate_settlings == 2
    assert hb.model.stats()["max_passes_per_cluster"] == 2
    assert comparison.minimum_settlings < comparison.per_edge_settlings
