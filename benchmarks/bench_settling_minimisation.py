"""Ablation C (headline novelty): minimum settling times per node.

"A new feature is that the minimum number of settling times are evaluated
for the nodes of combinational networks with input transitions controlled
by different clock signals."  Sweeping the number of clock phases shows
the gap between the Section 7 minimum and one-settling-per-edge
attribution growing with phase count, while two-phase designs need just
one settling time per node ("a single settling time is often
sufficient").
"""

from __future__ import annotations

import pytest

from repro.baselines import settling_comparison
from repro.clocks import ClockSchedule, ClockWaveform
from repro.delay import estimate_delays
from repro.netlist import NetworkBuilder

from benchmarks.conftest import emit

_rows = {}


def _staggered_schedule(n_phases, period=120.0):
    slot = period / n_phases
    return ClockSchedule(
        ClockWaveform(
            f"phi{k + 1}", period, k * slot + slot / 10, (k + 1) * slot - slot / 10
        )
        for k in range(n_phases)
    )


def _multiphase_crossbar(lib, n_phases):
    """Latches on every phase feeding shared logic captured on every
    phase -- the worst case for settling-time counts."""
    b = NetworkBuilder(lib)
    for k in range(n_phases):
        b.clock(f"phi{k + 1}")
    joins = []
    for k in range(n_phases):
        b.input(f"i{k}", f"w{k}", clock=f"phi{k + 1}", edge="trailing")
        b.latch(
            f"src{k}", "DLATCH", D=f"w{k}", G=f"phi{k + 1}", Q=f"q{k}"
        )
        joins.append(f"q{k}")
    # Reduce all sources into one shared cone.
    level = joins
    idx = 0
    while len(level) > 1:
        nxt = []
        for j in range(0, len(level) - 1, 2):
            out = f"m{idx}"
            b.gate(f"g{idx}", "NAND2", A=level[j], B=level[j + 1], Z=out)
            nxt.append(out)
            idx += 1
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    shared = level[0]
    for k in range(n_phases):
        b.latch(
            f"dst{k}", "DLATCH", D=shared, G=f"phi{k + 1}", Q=f"y{k}"
        )
        b.output(f"o{k}", f"y{k}", clock=f"phi{k + 1}", edge="trailing")
    return b.build()


@pytest.mark.parametrize("n_phases", [2, 3, 4, 6, 8])
def test_settling_minimisation(benchmark, lib, n_phases):
    schedule = _staggered_schedule(n_phases)
    network = _multiphase_crossbar(lib, n_phases)
    delays = estimate_delays(network)
    comparison = benchmark.pedantic(
        lambda: settling_comparison(network, schedule, delays),
        rounds=3,
        iterations=1,
    )
    _rows[n_phases] = comparison


def test_settling_report(benchmark):
    benchmark(lambda: None)
    header = (
        f"{'phases':>6} {'edges':>6} {'min passes':>11} "
        f"{'per-edge passes':>16} {'settle reduction':>17}"
    )
    lines = [header, "-" * len(header)]
    for n_phases in sorted(_rows):
        c = _rows[n_phases]
        lines.append(
            f"{n_phases:>6} {c.clock_edge_times:>6} "
            f"{c.minimum_passes_total:>11} {c.per_edge_passes_total:>16} "
            f"{c.settling_reduction:>16.2f}x"
        )
    lines.append("")
    lines.append(
        "reduction = settlings evaluated with minimum passes / per-edge"
    )
    emit("Ablation C: minimum settling times vs per-edge attribution", lines)
    for n_phases, c in _rows.items():
        assert c.minimum_passes_total <= c.per_edge_passes_total
        if n_phases >= 3:
            assert c.minimum_settlings < c.per_edge_settlings
