"""Figure 4: the clock-edge graph and minimum break selection.

Reproduces the paper's worked example: eight clock edges in cyclic order
(A..H); the requirement "edge E occurs before edge C" is satisfied by
removing the original arc D->E, giving the order E F G H A B C D.  Also
benches the exhaustive pass-minimisation on graphs of growing size
("the graphs are usually small and very seldom is it necessary to remove
more than two arcs").
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.breakopen import (
    BreakOpenPlan,
    ClockEdgeGraph,
    RequirementArc,
    minimum_breaks,
)

from benchmarks.conftest import emit

T = Fraction(80)
EDGE = {name: Fraction(10 * i) for i, name in enumerate("ABCDEFGH")}
TIMES = sorted(EDGE.values())


def test_fig4_worked_example(benchmark):
    arcs = [RequirementArc(EDGE["E"], EDGE["C"])]  # "E before C"
    breaks = benchmark(lambda: minimum_breaks(T, TIMES, arcs))
    graph = ClockEdgeGraph(period=T, times=tuple(TIMES), arcs=tuple(arcs))

    assert len(breaks) == 1
    # Removing D->E (break at E) is among the valid choices the paper
    # names; verify it handles the requirement and yields the published
    # edge order.
    assert arcs[0].handled_by(graph.break_for_removed_arc((EDGE["D"], EDGE["E"])), T)
    plan = BreakOpenPlan(period=T, breaks=(EDGE["E"],))
    order = "".join(
        sorted("ABCDEFGH", key=lambda n: plan.position_assertion(EDGE[n], 0))
    )
    emit(
        "Figure 4: break-open worked example",
        [
            f"requirement: E before C",
            f"break chosen by search: {breaks[0]} (edge "
            f"{'ABCDEFGH'[TIMES.index(breaks[0])]})",
            f"removing arc D->E gives edge order: {order}",
        ],
    )
    assert order == "EFGHABCD"


@pytest.mark.parametrize("n_edges", [8, 16, 32])
def test_pass_selection_scaling(benchmark, n_edges):
    """Exhaustive search stays fast on realistic clock graphs."""
    period = Fraction(10 * n_edges)
    times = [Fraction(10 * i) for i in range(n_edges)]
    # A two-pass-forcing arc set plus consistent arcs.
    arcs = [
        RequirementArc(times[0], times[n_edges // 2 - 1]),
        RequirementArc(times[n_edges // 2], times[n_edges // 2 - 1]),
        RequirementArc(times[0], times[-1]),
        RequirementArc(times[n_edges // 2], times[-1]),
    ] + [
        RequirementArc(times[i], times[(i + 2) % n_edges])
        for i in range(0, n_edges, 4)
    ]
    breaks = benchmark(lambda: minimum_breaks(period, times, arcs))
    for arc in arcs:
        assert any(arc.handled_by(b, period) for b in breaks)
    assert len(breaks) <= 3


def test_seldom_more_than_two(benchmark):
    """Across a sweep of random-ish arc sets, the minimum break count is
    almost always one or two, as the paper observes."""
    import random

    rng = random.Random(1989)
    sizes = []

    def sweep():
        sizes.clear()
        for __ in range(100):
            arcs = [
                RequirementArc(
                    TIMES[rng.randrange(8)], TIMES[rng.randrange(8)]
                )
                for __ in range(rng.randint(1, 6))
            ]
            sizes.append(len(minimum_breaks(T, TIMES, arcs)))
        return sizes

    benchmark(sweep)
    at_most_two = sum(1 for s in sizes if s <= 2) / len(sizes)
    emit(
        "Pass-count distribution over 100 random requirement sets",
        [
            f"1 pass:  {sizes.count(1)}",
            f"2 passes: {sizes.count(2)}",
            f">2 passes: {sum(1 for s in sizes if s > 2)}",
            f"fraction <= 2 passes: {at_most_two:.2f} "
            "(paper: 'very seldom ... more than two')",
        ],
    )
    assert at_most_two >= 0.9
