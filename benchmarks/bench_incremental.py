"""Ablation D: incremental re-analysis inside the redesign loop.

Algorithm 3 re-analyses after every module change.  Because Algorithm 1
may start from any constraint-satisfying offsets, the loop can
warm-start each analysis from the previous fixed point and reuse all
pre-processing (clusters, requirement arcs, pass plans) -- delays do not
affect them.  This bench measures the speed-up of the warm loop over
rebuild-everything-per-round, and of a single warm re-analysis after a
point delay change on the full DES design.
"""

from __future__ import annotations

import pytest

from repro.core.incremental import IncrementalAnalyzer
from repro.core.frequency import find_max_frequency
from repro.core.model import AnalysisModel
from repro.core.resynthesis import SpeedupModel, run_redesign_loop
from repro.core.slack import SlackEngine
from repro.core.algorithm1 import run_algorithm1
from repro.delay import estimate_delays
from repro.generators import generate_des, random_design

from benchmarks.conftest import emit

_times = {}


@pytest.fixture(scope="module")
def overclocked():
    network, schedule = random_design(
        seed=404, n_banks=3, gates_per_bank=35, bits=6, style="latch"
    )
    delays = estimate_delays(network)
    search = find_max_frequency(network, schedule, delays)
    assert search.min_period is not None
    return network, search.schedule.scaled("0.88"), delays


@pytest.mark.parametrize("mode", ["incremental", "cold"])
def test_redesign_loop_mode(benchmark, overclocked, mode):
    network, schedule, delays = overclocked
    result = benchmark.pedantic(
        lambda: run_redesign_loop(
            network,
            schedule,
            delays,
            speedup=SpeedupModel(speedup_factor=0.7, min_scale=0.2),
            max_rounds=200,
            incremental=(mode == "incremental"),
        ),
        rounds=3,
        iterations=1,
    )
    assert result.success
    _times[f"loop_{mode}"] = benchmark.stats.stats.mean
    _times[f"loop_{mode}_rounds"] = result.num_rounds


@pytest.mark.parametrize("mode", ["warm", "cold"])
def test_des_reanalysis_after_point_change(benchmark, mode):
    network, schedule = generate_des()
    delays = estimate_delays(network)
    if mode == "warm":
        inc = IncrementalAnalyzer(network, schedule, delays)
        inc.analyze()

        def reanalyse():
            inc.scale_cell("r8_s2_g3", 0.95)
            return inc.analyze(warm=True)

        benchmark.pedantic(reanalyse, rounds=5, iterations=1)
    else:
        current = [delays]

        def reanalyse():
            current[0] = current[0].with_scaled_cell("r8_s2_g3", 0.95)
            model = AnalysisModel(network, schedule, current[0])
            return run_algorithm1(model, SlackEngine(model))

        benchmark.pedantic(reanalyse, rounds=3, iterations=1)
    _times[f"des_{mode}"] = benchmark.stats.stats.mean


def test_incremental_report(benchmark):
    benchmark(lambda: None)
    lines = []
    if {"loop_incremental", "loop_cold"} <= set(_times):
        ratio = _times["loop_cold"] / _times["loop_incremental"]
        lines.append(
            f"redesign loop ({_times['loop_cold_rounds']} rounds): "
            f"cold {_times['loop_cold']:.3f}s vs warm "
            f"{_times['loop_incremental']:.3f}s -> {ratio:.1f}x"
        )
    if {"des_warm", "des_cold"} <= set(_times):
        ratio = _times["des_cold"] / _times["des_warm"]
        lines.append(
            f"DES point re-analysis: cold {_times['des_cold']:.3f}s vs "
            f"warm {_times['des_warm']:.3f}s -> {ratio:.1f}x"
        )
    emit("Ablation D: incremental re-analysis", lines)
    if {"des_warm", "des_cold"} <= set(_times):
        # Reusing pre-processing must be clearly faster on a full chip.
        assert _times["des_warm"] < _times["des_cold"]
