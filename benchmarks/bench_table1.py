"""Table 1: run times for the four benchmark designs.

Paper (VAX 8800 cpu seconds): DES = 3681 standard cells analysed in
14.87 s total; ALU = 899 cells; SM1F = flat 12-bit FSM; SM1H = the same
machine with its combinational logic in a single module (much faster to
analyse).  We reproduce the table structure -- cells, nets,
pre-processing time, analysis time -- and the shape: near-linear scaling
with design size and a large flat-vs-hierarchical gap.  Absolute times
are a modern machine's, not a VAX 8800's.
"""

from __future__ import annotations

import pytest

from repro.core import Hummingbird
from repro.core.algorithm1 import run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators import (
    generate_alu,
    generate_des,
    generate_sm1f,
    generate_sm1h,
)
from repro.generators._util import standard_cell_count

from benchmarks.conftest import emit

DESIGNS = {
    "DES": generate_des,
    "ALU": generate_alu,
    "SM1F": generate_sm1f,
    "SM1H": generate_sm1h,
}

_rows = {}


@pytest.fixture(scope="module", params=list(DESIGNS))
def design(request):
    network, schedule = DESIGNS[request.param]()
    return request.param, network, schedule


def test_table1_preprocessing(benchmark, design):
    """Pre-processing: delay estimation, clusters, Section 7 passes."""
    name, network, schedule = design

    def preprocess():
        return Hummingbird(network, schedule)

    hb = benchmark(preprocess)
    row = _rows.setdefault(name, {})
    row["cells"] = standard_cell_count(network)
    row["nets"] = network.num_nets
    row["preprocess_s"] = benchmark.stats.stats.mean


def test_table1_analysis(benchmark, design):
    """Analysis: Algorithm 1 (slow-path identification)."""
    name, network, schedule = design
    delays = estimate_delays(network)
    model = AnalysisModel(network, schedule, delays)
    engine = SlackEngine(model)

    def analyse():
        return run_algorithm1(model, engine)

    result = benchmark(analyse)
    row = _rows.setdefault(name, {})
    row["analysis_s"] = benchmark.stats.stats.mean
    row["intended"] = result.intended


def test_table1_report(benchmark):
    """Assemble and print the Table 1 reproduction."""
    benchmark(lambda: None)  # keep this row under --benchmark-only
    header = (
        f"{'design':<6} {'cells':>6} {'nets':>6} "
        f"{'preproc_s':>10} {'analysis_s':>11} {'intended':>9}"
    )
    lines = [header, "-" * len(header)]
    for name in DESIGNS:
        row = _rows.get(name, {})
        if not row:
            continue
        lines.append(
            f"{name:<6} {row.get('cells', 0):>6} {row.get('nets', 0):>6} "
            f"{row.get('preprocess_s', float('nan')):>10.4f} "
            f"{row.get('analysis_s', float('nan')):>11.4f} "
            f"{str(row.get('intended', '?')):>9}"
        )
    lines.append("")
    lines.append("paper anchors: DES = 3681 cells, 14.87 VAX-8800 cpu s total;")
    lines.append("ALU = 899 cells; SM1H analyses much faster than SM1F.")
    emit("Table 1: timing analysis run times", lines)

    if {"DES", "ALU"} <= set(_rows):
        des = _rows["DES"]
        alu = _rows["ALU"]
        assert des["cells"] == 3681
        assert alu["cells"] == 899
        # Shape: the 4x larger design must not be more than ~30x slower
        # (near-linear scaling claim).
        if "analysis_s" in des and "analysis_s" in alu:
            total_des = des["analysis_s"] + des.get("preprocess_s", 0)
            total_alu = alu["analysis_s"] + alu.get("preprocess_s", 0)
            assert total_des < 40 * max(total_alu, 1e-9)
    if {"SM1F", "SM1H"} <= set(_rows):
        flat, hier = _rows["SM1F"], _rows["SM1H"]
        if "analysis_s" in flat and "analysis_s" in hier:
            assert hier["analysis_s"] <= flat["analysis_s"] * 1.5
