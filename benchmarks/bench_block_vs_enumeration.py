"""Ablation A (Section 7 design choice): block method vs path enumeration.

"Such a path enumeration procedure is computationally expensive.
Hitchcock introduced the much faster block method."  On reconvergent
logic the path count grows exponentially with depth while the block
method stays linear; on false-path-free logic both give identical
slacks (verified by the test suite's differential oracle).
"""

from __future__ import annotations

import pytest

from repro.baselines import enumerate_port_slacks
from repro.clocks import ClockSchedule
from repro.core.algorithm1 import run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.netlist import NetworkBuilder

from benchmarks.conftest import emit

_results = {}


def _diamond_chain(lib, depth):
    """`depth` cascaded reconvergent diamonds: 2^depth paths."""
    b = NetworkBuilder(lib)
    b.clock("clk")
    b.input("i", "w", clock="clk")
    b.latch("fa", "DFF", D="w", CK="clk", Q="n0")
    for k in range(depth):
        b.gate(f"u{k}", "INV", A=f"n{k}", Z=f"a{k}")
        b.gate(f"v{k}", "INV", A=f"n{k}", Z=f"b{k}")
        b.gate(f"j{k}", "NAND2", A=f"a{k}", B=f"b{k}", Z=f"n{k + 1}")
    b.latch("fb", "DFF", D=f"n{depth}", CK="clk", Q="q")
    b.output("o", "q", clock="clk")
    return b.build(), ClockSchedule.single("clk", 10000)


@pytest.fixture(scope="module", params=[4, 8, 12])
def prepared(request, lib):
    depth = request.param
    network, schedule = _diamond_chain(lib, depth)
    delays = estimate_delays(network)
    model = AnalysisModel(network, schedule, delays)
    engine = SlackEngine(model)
    run_algorithm1(model, engine)
    return depth, model, engine


def test_block_method(benchmark, prepared):
    depth, model, engine = prepared
    slacks = benchmark(engine.port_slacks)
    _results.setdefault(depth, {})["block_worst"] = slacks.worst()


def test_path_enumeration(benchmark, prepared):
    depth, model, engine = prepared
    result = benchmark(
        lambda: enumerate_port_slacks(model, engine, max_paths=10**7)
    )
    row = _results.setdefault(depth, {})
    row["paths"] = result.paths_walked
    row["enum_worst"] = result.slacks.worst()


def test_block_vs_enumeration_report(benchmark):
    benchmark(lambda: None)
    header = f"{'depth':>6} {'paths walked':>13} {'slacks equal':>13}"
    lines = [header, "-" * len(header)]
    growth_ok = True
    previous = None
    for depth in sorted(_results):
        row = _results[depth]
        equal = (
            "yes"
            if abs(row.get("block_worst", 0) - row.get("enum_worst", 1))
            < 1e-6
            else "NO"
        )
        lines.append(
            f"{depth:>6} {row.get('paths', 0):>13} {equal:>13}"
        )
        if previous is not None and row.get("paths", 0) <= previous:
            growth_ok = False
        previous = row.get("paths", 0)
    lines.append("")
    lines.append(
        "block method work is linear in depth; enumeration walks ~2^depth"
    )
    emit("Ablation A: block method vs path enumeration", lines)
    assert growth_ok
    for row in _results.values():
        if "block_worst" in row and "enum_worst" in row:
            assert abs(row["block_worst"] - row["enum_worst"]) < 1e-6
