#!/usr/bin/env python
"""Tristate buses, clock gating and enable paths, and timing statistics.

Three of the model's less common corners in one walkthrough:

1. a shared tristate bus (multiple drivers on one net -- "clocked
   tristate drivers are modeled in the same way as transparent latches"),
2. a clock-gated latch whose gating signal forms an *enable path*
   (Section 4) with its own constraint,
3. the aggregate endpoint statistics (WNS / TNS / per-clock histogram).

Run:  python examples/bus_and_gating.py
"""

from repro import Hummingbird, check_enable_paths, enable_path_checks
from repro.generators import clock_gated_design, tristate_bus_design


def bus_walkthrough():
    print("1. tristate bus")
    print("-" * 50)
    network, schedule = tristate_bus_design(n_drivers=4)
    bus = network.net("bus")
    print(
        f"   net 'bus' has {len(bus.drivers)} drivers: "
        + ", ".join(d.cell.name for d in bus.drivers)
    )
    analyzer = Hummingbird(network, schedule)
    result = analyzer.analyze()
    print(f"   {result.summary()}")
    slacks = result.algorithm1.slacks
    for index in range(4):
        print(
            f"   drv{index} data-input slack: "
            f"{slacks.capture[f'drv{index}@0']:7.3f} "
            f"(deeper source cones arrive later)"
        )
    print()


def gating_walkthrough():
    print("2. clock gating / enable paths")
    print("-" * 50)
    network, schedule = clock_gated_design()
    analyzer = Hummingbird(network, schedule)
    result = analyzer.analyze()
    print(f"   data paths: {result.summary()}")
    for check in enable_path_checks(analyzer.model):
        print(
            f"   enable path {check.source_terminal} -> "
            f"{check.controlled_cell}: D_p = {check.ideal_constraint:.1f}, "
            f"settles {check.settle_offset:.2f} after assertion, "
            f"slack {check.slack:.2f} "
            f"[{'OK' if check.ok else 'VIOLATED'}]"
        )

    # Speed the clocks up until the gating signal cannot keep up.
    fast = schedule.scaled("1/8")
    fast_analyzer = analyzer.with_schedule(fast)
    fast_analyzer.analyze()
    violations = check_enable_paths(fast_analyzer.model)
    print(
        f"   at period {float(fast.overall_period):.1f} ns the enable "
        f"check reports {len(violations)} violation(s)"
    )
    print()


def statistics_walkthrough():
    print("3. endpoint statistics")
    print("-" * 50)
    network, schedule = tristate_bus_design(
        n_drivers=6, source_chain=8, period=24
    )
    analyzer = Hummingbird(network, schedule)
    analyzer.analyze()
    print(analyzer.statistics(histogram_bins=6).format())


if __name__ == "__main__":
    bus_walkthrough()
    gating_walkthrough()
    statistics_walkthrough()
