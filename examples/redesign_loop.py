#!/usr/bin/env python
"""Algorithm 3: the automated analysis/re-design loop.

Finds a random latch-based design's maximum frequency, overclocks it by
20%, and lets the loop repeatedly (1) identify slow paths, (2) generate
ready/required-time constraints, and (3) speed up the module with most
potential -- until every path is fast enough.

Run:  python examples/redesign_loop.py
"""

from repro import (
    SpeedupModel,
    estimate_delays,
    find_max_frequency,
    run_redesign_loop,
)
from repro.generators import random_design


def main():
    network, schedule = random_design(
        seed=2024, n_banks=3, gates_per_bank=35, bits=6, style="latch"
    )
    delays = estimate_delays(network)

    search = find_max_frequency(network, schedule, delays)
    print(
        f"maximum frequency search: minimum feasible period "
        f"{search.min_period:.2f} ns ({search.evaluations} analyses)"
    )

    too_fast = search.schedule.scaled("0.8")
    print(
        f"overclocking to period "
        f"{float(too_fast.overall_period):.2f} ns and entering the loop...\n"
    )

    outcome = run_redesign_loop(
        network,
        too_fast,
        delays,
        speedup=SpeedupModel(speedup_factor=0.7, min_scale=0.2),
        max_rounds=200,
    )

    print(f"{'round':>5} {'worst slack':>12} {'slow paths':>11} "
          f"{'module':<12} {'budget':>8}")
    for record in outcome.rounds:
        budget = (
            f"{record.allowed_delay:8.2f}"
            if record.allowed_delay is not None
            else "       -"
        )
        print(
            f"{record.round_index:>5} {record.worst_slack:>12.3f} "
            f"{record.slow_path_count:>11} "
            f"{record.chosen_module or '-':<12} {budget}"
        )

    print()
    if outcome.success:
        print(
            f"all paths fast enough after {outcome.num_rounds - 1} "
            f"speed-ups; relative area cost {outcome.area_cost:.2f}"
        )
    else:
        print("the loop could not meet timing with the available speed-ups")


if __name__ == "__main__":
    main()
