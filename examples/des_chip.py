#!/usr/bin/env python
"""Full-chip analysis of the 3681-cell DES benchmark (Table 1's headline).

Builds the DES-style datapath at the paper's standard-cell count, runs
pre-processing and Algorithm 1, prints a Table 1 style row, flags the
slow paths (if any) at an aggressive clock, and runs the supplementary
minimum-delay check.

Run:  python examples/des_chip.py
"""

import time

from repro import Hummingbird, check_min_delays
from repro.generators import generate_des
from repro.generators._util import standard_cell_count


def main():
    t0 = time.process_time()
    network, schedule = generate_des()
    print(
        f"generated DES benchmark: {standard_cell_count(network)} standard "
        f"cells, {network.num_nets} nets "
        f"({time.process_time() - t0:.2f}s)"
    )

    analyzer = Hummingbird(network, schedule)
    result = analyzer.analyze()
    print()
    print("Table 1 row:")
    row = analyzer.table_row()
    print(
        f"  {row['design']}: cells={row['cells']} nets={row['nets']} "
        f"preprocess={row['preprocess_s']}s analysis={row['analysis_s']}s "
        f"intended={row['intended']}"
    )
    print(f"  (paper: 3681 cells, 14.87 VAX-8800 cpu seconds in total)")
    print()

    # Push the clock until round logic becomes critical.
    fast = schedule.scaled("1/4")
    fast_analyzer = analyzer.with_schedule(fast)
    fast_result = fast_analyzer.analyze()
    print(
        f"at period {float(fast.overall_period):.0f} ns: "
        f"{fast_result.summary()}"
    )
    if not fast_result.intended:
        print()
        print(fast_result.report(limit=5))
        flagged = fast_analyzer.flag_slow_paths()
        print(f"\nflagged {flagged} cells on slow paths "
              "(attrs['slow_path'] = True, the OCT-flag substitute)")

    # Supplementary (minimum delay) check, the documented extension.
    violations = check_min_delays(analyzer.model, analyzer.engine)
    print(
        f"\nsupplementary (min-delay) check at the nominal clock: "
        f"{len(violations)} violation(s)"
    )


if __name__ == "__main__":
    main()
