#!/usr/bin/env python
"""Interactive mode (Section 8): clock-shape and delay what-ifs.

"Hummingbird has an interactive mode in which, for example, changes may
be made to the shapes of the clock waveforms to determine the effect on
system timing.  Adjustments may also be made to component delays."

Run:  python examples/whatif_session.py
"""

from repro.generators import latch_pipeline
from repro.interactive import WhatIfSession
from repro.viz import render_schedule


def show(session, label):
    result = session.analyze()
    verdict = "OK" if result.intended else "TOO SLOW"
    print(f"{label:<44} worst slack {result.worst_slack:8.3f}  [{verdict}]")


def main():
    network, schedule = latch_pipeline(
        stages=4, stage_lengths=[10, 4, 10, 4], period=40
    )
    session = WhatIfSession(network, schedule)

    print("initial clocks:")
    print(render_schedule(session.schedule))
    print()

    show(session, "baseline (period 40)")

    session.scale_clocks("1/2")
    show(session, "after scale_clocks(1/2) (period 20)")

    session.set_pulse_width("phi1", 2)
    show(session, "after narrowing phi1's pulse to 2 ns")

    print(f"undo: {session.undo()}")
    show(session, "phi1 width restored")

    session.shift_clock("phi2", 2)
    show(session, "after shifting phi2 later by 2 ns")
    print(f"undo: {session.undo()}")

    session.scale_cell_delay("s1_i0", 6.0)
    show(session, "after slowing gate s1_i0 by 6x")
    print(f"undo: {session.undo()}")

    show(session, "back to the scaled clocks")
    print()
    print("final session report:")
    print(session.report(limit=3))


if __name__ == "__main__":
    main()
