#!/usr/bin/env python
"""The full logic-synthesis-environment loop, end to end.

This is the workflow the paper's title describes:

1. specify a machine's combinational logic as boolean equations,
2. synthesise and technology-map it (NAND/INV style) around a register,
3. run Hummingbird; discover the design misses timing at the target clock,
4. fix it with the Singh-style optimiser (gate sizing driven by the
   analysis), paying area for speed,
5. confirm statically (Algorithm 1) and dynamically (event simulation
   against the ideal, delays-to-zero reference system).

Run:  python examples/synthesis_flow.py
"""

from repro import (
    ClockSchedule,
    Hummingbird,
    NetworkBuilder,
    dynamic_intended_check,
    size_for_timing,
    standard_library,
    synthesize_into,
)
from repro.delay import estimate_delays
from repro.synth.sizing import add_drive_variants, total_gate_area

#: A 4-bit Gray-code counter with parity and range-detect outputs.
EQUATIONS = {
    "n0": "s0 ^ (s1 & ~s2 | en)",
    "n1": "s1 ^ (s0 & en)",
    "n2": "s2 ^ (s1 & s0 & en)",
    "n3": "s3 ^ (s2 & s1 & s0 & en) | (mode & ~s3)",
    "parity": "s0 ^ s1 ^ s2 ^ s3",
    "in_range": "(s3 | s2) & ~(s1 & s0) & mode",
}

TARGET_PERIOD = 7.8  # ns -- met only after sizing the critical cones


def build(library):
    b = NetworkBuilder(library, name="gray_counter")
    b.clock("clk")
    b.input("en_pad", "w_en", clock="clk")
    b.input("mode_pad", "w_mode", clock="clk")
    state_nets = {f"s{k}": f"q{k}" for k in range(4)}
    bindings = {"en": "w_en", "mode": "w_mode", **state_nets}
    outs = synthesize_into(b, EQUATIONS, bindings, prefix="ns", style="nand")
    for k in range(4):
        b.latch(f"reg{k}", "DFF", D=outs[f"n{k}"], CK="clk", Q=f"q{k}")
    b.latch("regp", "DFF", D=outs["parity"], CK="clk", Q="qp")
    b.latch("regr", "DFF", D=outs["in_range"], CK="clk", Q="qr")
    b.output("o_parity", "qp", clock="clk")
    b.output("o_range", "qr", clock="clk")
    return b.build()


def main():
    library = add_drive_variants(standard_library())
    network = build(library)
    schedule = ClockSchedule.single("clk", TARGET_PERIOD)
    print(
        f"synthesised {len(network.combinational_cells)} gates "
        f"(NAND/INV mapping), area {total_gate_area(network):.0f}"
    )

    result = Hummingbird(network, schedule).analyze()
    print(f"\nat {TARGET_PERIOD} ns:")
    print(result.report(limit=3))

    if not result.intended:
        print("\nrunning the gate sizer on the slow paths...")
        sizing = size_for_timing(network, schedule, library)
        print(
            f"  {len(sizing.resized)} cells resized in {sizing.passes} "
            f"passes; area {sizing.area_before:.0f} -> "
            f"{sizing.area_after:.0f}"
        )
        for cell, variant in sorted(sizing.resized.items()):
            print(f"    {cell:<10} -> {variant}")
        result = Hummingbird(network, schedule).analyze()
        print(f"  after sizing: {result.summary()}")

    print("\ndynamic validation against the ideal system:")
    delays = estimate_delays(network)
    check = dynamic_intended_check(
        network, schedule, delays, cycles=12, seed=42
    )
    print(
        f"  {check.captures_compared} captures compared, "
        f"{len(check.mismatches)} mismatches, "
        f"{len(check.setup_violations)} setup violations -> "
        f"{'INTENDED' if check.intended else 'NOT INTENDED'}"
    )


if __name__ == "__main__":
    main()
