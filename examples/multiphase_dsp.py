#!/usr/bin/env python
"""A four-phase, time-multiplexed datapath (the paper's Figure 1 scenario).

A DSP-style slice shares one logic cone between latches on four clock
phases: the cone's output must settle to *two* different valid states in
every overall clock period.  The example shows how Hummingbird's
pre-processing discovers the minimum number of analysis passes (two, not
one per clock edge) and prints the per-pass settling times of the shared
node.

Run:  python examples/multiphase_dsp.py
"""

from repro import Hummingbird, estimate_delays
from repro.baselines import settling_comparison
from repro.generators import fig1_circuit
from repro.viz import render_schedule


def main():
    network, schedule = fig1_circuit(period=100)
    print("Four staggered clock phases:")
    print(render_schedule(schedule))
    print()

    analyzer = Hummingbird(network, schedule)
    result = analyzer.analyze()
    print(result.summary())
    stats = analyzer.model.stats()
    print(
        f"clusters: {stats['clusters']}, "
        f"max analysis passes per cluster: {stats['max_passes_per_cluster']}"
    )
    print()

    # The shared gate output g_out is the time-multiplexed node.
    constraints = analyzer.generate_constraints().constraints
    print("settling times of the shared gate output 'g_out':")
    for settling in constraints.ready[("g_out")]:
        if settling.value.is_finite():
            print(
                f"  pass {settling.pass_index} of {settling.cluster}: "
                f"ready at (rise={settling.value.rise:.2f}, "
                f"fall={settling.value.fall:.2f}) on that pass's axis"
            )
    print()

    # Compare against the one-settling-per-clock-edge baseline.
    comparison = settling_comparison(network, schedule, analyzer.delays)
    print(
        "analysis passes -- Hummingbird minimum: "
        f"{comparison.minimum_passes_total}, per-edge attribution: "
        f"{comparison.per_edge_passes_total}"
    )
    print(
        "settling times evaluated -- minimum: "
        f"{comparison.minimum_settlings}, per-edge: "
        f"{comparison.per_edge_settlings} "
        f"({comparison.settling_reduction:.0%} of the per-edge work)"
    )


if __name__ == "__main__":
    main()
