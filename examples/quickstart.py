#!/usr/bin/env python
"""Quickstart: build a small two-phase design and analyse its timing.

Run:  python examples/quickstart.py
"""

from repro import ClockSchedule, Hummingbird, NetworkBuilder, standard_library
from repro.viz import render_schedule


def build_design():
    """A toy two-phase datapath: input -> logic -> latch -> logic -> latch."""
    lib = standard_library()
    b = NetworkBuilder(lib, name="quickstart")

    # Clock generators drive nets named after the clocks.
    b.clock("phi1")
    b.clock("phi2")

    # A primary input arriving at phi2's leading edge.
    b.input("din", "n_in", clock="phi2", edge="leading")

    # First stage of combinational logic.
    b.gate("u1", "NAND2", A="n_in", B="n_in", Z="n1")
    b.gate("u2", "INV", A="n1", Z="n2")

    # A transparent latch on phi1.
    b.latch("L1", "DLATCH", D="n2", G="phi1", Q="n3")

    # Second stage.
    b.gate("u3", "NOR2", A="n3", B="n_in", Z="n4")
    b.gate("u4", "INV", A="n4", Z="n5")

    # Capture on phi2 and drive a primary output whose external consumer
    # samples 5 ns after phi2's trailing edge.
    b.latch("L2", "DLATCH", D="n5", G="phi2", Q="n6")
    b.output("dout", "n6", clock="phi2", edge="trailing", offset=5.0)
    return b.build()


def main():
    network = build_design()
    schedule = ClockSchedule.two_phase(period=100)

    print("Clock schedule:")
    print(render_schedule(schedule))
    print()

    analyzer = Hummingbird(network, schedule)
    result = analyzer.analyze()
    print(result.report())
    print()

    # Tighten the clock until the design breaks.
    for divisor in (4, 8, 16):
        fast = schedule.scaled(f"1/{divisor}")
        fast_result = analyzer.with_schedule(fast).analyze()
        verdict = "OK" if fast_result.intended else "TOO SLOW"
        print(
            f"period {float(fast.overall_period):6.2f} ns: "
            f"worst slack {fast_result.worst_slack:7.3f}  [{verdict}]"
        )
        if not fast_result.intended:
            print()
            print(fast_result.report(limit=3))


if __name__ == "__main__":
    main()
