#!/usr/bin/env python
"""The transparent-latch offset model and cycle borrowing.

Part 1 reproduces the paper's Section 5 worked example (a 20 ns pulse,
output asserted 5 ns after the leading edge => O_zd = 5, O_dz = -15;
a 2 ns control path => O_ac = O_zc = 2) and sweeps the window position
to show Figure 3's relation O_zd = W + O_dz + D_dz.

Part 2 builds an unbalanced two-stage latch pipeline and compares its
maximum frequency under Hummingbird's transparent model against the
McWilliams-style edge-triggered approximation: the transparent model
lets the long stage borrow through the latch window.

Run:  python examples/transparent_latch_model.py
"""

from fractions import Fraction

from repro import estimate_delays, find_max_frequency
from repro.baselines.mcwilliams import mcwilliams_max_frequency
from repro.core.sync_elements import GenericInstance, InstanceKind
from repro.generators import latch_pipeline


def part1_worked_example():
    print("Part 1: the Section 5 worked example")
    print("-" * 52)
    latch = GenericInstance(
        name="latch@0",
        cell_name="latch",
        kind=InstanceKind.TRANSPARENT,
        assertion_edge=Fraction(0),   # leading edge (ideal assertion)
        closure_edge=Fraction(20),    # trailing edge (ideal closure)
        clock_period=Fraction(100),
        width=20.0,                   # W = 20 ns pulse
        control_arrival=2.0,          # 2 ns clock-source-to-control delay
        control_arrival_min=2.0,
    )
    latch.w = 5.0  # output asserted 5 ns after the leading edge
    print(f"  O_zd = {latch.o_zd:+.1f} ns   (paper: +5)")
    print(f"  O_dz = {latch.o_dz:+.1f} ns  (paper: -15)")
    print(f"  O_ac = {latch.control_arrival:+.1f} ns   (paper: +2)")
    print(f"  O_zc = {latch.o_zc:+.1f} ns   (paper: +2)")
    print()
    print("  window sweep (Figure 3's O_zd = W + O_dz + D_dz):")
    print(f"  {'w = O_zd':>9} {'O_dz':>7} {'assert@':>8} {'close@':>7}")
    for w in (0.0, 5.0, 10.0, 15.0, 20.0):
        latch.w = w
        print(
            f"  {latch.o_zd:>9.1f} {latch.o_dz:>7.1f} "
            f"{latch.assertion_offset:>8.1f} {latch.closure_offset:>7.1f}"
        )
    print()


def part2_window_chart():
    print("Part 2: watching Algorithm 1 slide the latch windows")
    print("-" * 60)
    from repro import Hummingbird
    from repro.viz import render_cluster_windows

    network, schedule = latch_pipeline(
        stages=2, stage_lengths=[2, 24], period=28
    )
    hb = Hummingbird(network, schedule)
    cluster = next(
        c
        for c in hb.model.clusters
        if any(p.instance.adjustable for p in hb.model.capture_ports[c.name])
    )
    print("before Algorithm 1 (windows at the end of their pulses):")
    print(render_cluster_windows(hb.model, hb.engine, cluster.name))
    result = hb.analyze()
    print()
    print(f"after Algorithm 1 ({result.summary()}):")
    print(render_cluster_windows(hb.model, hb.engine, cluster.name))
    print()


def part3_cycle_borrowing():
    print("Part 3: cycle borrowing vs the edge-triggered approximation")
    print("-" * 60)
    network, schedule = latch_pipeline(
        stages=2, stage_lengths=[2, 24], period=100
    )
    delays = estimate_delays(network)
    ours = find_max_frequency(network, schedule, delays)
    theirs = mcwilliams_max_frequency(network, schedule, delays)
    print(
        f"  transparent model (Hummingbird): min period "
        f"{ours.min_period:.2f} ns"
    )
    print(
        f"  edge-triggered approximation:    min period "
        f"{theirs.min_period:.2f} ns"
    )
    print(
        f"  the latch-aware analysis runs the pipeline "
        f"{theirs.min_period / ours.min_period:.2f}x faster"
    )


if __name__ == "__main__":
    part1_worked_example()
    part2_window_chart()
    part3_cycle_borrowing()
