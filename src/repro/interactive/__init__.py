"""Interactive what-if exploration (paper, Section 8).

"Hummingbird has an interactive mode in which, for example, changes may
be made to the shapes of the clock waveforms to determine the effect on
system timing.  Adjustments may also be made to component delays."
"""

from repro.interactive.session import WhatIfSession

__all__ = ["WhatIfSession"]
