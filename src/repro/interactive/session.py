"""What-if sessions: clock-shape and delay edits with undo.

A :class:`WhatIfSession` holds the design fixed and lets the user mutate
the clock schedule and the component delays, re-analysing on demand.
Every mutation pushes the previous state so :meth:`undo` can back out of
an experiment -- the workflow the paper's interactive mode supported on a
terminal.

The forensics layer (``docs/reporting.md``) plugs in here: use
:meth:`WhatIfSession.explain` to get the ``D_p``/``O_x``/``O_y``/borrow
chain breakdown of one endpoint under the current state,
:meth:`snapshot` to freeze the current analysis as a run manifest, and
:meth:`compare` to see the per-endpoint slack deltas an experiment
caused -- the same primitive as ``repro-sta diff``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.clocks.schedule import ClockSchedule
from repro.clocks.waveform import TimeLike
from repro.core.analyzer import Hummingbird, TimingResult
from repro.delay.estimator import DelayMap, estimate_delays
from repro.netlist.network import Network


@dataclass(frozen=True)
class SessionStep:
    """One entry of the session history."""

    description: str
    schedule: ClockSchedule
    delays: DelayMap


class WhatIfSession:
    """Interactive exploration of clocking and delay changes.

    With ``use_incremental=True`` the session keeps a
    :class:`repro.core.incremental.IncrementalAnalyzer` warm across
    delay edits: ``scale_cell_delay`` becomes a cheap delay swap (or a
    tracked rebuild inside control cones) and :meth:`analyze`
    warm-starts Algorithm 1 from the previous fixed point instead of
    rebuilding the whole model -- the same serving path the
    :class:`repro.service.daemon.TimingDaemon` uses for
    mutate-and-requery traffic.  Clock edits and :meth:`undo` still
    rebuild (clock shapes are baked into the instance windows).
    """

    def __init__(
        self,
        network: Network,
        schedule: ClockSchedule,
        delays: Optional[DelayMap] = None,
        use_incremental: bool = False,
    ) -> None:
        self.network = network
        self._schedule = schedule
        self._delays = delays if delays is not None else estimate_delays(network)
        self._history: List[SessionStep] = []
        self._analyzer: Optional[Hummingbird] = None
        self._baseline_manifest: Optional[Dict[str, object]] = None
        self.use_incremental = use_incremental
        self._incremental = None  # lazy IncrementalAnalyzer

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def schedule(self) -> ClockSchedule:
        return self._schedule

    @property
    def delays(self) -> DelayMap:
        return self._delays

    @property
    def history(self) -> Tuple[SessionStep, ...]:
        return tuple(self._history)

    def _push(self, description: str, keep_incremental: bool = False) -> None:
        self._history.append(
            SessionStep(description, self._schedule, self._delays)
        )
        self._analyzer = None
        if not keep_incremental:
            self._incremental = None

    def undo(self) -> str:
        """Back out the most recent change; returns its description."""
        if not self._history:
            raise ValueError("nothing to undo")
        step = self._history.pop()
        self._schedule = step.schedule
        self._delays = step.delays
        self._analyzer = None
        # Conservative: the restored delay map may differ arbitrarily
        # from the incremental engine's, so rebuild on next analyze.
        self._incremental = None
        return step.description

    # ------------------------------------------------------------------
    # clock edits
    # ------------------------------------------------------------------
    def set_pulse_width(self, clock: str, width: TimeLike) -> None:
        """Change the width of one clock's pulse."""
        self._push(f"set_pulse_width({clock!r}, {width})")
        self._schedule = self._schedule.with_pulse_width(clock, width)

    def shift_clock(self, clock: str, delta: TimeLike) -> None:
        """Move one clock's pulse within the period."""
        self._push(f"shift_clock({clock!r}, {delta})")
        self._schedule = self._schedule.with_shifted_clock(clock, delta)

    def scale_clocks(self, factor: TimeLike) -> None:
        """Scale every period/edge (change the clock frequency)."""
        self._push(f"scale_clocks({factor})")
        self._schedule = self._schedule.scaled(factor)

    # ------------------------------------------------------------------
    # delay edits
    # ------------------------------------------------------------------
    def scale_cell_delay(self, cell_name: str, factor: float) -> None:
        """Scale all arcs of one cell (what-if for a re-sized module)."""
        self.network.cell(cell_name)  # raise early on unknown cells
        self._push(
            f"scale_cell_delay({cell_name!r}, {factor})",
            keep_incremental=self.use_incremental,
        )
        self._delays = self._delays.with_scaled_cell(cell_name, factor)
        if self._incremental is not None:
            # Cheap path: swap the delay under the warm model (the
            # engine rebuilds itself for control-cone cells).
            self._incremental.scale_cell(cell_name, factor)

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def analyze(self) -> TimingResult:
        """(Re)analyse the design under the current state."""
        if self.use_incremental:
            if self._incremental is None:
                from repro.core.incremental import IncrementalAnalyzer

                self._incremental = IncrementalAnalyzer(
                    self.network, self._schedule, delays=self._delays
                )
            return self._incremental.timing_result(warm=True)
        if self._analyzer is None:
            self._analyzer = Hummingbird(
                self.network, self._schedule, delays=self._delays
            )
        return self._analyzer.analyze()

    def report(self, limit: int = 10) -> str:
        """Analysis report plus the mutation history."""
        lines = [self.analyze().report(limit)]
        if self._history:
            lines.append("history:")
            lines.extend(f"  {step.description}" for step in self._history)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # forensics (docs/reporting.md)
    # ------------------------------------------------------------------
    def explain(self, endpoint: str):
        """Endpoint forensics under the current session state.

        Returns a :class:`repro.report.EndpointForensics`; render it
        with ``self.analyze().path_forensics().render_text(...)`` or use
        the returned object's fields directly.
        """
        return self.analyze().forensics(endpoint)

    def snapshot(self, label: Optional[str] = None) -> Dict[str, object]:
        """Freeze the current analysis as a run manifest and make it the
        baseline for :meth:`compare`."""
        manifest = self.analyze().manifest(
            label=label or f"session-step-{len(self._history)}"
        )
        self._baseline_manifest = manifest
        return manifest

    def compare(
        self, baseline: Optional[Dict[str, object]] = None, limit: int = 20
    ) -> str:
        """Diff the current analysis against a manifest.

        ``baseline`` defaults to the most recent :meth:`snapshot`.  The
        rendering matches ``repro-sta diff``: per-endpoint slack deltas,
        new/fixed violations and iteration regressions.
        """
        from repro.report.diff import diff_manifests

        base = baseline if baseline is not None else self._baseline_manifest
        if base is None:
            raise ValueError(
                "no baseline manifest: call snapshot() before compare()"
            )
        current = self.analyze().manifest(
            label=f"session-step-{len(self._history)}"
        )
        return diff_manifests(base, current).render_text(limit=limit)
