"""Standard-cell library with empirical, load-dependent delay models.

The paper separates *component propagation-delay estimation* from *system
timing analysis* and notes that "for standard cells, empirical delay
estimation formulae are often used".  This package provides that substrate:

* :mod:`repro.cells.delay` -- the linear ``intrinsic + resistance * load``
  arc delay model with separate rise/fall coefficients,
* :mod:`repro.cells.combinational` -- gate specs (INV, NAND, NOR, AOI, ...),
* :mod:`repro.cells.sequential` -- synchroniser specs (transparent D latch,
  trailing-edge D flip-flop, clocked tristate driver),
* :mod:`repro.cells.library` -- the :class:`CellLibrary` registry and the
  default :func:`standard_library`.
"""

from repro.cells.combinational import GateSpec
from repro.cells.delay import GateArc, LinearDelay
from repro.cells.library import CellLibrary, standard_library
from repro.cells.sequential import SyncSpec
from repro.cells.tables import TableArc, TableDelay, table_from_linear

__all__ = [
    "CellLibrary",
    "GateArc",
    "GateSpec",
    "LinearDelay",
    "SyncSpec",
    "TableArc",
    "TableDelay",
    "standard_library",
    "table_from_linear",
]
