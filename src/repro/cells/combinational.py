"""Combinational gate specs.

A :class:`GateSpec` implements the netlist's ``CellSpecLike`` protocol for
ordinary logic gates: named input pins, one output pin ``Z``, per-pin input
capacitance and one :class:`~repro.cells.delay.GateArc` per input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.cells.delay import GateArc, symmetric_arc
from repro.netlist.kinds import CellRole, SyncStyle, Unateness

#: A gate's boolean function: pin values in, output value out.
LogicFunction = Callable[[Mapping[str, bool]], bool]


@dataclass(frozen=True)
class GateSpec:
    """Spec of a combinational standard cell."""

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...] = ("Z",)
    arcs: Dict[Tuple[str, str], GateArc] = field(default_factory=dict)
    input_caps: Dict[str, float] = field(default_factory=dict)
    #: Estimated area in gate-equivalents; used by the re-synthesis model.
    area: float = 1.0
    #: Boolean function (None when only timing matters, e.g. modules).
    function: Optional[LogicFunction] = None

    @property
    def role(self) -> CellRole:
        return CellRole.COMBINATIONAL

    @property
    def control(self) -> Optional[str]:
        return None

    @property
    def sync_style(self) -> Optional[SyncStyle]:
        return None

    def input_cap(self, pin: str) -> float:
        return self.input_caps.get(pin, 1.0)

    def __post_init__(self) -> None:
        for (in_pin, out_pin) in self.arcs:
            if in_pin not in self.inputs or out_pin not in self.outputs:
                raise ValueError(
                    f"{self.name}: arc {in_pin}->{out_pin} uses unknown pins"
                )


_INPUT_NAMES = ("A", "B", "C", "D", "E", "F", "G", "H")


def _all(values: Mapping[str, bool]) -> bool:
    return all(values.values())


def _any(values: Mapping[str, bool]) -> bool:
    return any(values.values())


#: Boolean functions by family (applied to however many inputs a variant
#: has).  AOI21/AOI22/OAI21/OAI22 follow the standard pin conventions:
#: AOI21 = ~((A & B) | C), AOI22 = ~((A & B) | (C & D)), etc.
_FAMILY_FUNCTIONS: Dict[str, LogicFunction] = {
    "INV": lambda v: not v["A"],
    "BUF": lambda v: v["A"],
    "NAND": lambda v: not _all(v),
    "NOR": lambda v: not _any(v),
    "AND": _all,
    "OR": _any,
    "XOR": lambda v: (sum(bool(x) for x in v.values()) % 2) == 1,
    "XNOR": lambda v: (sum(bool(x) for x in v.values()) % 2) == 0,
    "AOI21": lambda v: not ((v["A"] and v["B"]) or v["C"]),
    "AOI22": lambda v: not ((v["A"] and v["B"]) or (v["C"] and v["D"])),
    "OAI21": lambda v: not ((v["A"] or v["B"]) and v["C"]),
    "OAI22": lambda v: not ((v["A"] or v["B"]) and (v["C"] or v["D"])),
}


def function_for(name: str) -> Optional[LogicFunction]:
    """The boolean function of a default-library gate family, by name
    prefix (``NAND3`` -> the NAND family), or ``None`` if unknown."""
    for prefix in sorted(_FAMILY_FUNCTIONS, key=len, reverse=True):
        if name.startswith(prefix):
            return _FAMILY_FUNCTIONS[prefix]
    return None


def simple_gate(
    name: str,
    n_inputs: int,
    unateness: Unateness,
    intrinsic: float,
    resistance: float,
    input_cap: float = 1.0,
    skew: float = 0.0,
    area: Optional[float] = None,
    function: Optional[LogicFunction] = None,
) -> GateSpec:
    """A gate whose every input->Z arc shares one delay model."""
    if not 1 <= n_inputs <= len(_INPUT_NAMES):
        raise ValueError(f"{name}: unsupported input count {n_inputs}")
    inputs = _INPUT_NAMES[:n_inputs]
    arc = symmetric_arc(unateness, intrinsic, resistance, skew)
    return GateSpec(
        name=name,
        inputs=inputs,
        arcs={(pin, "Z"): arc for pin in inputs},
        input_caps={pin: input_cap for pin in inputs},
        area=area if area is not None else float(n_inputs),
        function=function if function is not None else function_for(name),
    )


def default_gates() -> Tuple[GateSpec, ...]:
    """The default combinational cell set.

    Delay coefficients are representative of a ~2um CMOS standard-cell
    family (the technology of the paper's era): inverters are fastest,
    series stacks add intrinsic delay and resistance, and complex AOI/OAI
    gates trade one stage of logic for a slower single stage.
    """
    return (
        simple_gate("INV", 1, Unateness.NEGATIVE, 0.35, 0.10, 1.0, 0.05, 1.0),
        simple_gate("BUF", 1, Unateness.POSITIVE, 0.70, 0.08, 1.0, 0.05, 2.0),
        simple_gate("NAND2", 2, Unateness.NEGATIVE, 0.50, 0.13, 1.1, 0.08),
        simple_gate("NAND3", 3, Unateness.NEGATIVE, 0.65, 0.16, 1.2, 0.10),
        simple_gate("NAND4", 4, Unateness.NEGATIVE, 0.85, 0.20, 1.3, 0.12),
        simple_gate("NOR2", 2, Unateness.NEGATIVE, 0.55, 0.15, 1.1, -0.08),
        simple_gate("NOR3", 3, Unateness.NEGATIVE, 0.75, 0.19, 1.2, -0.10),
        simple_gate("NOR4", 4, Unateness.NEGATIVE, 1.00, 0.24, 1.3, -0.12),
        simple_gate("AND2", 2, Unateness.POSITIVE, 0.80, 0.11, 1.1, 0.05, 3.0),
        simple_gate("OR2", 2, Unateness.POSITIVE, 0.85, 0.12, 1.1, 0.05, 3.0),
        simple_gate("XOR2", 2, Unateness.NON_UNATE, 1.10, 0.16, 1.6, 0.0, 5.0),
        simple_gate("XNOR2", 2, Unateness.NON_UNATE, 1.10, 0.16, 1.6, 0.0, 5.0),
        simple_gate("AOI21", 3, Unateness.NEGATIVE, 0.70, 0.17, 1.2, 0.06, 3.0),
        simple_gate("AOI22", 4, Unateness.NEGATIVE, 0.80, 0.19, 1.3, 0.06, 4.0),
        simple_gate("OAI21", 3, Unateness.NEGATIVE, 0.72, 0.17, 1.2, -0.06, 3.0),
        simple_gate("OAI22", 4, Unateness.NEGATIVE, 0.82, 0.19, 1.3, -0.06, 4.0),
        mux2_spec(),
    )


def mux2_spec() -> GateSpec:
    """A 2:1 multiplexer: data pins are non-unate via the select."""
    data_arc = symmetric_arc(Unateness.POSITIVE, 0.95, 0.14)
    select_arc = symmetric_arc(Unateness.NON_UNATE, 1.05, 0.15)
    return GateSpec(
        name="MUX2",
        inputs=("A", "B", "S"),
        arcs={("A", "Z"): data_arc, ("B", "Z"): data_arc, ("S", "Z"): select_arc},
        input_caps={"A": 1.2, "B": 1.2, "S": 1.5},
        area=4.0,
        function=lambda v: v["B"] if v["S"] else v["A"],
    )
