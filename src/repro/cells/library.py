"""Cell library registry."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.cells.combinational import GateSpec, default_gates
from repro.cells.sequential import SyncSpec, default_synchronisers
from repro.netlist.kinds import CellSpecLike


class CellLibrary:
    """A named collection of cell specs, resolvable by name.

    Satisfies the netlist builder's ``SpecSource`` protocol.
    """

    def __init__(
        self, name: str = "library", specs: Iterable[CellSpecLike] = ()
    ) -> None:
        self.name = name
        self._specs: Dict[str, CellSpecLike] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: CellSpecLike) -> CellSpecLike:
        if spec.name in self._specs:
            raise ValueError(f"duplicate spec name {spec.name!r}")
        self._specs[spec.name] = spec
        return spec

    def spec(self, name: str) -> CellSpecLike:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"library {self.name!r} has no cell {name!r}; available: "
                f"{sorted(self._specs)}"
            ) from None

    def has(self, name: str) -> bool:
        return name in self._specs

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._specs))

    def gates(self) -> Iterator[GateSpec]:
        for spec in self._specs.values():
            if isinstance(spec, GateSpec):
                yield spec

    def synchronisers(self) -> Iterator[SyncSpec]:
        for spec in self._specs.values():
            if isinstance(spec, SyncSpec):
                yield spec

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:
        return f"CellLibrary({self.name!r}, {len(self)} cells)"


def standard_library() -> CellLibrary:
    """The default static-CMOS standard-cell library.

    Contains the combinational set of
    :func:`repro.cells.combinational.default_gates` plus the synchronisers
    of :func:`repro.cells.sequential.default_synchronisers`.
    """
    return CellLibrary(
        "std-cmos",
        tuple(default_gates()) + tuple(default_synchronisers()),
    )
