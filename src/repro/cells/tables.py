"""Lookup-table delay models.

The paper stresses that component delay estimation is pluggable:
"different delay-estimation methods may be combined".  Besides the
linear empirical model (:mod:`repro.cells.delay`), this module offers a
piecewise-linear lookup table over output load -- the shape of the
NLDM-style characterisation real libraries use.  A
:class:`TableArc` is a drop-in replacement for
:class:`~repro.cells.delay.GateArc` inside a
:class:`~repro.cells.combinational.GateSpec`: the estimator only calls
``delay_at(load)``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.netlist.kinds import TimingArc
from repro.rftime import RiseFall


@dataclass(frozen=True)
class TableDelay:
    """Piecewise-linear delay vs output load.

    ``loads`` must be strictly increasing.  Queries between breakpoints
    interpolate linearly; queries outside the characterised range
    extrapolate from the nearest segment (standard library practice).
    """

    loads: Tuple[float, ...]
    delays: Tuple[float, ...]

    def __init__(
        self, loads: Sequence[float], delays: Sequence[float]
    ) -> None:
        loads_t = tuple(float(v) for v in loads)
        delays_t = tuple(float(v) for v in delays)
        if len(loads_t) != len(delays_t):
            raise ValueError("loads and delays must have equal length")
        if len(loads_t) < 2:
            raise ValueError("a table needs at least two breakpoints")
        if any(b <= a for a, b in zip(loads_t, loads_t[1:])):
            raise ValueError("loads must be strictly increasing")
        object.__setattr__(self, "loads", loads_t)
        object.__setattr__(self, "delays", delays_t)

    def at_load(self, load: float) -> float:
        if load < 0:
            raise ValueError("load must be non-negative")
        loads, delays = self.loads, self.delays
        index = bisect.bisect_left(loads, load)
        if index == 0:
            low, high = 0, 1
        elif index == len(loads):
            low, high = len(loads) - 2, len(loads) - 1
        else:
            low, high = index - 1, index
        span = loads[high] - loads[low]
        fraction = (load - loads[low]) / span
        return delays[low] + fraction * (delays[high] - delays[low])


@dataclass(frozen=True)
class TableArc(TimingArc):
    """A combinational arc with table-based rise/fall delays."""

    rise: TableDelay = field(
        default_factory=lambda: TableDelay((0.0, 1.0), (0.0, 0.0))
    )
    fall: TableDelay = field(
        default_factory=lambda: TableDelay((0.0, 1.0), (0.0, 0.0))
    )

    def delay_at(self, load: float) -> RiseFall:
        return RiseFall(self.rise.at_load(load), self.fall.at_load(load))


def table_from_linear(
    intrinsic: float,
    resistance: float,
    loads: Sequence[float] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0),
    saturation: float = 0.0,
) -> TableDelay:
    """Characterise a table from a linear model (testing/migration aid).

    ``saturation`` adds a convex bend: each point's delay is increased by
    ``saturation * load**2 / max_load``, approximating the slew-limited
    behaviour linear models miss at high load.
    """
    max_load = max(loads)
    return TableDelay(
        loads,
        [
            intrinsic
            + resistance * load
            + (saturation * load * load / max_load if max_load else 0.0)
            for load in loads
        ],
    )
