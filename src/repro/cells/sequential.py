"""Synchronising element specs.

A :class:`SyncSpec` describes one of the paper's Section 5 element styles:

* ``DFF``  -- trailing-edge triggered latch (edge-triggered flip-flop),
* ``DLATCH`` -- level-sensitive transparent latch,
* ``TRIBUF`` -- clocked tristate driver (modelled like a transparent latch).

Timing parameters map onto the paper's symbols: ``setup`` is ``D_setup``,
``d_to_q`` is ``D_dz`` (data input to output delay, meaningful for
transparent elements), ``c_to_q`` is ``D_cz`` (control input to output
delay).  They are scalars -- the offset model of Section 4 is scalar; the
rise/fall refinement applies to combinational settling only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.netlist.kinds import CellRole, SyncStyle


@dataclass(frozen=True)
class SyncSpec:
    """Spec of a synchronising element."""

    name: str
    style: SyncStyle
    setup: float = 0.0
    d_to_q: float = 0.0
    c_to_q: float = 0.0
    #: Minimum-delay counterparts used by the supplementary-constraint
    #: extension; default to a conservative fraction of the max delays.
    hold: float = 0.0
    input_caps: Dict[str, float] = field(default_factory=dict)
    area: float = 6.0
    data_pin: str = "D"
    control_pin: str = "G"
    output_pin: str = "Q"

    def __post_init__(self) -> None:
        if self.setup < 0 or self.d_to_q < 0 or self.c_to_q < 0:
            raise ValueError(f"{self.name}: delays must be non-negative")
        if self.style is SyncStyle.EDGE_TRIGGERED and self.d_to_q:
            raise ValueError(
                f"{self.name}: edge-triggered elements have no data-to-output "
                "arc; output timing is control driven (D_cz)"
            )

    @property
    def role(self) -> CellRole:
        return CellRole.SYNCHRONISER

    @property
    def inputs(self) -> Tuple[str, ...]:
        return (self.data_pin,)

    @property
    def outputs(self) -> Tuple[str, ...]:
        return (self.output_pin,)

    @property
    def control(self) -> Optional[str]:
        return self.control_pin

    @property
    def sync_style(self) -> Optional[SyncStyle]:
        return self.style

    def input_cap(self, pin: str) -> float:
        return self.input_caps.get(pin, 1.2)


def default_synchronisers() -> Tuple[SyncSpec, ...]:
    """The default sequential cell set (delays in ns)."""
    return (
        SyncSpec(
            name="DFF",
            style=SyncStyle.EDGE_TRIGGERED,
            setup=0.8,
            d_to_q=0.0,
            c_to_q=1.2,
            hold=0.3,
            input_caps={"D": 1.2, "CK": 1.5},
            area=8.0,
            control_pin="CK",
        ),
        SyncSpec(
            name="DLATCH",
            style=SyncStyle.TRANSPARENT,
            setup=0.6,
            d_to_q=0.9,
            c_to_q=1.0,
            hold=0.25,
            input_caps={"D": 1.1, "G": 1.3},
            area=6.0,
        ),
        SyncSpec(
            name="TRIBUF",
            style=SyncStyle.TRISTATE,
            setup=0.3,
            d_to_q=0.7,
            c_to_q=0.8,
            hold=0.1,
            input_caps={"D": 1.0, "EN": 1.2},
            area=4.0,
            control_pin="EN",
        ),
    )
