"""Empirical delay model for standard cells.

Delays follow the classic linear form used by standard-cell delay
"evaluation expressions that take into account the connected loads"
(paper, Section 8)::

    delay = intrinsic + resistance * C_load

with separate coefficients for the rising and falling output transition.
Units are arbitrary but consistent: we use nanoseconds for times and
picofarad-like load units for capacitance, so ``resistance`` is ns per load
unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.kinds import TimingArc, Unateness
from repro.rftime import RiseFall


@dataclass(frozen=True)
class LinearDelay:
    """One transition's ``intrinsic + resistance * load`` delay."""

    intrinsic: float
    resistance: float

    def at_load(self, load: float) -> float:
        if load < 0:
            raise ValueError("load must be non-negative")
        return self.intrinsic + self.resistance * load


@dataclass(frozen=True)
class GateArc(TimingArc):
    """A combinational arc with rise/fall linear delay models.

    ``rise``/``fall`` describe the *output* transition; for a
    negative-unate arc the rise delay is measured from the input's falling
    transition.
    """

    rise: LinearDelay = LinearDelay(0.0, 0.0)
    fall: LinearDelay = LinearDelay(0.0, 0.0)

    def delay_at(self, load: float) -> RiseFall:
        """Arc delay pair at the given output load."""
        return RiseFall(self.rise.at_load(load), self.fall.at_load(load))


def symmetric_arc(
    unateness: Unateness,
    intrinsic: float,
    resistance: float,
    skew: float = 0.0,
) -> GateArc:
    """A GateArc whose rise/fall models differ only by ``skew``.

    ``skew`` adds to the rise intrinsic and subtracts from the fall
    intrinsic, reflecting the usual PMOS/NMOS drive asymmetry of static
    CMOS gates.
    """
    return GateArc(
        unateness=unateness,
        rise=LinearDelay(intrinsic + skew, resistance),
        fall=LinearDelay(max(0.0, intrinsic - skew), resistance),
    )
