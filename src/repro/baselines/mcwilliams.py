"""McWilliams-style analysis: transparent latches as hard edges.

The 1980 approach [5] "can handle complicated clocking schemes, but it
can not model the behaviour of transparent latches": every latch is
assumed to capture *and* launch on the trailing edge of its control
pulse, so no time can be borrowed through a transparency window.  The
resulting verdicts are pessimistic -- a latch-based design that is fast
enough under Hummingbird's model may be reported too slow here, and its
maximum clock frequency under-estimated.  The ablation bench quantifies
exactly that gap.
"""

from __future__ import annotations

from typing import Tuple

from repro.clocks.schedule import ClockSchedule
from repro.core.algorithm1 import Algorithm1Result, run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay.estimator import DelayMap
from repro.netlist.network import Network


def mcwilliams_analysis(
    network: Network,
    schedule: ClockSchedule,
    delays: DelayMap,
) -> Tuple[Algorithm1Result, AnalysisModel]:
    """Analyse ``network`` with every latch degraded to edge-triggered."""
    model = AnalysisModel(network, schedule, delays, latch_model="edge")
    result = run_algorithm1(model, SlackEngine(model))
    return result, model


def mcwilliams_max_frequency(
    network: Network,
    base_schedule: ClockSchedule,
    delays: DelayMap,
    **search_kwargs,
):
    """Maximum-frequency search under the edge-triggered approximation."""
    from fractions import Fraction

    from repro.core.frequency import FrequencySearchResult

    evaluations = 0

    def feasible(scale: float) -> bool:
        nonlocal evaluations
        evaluations += 1
        scaled = base_schedule.scaled(
            Fraction(scale).limit_denominator(10**6)
        )
        model = AnalysisModel(network, scaled, delays, latch_model="edge")
        return run_algorithm1(model, SlackEngine(model)).intended

    lower = search_kwargs.get("lower_scale", 0.01)
    upper = search_kwargs.get("upper_scale", 100.0)
    tolerance = search_kwargs.get("tolerance", 1e-3)
    max_evaluations = search_kwargs.get("max_evaluations", 64)

    low, high = lower, upper
    if feasible(low):
        high = low
    elif not feasible(high):
        return FrequencySearchResult(None, None, evaluations)
    else:
        while (high - low) > tolerance * high and evaluations < max_evaluations:
            mid = (low + high) / 2.0
            if feasible(mid):
                high = mid
            else:
                low = mid
    best = base_schedule.scaled(Fraction(high).limit_denominator(10**6))
    return FrequencySearchResult(
        min_period=float(best.overall_period),
        schedule=best,
        evaluations=evaluations,
    )
