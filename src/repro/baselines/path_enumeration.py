"""Exact path enumeration (the slow alternative to the block method).

Section 7: "These [slacks] could be calculated directly, as defined.
Such a path enumeration procedure is computationally expensive."  This
module does exactly that: every combinational path from every cluster
input to every cluster output is walked individually, transition by
transition, and the port slacks are the minima over per-path slacks.

On networks without logic-level false paths the results must equal the
block method's (the block method's pessimism only shows when paths cannot
actually be sensitised, which neither implementation models) -- the test
suite uses this as a differential oracle.  The path *count* and run time
demonstrate why Hummingbird chose the block method.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.model import AnalysisModel
from repro.core.slack import PortSlacks, SlackEngine
from repro.netlist.kinds import Unateness


class PathExplosionError(RuntimeError):
    """The enumeration exceeded the configured path budget."""


@dataclass
class PathEnumerationResult:
    """Slacks plus enumeration statistics."""

    slacks: PortSlacks
    paths_walked: int = 0
    #: Per-cluster path counts (diagnostics for the bench).
    per_cluster: Dict[str, int] = field(default_factory=dict)


def enumerate_port_slacks(
    model: AnalysisModel,
    engine: SlackEngine,
    max_paths: int = 2_000_000,
) -> PathEnumerationResult:
    """Compute boundary node slacks by explicit path enumeration.

    Uses the model's *current* offsets (run Algorithm 1 first to compare
    its final slacks).  ``max_paths`` guards against exponential blowup.
    """
    result = PathEnumerationResult(slacks=PortSlacks())
    slacks = result.slacks
    for instance in model.all_instances():
        if instance.has_input:
            slacks.capture.setdefault(instance.name, math.inf)
        if instance.has_output:
            slacks.launch.setdefault(instance.name, math.inf)

    for cluster in model.clusters:
        walker = _ClusterWalker(model, engine, cluster, max_paths)
        walked = walker.run(slacks)
        result.per_cluster[cluster.name] = walked
        result.paths_walked += walked
    return result


class _ClusterWalker:
    """Depth-first enumeration of all transition-consistent paths."""

    def __init__(self, model, engine, cluster, max_paths: int) -> None:
        self._model = model
        self._engine = engine
        self._cluster = cluster
        self._max_paths = max_paths
        self._walked = 0
        # net -> [(cell, in_pin, out_pin, out_net)] fanout adjacency
        self._fanout: Dict[str, List[Tuple]] = {}
        for cell in cluster.cells:
            for in_pin, out_pin in model.delays.arcs_of(cell):
                in_net = cell.terminal(in_pin).net
                out_net = cell.terminal(out_pin).net
                if in_net is None or out_net is None:
                    continue
                self._fanout.setdefault(in_net.name, []).append(
                    (cell, in_pin, out_pin, out_net.name)
                )
        # capture net -> [(capture port, closure time)]
        self._captures_by_net: Dict[str, List[Tuple]] = {}
        for port in model.capture_ports[cluster.name]:
            closure = engine._closure_time(cluster.name, port)
            self._captures_by_net.setdefault(port.net_name, []).append(
                (port, closure)
            )

    def run(self, slacks: PortSlacks) -> int:
        plan = self._model.plans[self._cluster.name]
        for pass_index in range(plan.num_passes):
            for port in self._model.launch_ports[self._cluster.name]:
                t = self._engine._assertion_time(
                    self._cluster.name, pass_index, port
                )
                for transition in ("rise", "fall"):
                    self._walk(
                        port, pass_index, port.net_name, transition, t, slacks
                    )
        return self._walked

    def _walk(
        self,
        launch_port,
        pass_index: int,
        net_name: str,
        transition: str,
        arrival: float,
        slacks: PortSlacks,
    ) -> None:
        self._walked += 1
        if self._walked > self._max_paths:
            raise PathExplosionError(
                f"more than {self._max_paths} paths in {self._cluster.name}"
            )
        # Path endpoint: captures on this net designated to this pass.
        for port, closure in self._captures_by_net.get(net_name, ()):
            if port.pass_index != pass_index:
                continue
            path_slack = closure - arrival
            name = port.instance.name
            slacks.capture[name] = min(slacks.capture[name], path_slack)
            launch_name = launch_port.instance.name
            slacks.launch[launch_name] = min(
                slacks.launch[launch_name], path_slack
            )
        # Continue through combinational arcs.
        for cell, in_pin, out_pin, out_net in self._fanout.get(net_name, ()):
            sense = self._model.delays.arc_unateness(cell, in_pin, out_pin)
            delay = self._model.delays.arc_delay(cell, in_pin, out_pin)
            for out_transition in ("rise", "fall"):
                if not _drives(sense, transition, out_transition):
                    continue
                self._walk(
                    launch_port,
                    pass_index,
                    out_net,
                    out_transition,
                    arrival + getattr(delay, out_transition),
                    slacks,
                )


def _drives(sense: Unateness, in_transition: str, out_transition: str) -> bool:
    """Whether an input transition can cause an output transition."""
    if sense is Unateness.POSITIVE:
        return in_transition == out_transition
    if sense is Unateness.NEGATIVE:
        return in_transition != out_transition
    return True
