"""Baseline analysers from the paper's related-work section.

* :mod:`repro.baselines.path_enumeration` -- exact per-path slack
  evaluation; the expensive alternative to the block method that
  Section 7 argues against,
* :mod:`repro.baselines.mcwilliams` -- McWilliams-style analysis [5]:
  complicated clocking supported but transparent latches degraded to
  edge-triggered elements (no cycle borrowing),
* :mod:`repro.baselines.per_edge` -- Wallace/Szymanski-style settling-time
  attribution [8, 9]: one settling time per clock edge per node instead
  of the Section 7 minimum.
"""

from repro.baselines.mcwilliams import mcwilliams_analysis
from repro.baselines.path_enumeration import (
    PathEnumerationResult,
    enumerate_port_slacks,
)
from repro.baselines.per_edge import (
    SettlingComparison,
    per_edge_analysis,
    settling_comparison,
)

__all__ = [
    "PathEnumerationResult",
    "SettlingComparison",
    "enumerate_port_slacks",
    "mcwilliams_analysis",
    "per_edge_analysis",
    "settling_comparison",
]
