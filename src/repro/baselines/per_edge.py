"""Per-clock-edge settling-time attribution (Wallace/Sequin, Szymanski).

The prior tools [8, 9] attribute each voltage transition to a clock edge,
so "a number of settling times are thus computed for each node" -- one
per clock edge in the worst case.  Hummingbird's Section 7 pre-processing
minimises that number ("even when combinational logic inputs come from
latches controlled by two or three different clock phases, a single
settling time is often sufficient").

This baseline runs the same engine with one analysis pass per distinct
clock edge time and reports the per-node settling counts, so the bench
can show the reduction the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.clocks.schedule import ClockSchedule
from repro.core.algorithm1 import Algorithm1Result, run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay.estimator import DelayMap
from repro.netlist.network import Network


def per_edge_analysis(
    network: Network,
    schedule: ClockSchedule,
    delays: DelayMap,
) -> Tuple[Algorithm1Result, AnalysisModel]:
    """Analyse with one pass per clock edge (correct but wasteful)."""
    model = AnalysisModel(network, schedule, delays, pass_strategy="per_edge")
    result = run_algorithm1(model, SlackEngine(model))
    return result, model


@dataclass(frozen=True)
class SettlingComparison:
    """Settling-time totals: minimum passes vs per-edge attribution."""

    clusters: int
    clock_edge_times: int
    minimum_passes_total: int
    per_edge_passes_total: int
    #: Sum over nets of settling times actually evaluated (finite ready
    #: values) under each strategy.
    minimum_settlings: int
    per_edge_settlings: int

    @property
    def pass_reduction(self) -> float:
        if self.per_edge_passes_total == 0:
            return 1.0
        return self.minimum_passes_total / self.per_edge_passes_total

    @property
    def settling_reduction(self) -> float:
        if self.per_edge_settlings == 0:
            return 1.0
        return self.minimum_settlings / self.per_edge_settlings


def _count_settlings(model: AnalysisModel) -> int:
    engine = SlackEngine(model)
    total = 0
    for cluster in model.clusters:
        detail = engine.cluster_detail(cluster)
        nets = set()
        for pass_detail in detail.passes:
            nets.update(pass_detail.ready)
        for net in nets:
            total += detail.settling_times(net)
    return total


def settling_comparison(
    network: Network,
    schedule: ClockSchedule,
    delays: DelayMap,
) -> SettlingComparison:
    """Build both models and compare settling-time workloads."""
    minimum = AnalysisModel(network, schedule, delays)
    per_edge = AnalysisModel(
        network, schedule, delays, pass_strategy="per_edge"
    )
    return SettlingComparison(
        clusters=len(minimum.clusters),
        clock_edge_times=len(schedule.edge_times()),
        minimum_passes_total=sum(
            plan.num_passes for plan in minimum.plans.values()
        ),
        per_edge_passes_total=sum(
            plan.num_passes for plan in per_edge.plans.values()
        ),
        minimum_settlings=_count_settlings(minimum),
        per_edge_settlings=_count_settlings(per_edge),
    )
