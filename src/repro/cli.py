"""Command-line interface: ``repro-sta``.

Mirrors the original Hummingbird's batch usage -- read a design and its
clock description, run the analysis, print the report::

    repro-sta analyze design.json --clocks clocks.json
    repro-sta analyze design.blif --clocks clocks.json --min-delay
    repro-sta constraints design.json --clocks clocks.json --net n42
    repro-sta maxfreq design.json --clocks clocks.json
    repro-sta stats design.json --clocks clocks.json
    repro-sta simulate design.json --clocks clocks.json --cycles 16
    repro-sta waveforms --clocks clocks.json

(Equivalently ``python -m repro.cli ...``.)  Netlist format is selected
by extension: ``.json`` (:mod:`repro.netlist.persistence`), ``.blif``
(:mod:`repro.netlist.blif`) or ``.v`` structural Verilog
(:mod:`repro.netlist.verilog`).

Every subcommand accepts the observability flags (see
``docs/observability.md``)::

    repro-sta analyze design.json --clocks clocks.json \
        --trace out.trace.json --metrics out.metrics.json --verbose
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.cells import standard_library
from repro.clocks.serialize import load_schedule
from repro.core.analyzer import Hummingbird
from repro.core.enable_paths import check_enable_paths
from repro.core.frequency import find_max_frequency
from repro.core.mindelay import check_min_delays
from repro.netlist.blif import load_blif
from repro.netlist.persistence import load_network
from repro.netlist.verilog import load_verilog
from repro.viz import render_constraints, render_schedule


def _read_network(path: str, default_clock: Optional[str]):
    library = standard_library()
    suffix = Path(path).suffix.lower()
    if suffix == ".blif":
        return load_blif(path, library, default_clock)
    if suffix == ".json":
        return load_network(path, library)
    if suffix == ".v":
        return load_verilog(path, library, default_clock)
    raise SystemExit(
        f"unknown netlist format {suffix!r} (use .json, .blif or .v)"
    )


def _common_arguments(parser: argparse.ArgumentParser, with_netlist=True):
    if with_netlist:
        parser.add_argument(
            "netlist", help="design file (.json, .blif or .v)"
        )
        parser.add_argument(
            "--default-clock",
            help="reference clock for BLIF pads without pragmas",
        )
    parser.add_argument(
        "--clocks", required=True, help="clock schedule JSON file"
    )
    obs_group = parser.add_argument_group("observability")
    obs_group.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace-event JSON file "
        "(open in chrome://tracing or Perfetto)",
    )
    obs_group.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a flat metrics JSON dump (counters, gauges, "
        "span aggregates)",
    )
    obs_group.add_argument(
        "--verbose",
        action="store_true",
        help="print a phase-tree timing summary to stderr",
    )


def cmd_analyze(args: argparse.Namespace) -> int:
    network = _read_network(args.netlist, args.default_clock)
    schedule = load_schedule(args.clocks)
    analyzer = Hummingbird(network, schedule)
    result = analyzer.analyze(slow_path_limit=args.limit)
    print(result.report(limit=args.limit or 20))
    status = 0 if result.intended else 1
    if args.min_delay:
        violations = check_min_delays(analyzer.model, analyzer.engine)
        print(f"\nsupplementary (min-delay) violations: {len(violations)}")
        for violation in violations[: args.limit or 20]:
            print(
                f"  {violation.capture_instance} on {violation.capture_net}: "
                f"earliest arrival {violation.earliest_arrival:.3f} < "
                f"allowed {violation.earliest_allowed:.3f}"
            )
        if violations:
            status = 1
    enable_violations = check_enable_paths(analyzer.model)
    if enable_violations:
        print(f"\nenable-path violations: {len(enable_violations)}")
        for violation in enable_violations:
            print(
                f"  {violation.source_terminal} -> "
                f"{violation.controlled_cell}: slack {violation.slack:.3f}"
            )
        status = 1
    return status


def cmd_constraints(args: argparse.Namespace) -> int:
    network = _read_network(args.netlist, args.default_clock)
    schedule = load_schedule(args.clocks)
    analyzer = Hummingbird(network, schedule)
    outcome = analyzer.generate_constraints()
    print(
        render_constraints(
            outcome.constraints,
            network,
            nets=args.net or (),
            limit=args.limit or 40,
        )
    )
    return 0


def cmd_maxfreq(args: argparse.Namespace) -> int:
    network = _read_network(args.netlist, args.default_clock)
    schedule = load_schedule(args.clocks)
    analyzer = Hummingbird(network, schedule)
    result = find_max_frequency(network, schedule, analyzer.delays)
    if result.min_period is None:
        print("no feasible clock scale found in the search window")
        return 1
    print(f"minimum feasible overall period: {result.min_period:.4f}")
    print(f"evaluations: {result.evaluations}")
    assert result.schedule is not None
    print(render_schedule(result.schedule))
    return 0


def cmd_corners(args: argparse.Namespace) -> int:
    from repro.core.corners import analyze_corners

    network = _read_network(args.netlist, args.default_clock)
    schedule = load_schedule(args.clocks)
    result = analyze_corners(network, schedule)
    print(result.summary())
    return 0 if result.intended else 1


def cmd_stats(args: argparse.Namespace) -> int:
    network = _read_network(args.netlist, args.default_clock)
    schedule = load_schedule(args.clocks)
    analyzer = Hummingbird(network, schedule)
    result = analyzer.analyze()
    print(result.summary())
    print()
    print(analyzer.statistics(histogram_bins=args.bins).format())
    return 0 if result.intended else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim import dynamic_intended_check

    network = _read_network(args.netlist, args.default_clock)
    schedule = load_schedule(args.clocks)
    analyzer = Hummingbird(network, schedule)
    sta = analyzer.analyze()
    print(f"static analysis: {sta.summary()}")
    check = dynamic_intended_check(
        network,
        schedule,
        analyzer.delays,
        cycles=args.cycles,
        seed=args.seed,
    )
    print(
        f"dynamic check: {check.captures_compared} captures compared, "
        f"{len(check.mismatches)} mismatch(es), "
        f"{len(check.setup_violations)} setup violation(s)"
    )
    for cell, index, real, ideal in check.mismatches[:10]:
        print(
            f"  {cell} capture #{index}: real={int(real)} ideal={int(ideal)}"
        )
    print(
        "system behaves as intended (dynamic)"
        if check.intended
        else "system does NOT behave as intended (dynamic)"
    )
    return 0 if check.intended else 1


def cmd_waveforms(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.clocks)
    print(schedule.describe())
    print(render_schedule(schedule))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sta",
        description="Hummingbird-style system-level timing analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="run Algorithm 1, report slow paths")
    _common_arguments(analyze)
    analyze.add_argument("--limit", type=int, default=20)
    analyze.add_argument(
        "--min-delay",
        action="store_true",
        help="also check supplementary (minimum delay) constraints",
    )
    analyze.set_defaults(func=cmd_analyze)

    constraints = sub.add_parser(
        "constraints", help="run Algorithm 2, print ready/required times"
    )
    _common_arguments(constraints)
    constraints.add_argument(
        "--net", action="append", help="net to report (repeatable)"
    )
    constraints.add_argument("--limit", type=int, default=40)
    constraints.set_defaults(func=cmd_constraints)

    maxfreq = sub.add_parser(
        "maxfreq", help="binary-search the fastest feasible clock scale"
    )
    _common_arguments(maxfreq)
    maxfreq.set_defaults(func=cmd_maxfreq)

    corners = sub.add_parser(
        "corners", help="slow/typical/fast multi-corner sign-off"
    )
    _common_arguments(corners)
    corners.set_defaults(func=cmd_corners)

    stats = sub.add_parser(
        "stats", help="endpoint statistics (WNS/TNS, histogram)"
    )
    _common_arguments(stats)
    stats.add_argument("--bins", type=int, default=8)
    stats.set_defaults(func=cmd_stats)

    simulate = sub.add_parser(
        "simulate",
        help="dynamic validation: event simulation vs the ideal system",
    )
    _common_arguments(simulate)
    simulate.add_argument("--cycles", type=int, default=8)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=cmd_simulate)

    waveforms = sub.add_parser("waveforms", help="render the clock schedule")
    _common_arguments(waveforms, with_netlist=False)
    waveforms.set_defaults(func=cmd_waveforms)

    return parser


def _run_instrumented(args: argparse.Namespace) -> int:
    """Run the subcommand under a recorder and export as requested."""
    from repro import obs

    with obs.recording() as recorder:
        with obs.span(f"cli.{args.command}", category="cli"):
            status = args.func(args)
    if args.trace:
        path = obs.write_chrome_trace(recorder, args.trace)
        print(f"trace written to {path}", file=sys.stderr)
    if args.metrics:
        path = obs.write_metrics_json(recorder, args.metrics)
        print(f"metrics written to {path}", file=sys.stderr)
    if args.verbose:
        print(obs.render_phase_tree(recorder), file=sys.stderr)
    return status


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if (
        getattr(args, "trace", None)
        or getattr(args, "metrics", None)
        or getattr(args, "verbose", False)
    ):
        return _run_instrumented(args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
