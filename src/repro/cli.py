"""Command-line interface: ``repro-sta``.

Mirrors the original Hummingbird's batch usage -- read a design and its
clock description, run the analysis, print the report::

    repro-sta analyze design.json --clocks clocks.json
    repro-sta analyze design.blif --clocks clocks.json --min-delay
    repro-sta analyze design.json --clocks clocks.json \
        --manifest runs/ --audit audit.json
    repro-sta constraints design.json --clocks clocks.json --net n42
    repro-sta maxfreq design.json --clocks clocks.json
    repro-sta report design.json --clocks clocks.json --endpoint s1_l
    repro-sta diff runs/a.manifest.json runs/b.manifest.json
    repro-sta stats design.json --clocks clocks.json --json
    repro-sta simulate design.json --clocks clocks.json --cycles 16
    repro-sta waveforms --clocks clocks.json
    repro-sta batch jobs.json --cache-dir .repro-cache --workers 4
    repro-sta serve --socket /tmp/repro.sock --http-port 8080 \
        --access-log daemon.access.jsonl
    repro-sta query --socket /tmp/repro.sock '{"op": "ping"}'
    repro-sta query --socket /tmp/repro.sock --trace merged.trace.json \
        '{"op": "analyze", "netlist": "p.json", "clocks": "c.json"}'
    repro-sta top --socket /tmp/repro.sock
    repro-sta top --socket /tmp/repro.sock --once --json
    repro-sta alerts --socket /tmp/repro.sock
    repro-sta alerts --socket /tmp/repro.sock --ack daemon.error_burn
    repro-sta doctor --socket /tmp/repro.sock
    repro-sta perf-diff BENCH_PR5.json bench.candidate.json

(Equivalently ``python -m repro.cli ...``.)  Netlist format is selected
by extension: ``.json`` (:mod:`repro.netlist.persistence`), ``.blif``
(:mod:`repro.netlist.blif`) or ``.v`` structural Verilog
(:mod:`repro.netlist.verilog`).

Every subcommand accepts the observability flags (see
``docs/observability.md``)::

    repro-sta analyze design.json --clocks clocks.json \
        --trace out.trace.json --metrics out.metrics.json --verbose
    repro-sta analyze design.json --clocks clocks.json \
        --profile profile.speedscope.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from contextlib import nullcontext
from pathlib import Path
from typing import List, Optional

from repro.cells import standard_library
from repro.clocks.serialize import load_schedule
from repro.core.analyzer import Hummingbird
from repro.core.enable_paths import check_enable_paths
from repro.core.frequency import find_max_frequency
from repro.core.mindelay import check_min_delays
from repro.netlist.blif import load_blif
from repro.netlist.persistence import load_network
from repro.netlist.verilog import load_verilog
from repro.viz import render_constraints, render_schedule


def _read_network(path: str, default_clock: Optional[str]):
    library = standard_library()
    suffix = Path(path).suffix.lower()
    if suffix == ".blif":
        return load_blif(path, library, default_clock)
    if suffix == ".json":
        return load_network(path, library)
    if suffix == ".v":
        return load_verilog(path, library, default_clock)
    raise SystemExit(
        f"unknown netlist format {suffix!r} (use .json, .blif or .v)"
    )


def _common_arguments(parser: argparse.ArgumentParser, with_netlist=True):
    if with_netlist:
        parser.add_argument(
            "netlist", help="design file (.json, .blif or .v)"
        )
        parser.add_argument(
            "--default-clock",
            help="reference clock for BLIF pads without pragmas",
        )
    parser.add_argument(
        "--clocks", required=True, help="clock schedule JSON file"
    )
    obs_group = parser.add_argument_group("observability")
    obs_group.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace-event JSON file "
        "(open in chrome://tracing or Perfetto)",
    )
    obs_group.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a flat metrics JSON dump (counters, gauges, "
        "span aggregates)",
    )
    obs_group.add_argument(
        "--verbose",
        action="store_true",
        help="print a phase-tree timing summary to stderr",
    )
    _profile_arguments(obs_group)


def _profile_arguments(group) -> None:
    group.add_argument(
        "--profile",
        metavar="FILE",
        help="sample the run with the span-attributed profiler and "
        "write a speedscope JSON profile to FILE "
        "(open at https://www.speedscope.app)",
    )
    group.add_argument(
        "--profile-hz",
        type=float,
        default=100.0,
        metavar="HZ",
        help="profiler sampling rate (default: 100)",
    )


def _json_num(value: Optional[float]) -> object:
    """JSON-safe numeric encoding (infinities become strings)."""
    if value is None:
        return None
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.report import auditing, write_audit_json, write_manifest

    network = _read_network(args.netlist, args.default_clock)
    schedule = load_schedule(args.clocks)
    analyzer = Hummingbird(network, schedule)
    audit_ctx = auditing() if args.audit else nullcontext()
    with audit_ctx as trail:
        result = analyzer.analyze(slow_path_limit=args.limit)
    if args.audit:
        path = write_audit_json(trail, args.audit)
        print(f"audit trail written to {path}", file=sys.stderr)
    if args.manifest:
        manifest = result.manifest(
            netlist_path=args.netlist,
            clocks_path=args.clocks,
            recorder=obs.active(),
            label=args.label,
        )
        path = write_manifest(manifest, args.manifest)
        print(f"manifest written to {path}", file=sys.stderr)
    print(result.report(limit=args.limit or 20))
    status = 0 if result.intended else 1
    if args.min_delay:
        violations = check_min_delays(analyzer.model, analyzer.engine)
        print(f"\nsupplementary (min-delay) violations: {len(violations)}")
        for violation in violations[: args.limit or 20]:
            print(
                f"  {violation.capture_instance} on {violation.capture_net}: "
                f"earliest arrival {violation.earliest_arrival:.3f} < "
                f"allowed {violation.earliest_allowed:.3f}"
            )
        if violations:
            status = 1
    enable_violations = check_enable_paths(analyzer.model)
    if enable_violations:
        print(f"\nenable-path violations: {len(enable_violations)}")
        for violation in enable_violations:
            print(
                f"  {violation.source_terminal} -> "
                f"{violation.controlled_cell}: slack {violation.slack:.3f}"
            )
        status = 1
    return status


def cmd_constraints(args: argparse.Namespace) -> int:
    network = _read_network(args.netlist, args.default_clock)
    schedule = load_schedule(args.clocks)
    analyzer = Hummingbird(network, schedule)
    outcome = analyzer.generate_constraints()
    print(
        render_constraints(
            outcome.constraints,
            network,
            nets=args.net or (),
            limit=args.limit or 40,
        )
    )
    return 0


def cmd_maxfreq(args: argparse.Namespace) -> int:
    network = _read_network(args.netlist, args.default_clock)
    schedule = load_schedule(args.clocks)
    analyzer = Hummingbird(network, schedule)
    result = find_max_frequency(network, schedule, analyzer.delays)
    if result.min_period is None:
        print("no feasible clock scale found in the search window")
        return 1
    print(f"minimum feasible overall period: {result.min_period:.4f}")
    print(f"evaluations: {result.evaluations}")
    assert result.schedule is not None
    print(render_schedule(result.schedule))
    return 0


def cmd_corners(args: argparse.Namespace) -> int:
    from repro.core.corners import analyze_corners

    network = _read_network(args.netlist, args.default_clock)
    schedule = load_schedule(args.clocks)
    result = analyze_corners(network, schedule)
    print(result.summary())
    return 0 if result.intended else 1


def cmd_stats(args: argparse.Namespace) -> int:
    network = _read_network(args.netlist, args.default_clock)
    schedule = load_schedule(args.clocks)
    analyzer = Hummingbird(network, schedule)
    result = analyzer.analyze()
    stats = analyzer.statistics(histogram_bins=args.bins)
    if args.json:
        manifest = result.manifest(
            netlist_path=args.netlist, clocks_path=args.clocks
        )
        payload = {
            "schema": "repro.stats/1",
            "design": manifest["design"],
            # The same machine-readable timing block the run manifest
            # embeds (intended flag, WNS/TNS, per-endpoint slacks).
            "timing": manifest["timing"],
            "by_clock": {
                name: {
                    "endpoints": group.endpoints,
                    "violating": group.violating,
                    "worst_slack": _json_num(group.worst_slack),
                    "total_negative_slack": group.total_negative_slack,
                }
                for name, group in sorted(stats.by_clock.items())
            },
            "histogram": [
                {"lower": lower, "count": count}
                for lower, count in stats.histogram
            ],
        }
        print(
            json.dumps(
                payload, indent=2, sort_keys=True, separators=(",", ": ")
            )
        )
        return 0 if result.intended else 1
    print(result.summary())
    print()
    print(stats.format())
    return 0 if result.intended else 1


def cmd_report(args: argparse.Namespace) -> int:
    network = _read_network(args.netlist, args.default_clock)
    schedule = load_schedule(args.clocks)
    analyzer = Hummingbird(network, schedule)
    result = analyzer.analyze()
    forensics = result.path_forensics()
    if args.endpoint:
        queries = list(args.endpoint)
    else:
        # Default: the worst endpoints by capture slack.
        capture = result.algorithm1.slacks.capture
        queries = [
            name
            for name, __ in sorted(capture.items(), key=lambda kv: kv[1])[
                : args.limit
            ]
        ]
    explained = []
    for query in queries:
        try:
            explained.append(forensics.explain(query))
        except KeyError as exc:
            if args.endpoint:
                raise SystemExit(str(exc))
            continue  # non-endpoint instance in the default worst-N scan
    if not explained:
        raise SystemExit("no capture endpoints to report")
    if args.format == "json":
        out = forensics.to_json(explained)
    elif args.format == "html":
        out = forensics.render_html(explained)
    else:
        out = "\n\n".join(forensics.render_text(f) for f in explained)
    if args.out:
        Path(args.out).write_text(out if out.endswith("\n") else out + "\n")
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(out)
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.report import diff_manifests

    try:
        diff = diff_manifests(args.run_a, args.run_b)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(
            json.dumps(
                diff.to_dict(),
                indent=2,
                sort_keys=True,
                separators=(",", ": "),
            )
        )
    else:
        print(diff.render_text(limit=args.limit))
    return 1 if diff.has_regression else 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim import dynamic_intended_check

    network = _read_network(args.netlist, args.default_clock)
    schedule = load_schedule(args.clocks)
    analyzer = Hummingbird(network, schedule)
    sta = analyzer.analyze()
    print(f"static analysis: {sta.summary()}")
    check = dynamic_intended_check(
        network,
        schedule,
        analyzer.delays,
        cycles=args.cycles,
        seed=args.seed,
    )
    print(
        f"dynamic check: {check.captures_compared} captures compared, "
        f"{len(check.mismatches)} mismatch(es), "
        f"{len(check.setup_violations)} setup violation(s)"
    )
    for cell, index, real, ideal in check.mismatches[:10]:
        print(
            f"  {cell} capture #{index}: real={int(real)} ideal={int(ideal)}"
        )
    print(
        "system behaves as intended (dynamic)"
        if check.intended
        else "system does NOT behave as intended (dynamic)"
    )
    return 0 if check.intended else 1


def cmd_waveforms(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.clocks)
    print(schedule.describe())
    print(render_schedule(schedule))
    return 0


def _make_remote(args: argparse.Namespace):
    """Fabric client for ``--peers``/``--peers-file``, or ``None``.

    A ``--peers-file`` fabric re-reads the file on mtime change (the
    daemon checks on its history cadence), so peers can join or leave
    without a restart.
    """
    from repro.service import RemoteCache

    peers = list(getattr(args, "peers", None) or ())
    peers_file = getattr(args, "peers_file", None)
    if peers_file:
        from repro.obs.fleet import load_peers

        try:
            for url in load_peers(peers_file):
                if url not in peers:
                    peers.append(url)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read --peers-file: {exc}")
    if not peers:
        return None
    return RemoteCache(
        peers,
        timeout_s=getattr(args, "peer_timeout", 2.0),
        peers_file=peers_file,
    )


def _make_cache(args: argparse.Namespace):
    """Result cache; with ``--peers`` a TieredCache (local L1 in
    front of the fabric's shared L2)."""
    from repro.service import ResultCache, TieredCache

    if getattr(args, "no_cache", False):
        return None
    local = ResultCache(args.cache_dir, max_entries=args.cache_entries)
    remote = _make_remote(args)
    if remote is None:
        return local
    return TieredCache(local, remote)


def _make_cluster_cache(args: argparse.Namespace):
    """Cluster-granular sub-key cache, conventionally placed next to
    the triple cache at ``<cache-dir>/clusters``.  Disabled alongside
    the triple cache (``--no-cache``) or on its own
    (``--no-cluster-cache``).  With ``--peers`` the store is tiered
    over the fabric, so cluster artifacts computed on other hosts are
    hits here too."""
    from repro.service import ClusterCache, ResultCache, TieredCache

    if getattr(args, "no_cache", False):
        return None
    if getattr(args, "no_cluster_cache", False):
        return None
    root = Path(args.cache_dir) / "clusters"
    remote = _make_remote(args)
    backend = None
    if remote is not None:
        backend = TieredCache(
            ResultCache(
                root,
                max_entries=args.cluster_cache_entries,
                counter_prefix="service.cluster_cache",
            ),
            remote,
        )
    return ClusterCache(
        root,
        max_entries=args.cluster_cache_entries,
        backend=backend,
    )


def cmd_batch(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.report import write_manifest
    from repro.service import BatchEngine, load_jobs

    try:
        jobs = load_jobs(args.jobs)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(str(exc))
    engine = BatchEngine(
        cache=_make_cache(args),
        cluster_cache=_make_cluster_cache(args),
        max_workers=args.workers,
        job_timeout=args.timeout,
        retries=args.retries,
        serial=args.serial,
        access_log=args.access_log,
        profile_hz=args.profile_hz if args.profile else None,
        peers=args.peers,
        peer_timeout_s=args.peer_timeout,
    )
    # ``--profile``: sample the parent alongside the per-job worker
    # profilers, then export one merged speedscope (one tab per pid).
    parent_profiler = None
    if args.profile:
        parent_profiler = obs.SamplingProfiler(
            hz=args.profile_hz, recorder=obs.active()
        )
        parent_profiler.start()
    try:
        report = engine.run(jobs)
    finally:
        parent_doc = (
            parent_profiler.stop() if parent_profiler is not None else None
        )
        if engine.access_log is not None:
            engine.access_log.close()
    print(report.render_text())
    if args.profile:
        merged = report.merged_profile(parent_doc)
        if merged is not None:
            path = obs.write_speedscope(merged, args.profile)
            pids = merged.get("pids") or [merged.get("pid")]
            print(
                f"profile written to {path} ({len(pids)} process(es))",
                file=sys.stderr,
            )
            print(
                obs.render_profile_table(merged, limit=10),
                file=sys.stderr,
            )
        else:  # pragma: no cover -- profiler produced nothing
            print("no profile samples collected", file=sys.stderr)
    if args.manifest_dir:
        for outcome in report.outcomes:
            if outcome.manifest:
                write_manifest(outcome.manifest, args.manifest_dir)
        print(
            f"manifests written to {args.manifest_dir}", file=sys.stderr
        )
    if args.stats_out:
        Path(args.stats_out).write_text(
            json.dumps(
                report.to_dict(),
                indent=2,
                sort_keys=True,
                separators=(",", ": "),
            )
            + "\n"
        )
        print(f"batch stats written to {args.stats_out}", file=sys.stderr)
    return report.exit_code()


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import TimingDaemon

    cache_server = None
    if getattr(args, "cache_listen", None) is not None:
        from repro.service import CacheServer

        # The fabric store is a separate namespace next to the triple
        # cache: this daemon *serves* <cache-dir>/fabric to its peers,
        # while its own probes go through the TieredCache built from
        # --peers (which normally includes this very server).
        cache_server = CacheServer(
            Path(args.cache_dir) / "fabric",
            port=args.cache_listen,
        )
    access_log = args.access_log
    if access_log and getattr(args, "access_log_max_bytes", None):
        from repro.obs.accesslog import AccessLog

        access_log = AccessLog(
            access_log,
            slow_threshold_s=args.slow_threshold,
            max_bytes=args.access_log_max_bytes,
            backups=args.access_log_backups,
        )
    collector = None
    if getattr(args, "collect", False):
        from repro.service import FleetCollector

        if not getattr(args, "peers_file", None):
            raise SystemExit("--collect needs --peers-file")
        if args.http_port is None:
            raise SystemExit(
                "--collect needs --http-port (the fleet routes ride "
                "the telemetry sidecar)"
            )
        collector = FleetCollector(
            args.peers_file,
            interval_s=args.collect_interval,
            timeout_s=args.peer_timeout,
            http_port=None,
        )
    daemon = TimingDaemon(
        args.socket,
        cache=_make_cache(args),
        cluster_cache=_make_cluster_cache(args),
        cache_server=cache_server,
        slow_path_limit=args.limit,
        telemetry=not args.no_telemetry,
        http_port=args.http_port,
        access_log=access_log,
        slow_threshold_s=args.slow_threshold,
        alert_rules=args.alert_rules,
        crash_dir=args.crash_dir,
        trace_dir=args.trace_dir,
        trace_max_bytes=args.trace_max_bytes,
        trace_sample=args.trace_sample,
        collector=collector,
        workers=args.workers,
        snapshot_reads=not args.no_snapshot_reads,
        stall_timeout_s=(
            args.stall_timeout if args.stall_timeout > 0 else None
        ),
        # The serving CLI owns the process, so chaining excepthook /
        # faulthandler into the crash dir is safe here (the embeddable
        # TimingDaemon class leaves them alone by default).
        install_crash_hooks=True,
    )
    print(
        f"repro-sta daemon listening on {args.socket} "
        f"(pid {__import__('os').getpid()}); "
        'stop with {"op": "shutdown"} or Ctrl-C',
        file=sys.stderr,
    )
    if args.http_port is not None:
        print(
            f"telemetry http on 127.0.0.1:{args.http_port} "
            "(GET /healthz, /metrics, /metrics/history, /profile, "
            "/buildz, /alertz, /crashz, /flightz, /fabricz, /traces)",
            file=sys.stderr,
        )
    if daemon.trace_store is not None:
        stats = daemon.trace_store.stats()
        print(
            f"trace store: {stats['dir']} "
            f"({stats['traces']} traces on disk, "
            f"max {args.trace_max_bytes} bytes, "
            f"sample {args.trace_sample:g})",
            file=sys.stderr,
        )
    if collector is not None:
        print(
            f"fleet collector: {len(collector.peers)} peers from "
            f"{args.peers_file} every {args.collect_interval:g}s "
            "(GET /fleetz, /fleet/doctor, /fleet/metrics, "
            "/fleet/history)",
            file=sys.stderr,
        )
    if cache_server is not None:
        # Bind now so the address is printable before serve_forever
        # blocks (the daemon's start path skips an already-bound one).
        host, port = cache_server.start()
        print(
            f"cache fabric store on {host}:{port} "
            f"(GET/PUT/HEAD /objects/<key>, {Path(args.cache_dir) / 'fabric'})",
            file=sys.stderr,
        )
    if args.peers:
        print(
            f"cache fabric peers: {', '.join(args.peers)}",
            file=sys.stderr,
        )
    if args.access_log:
        print(f"access log: {args.access_log}", file=sys.stderr)
    if daemon.alerts is not None:
        print(
            f"alert engine: {len(daemon.alerts.rules)} rules"
            + (f" (from {args.alert_rules})" if args.alert_rules else ""),
            file=sys.stderr,
        )
    if daemon.crash.crash_dir is not None:
        print(
            f"crash reports: {daemon.crash.crash_dir}", file=sys.stderr
        )
    if daemon.debug_ops:
        print(
            "debug ops ENABLED (fail/sleep fault injection)",
            file=sys.stderr,
        )
    if args.profile:
        daemon.start_profiler(hz=args.profile_hz)
        print(
            f"profiler sampling at {args.profile_hz:g} Hz "
            f"(profile written to {args.profile} on shutdown)",
            file=sys.stderr,
        )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.stop()
        print("daemon stopped", file=sys.stderr)
    if args.profile:
        from repro import obs

        # serve_forever's cleanup stopped the sampler and kept the doc.
        doc = daemon.stop_profiler() or daemon._last_profile
        if doc is not None:
            path = obs.write_speedscope(doc, args.profile)
            print(f"profile written to {path}", file=sys.stderr)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from repro.service import DaemonClient

    try:
        request = json.loads(args.request)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"request is not valid JSON: {exc}")
    try:
        with DaemonClient(args.socket, timeout=args.timeout) as client:
            # ``--profile``: sample the *daemon* while it handles this
            # request, then export its repro.profile/1 as speedscope.
            # A profiler someone else already started is left running
            # (fetch instead of stop).
            started = False
            if args.profile:
                start_resp = client.profile("start", hz=args.profile_hz)
                started = bool(start_resp.get("started"))
            response = client.request(request)
            if args.profile:
                from repro import obs

                action = "stop" if started else "fetch"
                profile_resp = client.profile(action)
                doc = profile_resp.get("profile")
                if isinstance(doc, dict):
                    path = obs.write_speedscope(doc, args.profile)
                    print(
                        f"daemon profile written to {path}",
                        file=sys.stderr,
                    )
    except (OSError, ConnectionError) as exc:
        raise SystemExit(f"cannot reach daemon at {args.socket}: {exc}")
    print(
        json.dumps(
            response, indent=2, sort_keys=True, separators=(",", ": ")
        )
    )
    return 0 if response.get("ok") else 1


def cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.service import DaemonClient
    from repro.service.top import fetch_frame, json_frame, render_top

    previous = None
    iterations = 1 if args.once else args.iterations
    rendered = 0
    try:
        while iterations is None or rendered < iterations:
            try:
                with DaemonClient(
                    args.socket, timeout=args.timeout
                ) as client:
                    frame = fetch_frame(client)
            except (OSError, ConnectionError) as exc:
                if args.once:
                    raise SystemExit(
                        f"cannot reach daemon at {args.socket}: {exc}"
                    )
                print(
                    f"waiting for daemon at {args.socket} ({exc})",
                    file=sys.stderr,
                )
                _time.sleep(args.interval)
                continue
            if args.json:
                # One machine-readable frame per refresh (JSON lines).
                print(
                    json.dumps(
                        json_frame(frame, previous),
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                )
                sys.stdout.flush()
            else:
                text = render_top(frame, previous)
                if args.once or args.iterations is not None:
                    print(text)
                else:  # live mode: clear + home, redraw in place
                    sys.stdout.write("\x1b[H\x1b[2J" + text + "\n")
                    sys.stdout.flush()
            previous = frame
            rendered += 1
            if iterations is None or rendered < iterations:
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_alerts(args: argparse.Namespace) -> int:
    from repro.service import DaemonClient

    try:
        with DaemonClient(args.socket, timeout=args.timeout) as client:
            if args.ack:
                response = client.alerts("ack", name=args.ack)
            else:
                response = client.alerts()
    except (OSError, ConnectionError) as exc:
        raise SystemExit(f"cannot reach daemon at {args.socket}: {exc}")
    if not response.get("ok"):
        print(
            f"alerts: {response.get('error', 'op failed')}",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(
            json.dumps(
                response, indent=2, sort_keys=True, separators=(",", ": ")
            )
        )
        return 0
    if args.ack:
        print(f"acknowledged {args.ack}")
        return 0
    rows = [r for r in response.get("alerts") or [] if isinstance(r, dict)]
    print(
        f"{response.get('rules', len(rows))} rules, "
        f"{response.get('firing', 0)} firing "
        f"({response.get('evaluations', 0)} evaluations)"
    )
    print(f"{'STATE':<9}{'SEV':<9}{'NAME':<28}MESSAGE")
    for row in rows:
        state = str(row.get("state", "?"))
        if row.get("acked"):
            state += "*"
        message = str(row.get("message") or row.get("description") or "")
        print(
            f"{state:<9}{str(row.get('severity', '?')):<9}"
            f"{str(row.get('name', '?')):<28}{message}"[:100]
        )
    return 0


def _fleet_peers(args: argparse.Namespace) -> List[str]:
    """Peer URLs for the fleet commands (``--peers`` + ``--peers-file``)."""
    from repro.obs.fleet import load_peers

    peers = list(getattr(args, "peers", None) or ())
    if getattr(args, "peers_file", None):
        try:
            for url in load_peers(args.peers_file):
                if url not in peers:
                    peers.append(url)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read --peers-file: {exc}")
    if not peers:
        raise SystemExit("no peers: pass --peers and/or --peers-file")
    return peers


def cmd_doctor(args: argparse.Namespace) -> int:
    if getattr(args, "fleet", False):
        from repro.obs.fleet import (
            build_fleet_doctor,
            fleet_doctor_exit_code,
            render_fleet_doctor,
        )
        from repro.service.collector import scrape_fleet

        scrapes = scrape_fleet(
            _fleet_peers(args), timeout_s=args.timeout
        )
        doc = build_fleet_doctor(scrapes)
        if args.json:
            print(
                json.dumps(
                    doc, indent=2, sort_keys=True, separators=(",", ": ")
                )
            )
        else:
            print(render_fleet_doctor(doc))
        return fleet_doctor_exit_code(doc)

    from repro.service import DaemonClient
    from repro.service.doctor import (
        doctor_exit_code,
        fetch_doctor,
        render_doctor,
    )

    if not args.socket:
        raise SystemExit("doctor needs --socket (or --fleet with peers)")
    try:
        with DaemonClient(args.socket, timeout=args.timeout) as client:
            doc = fetch_doctor(client, flight_last=args.flight)
    except (OSError, ConnectionError) as exc:
        raise SystemExit(f"cannot reach daemon at {args.socket}: {exc}")
    if args.json:
        print(
            json.dumps(
                doc, indent=2, sort_keys=True, separators=(",", ": ")
            )
        )
    else:
        print(render_doctor(doc))
    return doctor_exit_code(doc)


def cmd_collect(args: argparse.Namespace) -> int:
    """Standalone fleet collector process (``repro-sta collect``)."""
    import time as _time

    from repro.service import FleetCollector

    collector = FleetCollector(
        args.peers_file,
        interval_s=args.interval,
        timeout_s=args.peer_timeout,
        http_port=args.http_port,
    )
    host, port = collector.start()
    print(
        f"repro-sta collector on {host}:{port} "
        f"(GET /fleetz, /fleet/doctor, /fleet/metrics, /fleet/history, "
        f"/healthz); {len(collector.peers)} peers from {args.peers_file} "
        f"every {args.interval:g}s",
        file=sys.stderr,
    )
    try:
        while True:
            _time.sleep(3600.0)
    except KeyboardInterrupt:
        collector.stop()
        print("collector stopped", file=sys.stderr)
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Multi-peer dashboard (``repro-sta fleet``)."""
    import time as _time

    from repro.obs.fleet import build_fleet_doc, render_fleet
    from repro.service.collector import scrape_fleet

    peers = _fleet_peers(args)
    iterations = 1 if args.once else args.iterations
    rendered = 0
    try:
        while iterations is None or rendered < iterations:
            doc = build_fleet_doc(
                scrape_fleet(peers, timeout_s=args.timeout)
            )
            if args.json:
                print(
                    json.dumps(
                        doc, sort_keys=True, separators=(",", ":")
                    )
                )
                sys.stdout.flush()
            else:
                text = render_fleet(doc)
                if args.once or args.iterations is not None:
                    print(text)
                else:
                    sys.stdout.write("\x1b[H\x1b[2J" + text + "\n")
                    sys.stdout.flush()
            rendered += 1
            if iterations is None or rendered < iterations:
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_traces(args: argparse.Namespace) -> int:
    """Browse the daemon's tail-sampled trace store."""
    from repro.service import DaemonClient

    try:
        with DaemonClient(args.socket, timeout=args.timeout) as client:
            if args.action == "show":
                if not args.trace_id:
                    raise SystemExit("traces show needs a <trace_id>")
                response = client.traces("show", trace_id=args.trace_id)
            elif args.action == "stats":
                response = client.traces("stats")
            else:
                response = client.traces("list", last=args.last)
    except (OSError, ConnectionError) as exc:
        raise SystemExit(f"cannot reach daemon at {args.socket}: {exc}")
    if not response.get("ok"):
        print(
            f"traces: {response.get('error', 'op failed')}",
            file=sys.stderr,
        )
        return 1
    if args.json or args.action == "show":
        # A stored trace is a document, not a table -- emit it whole
        # (jq-friendly, and the span tree nests arbitrarily deep).
        print(
            json.dumps(
                response, indent=2, sort_keys=True, separators=(",", ": ")
            )
        )
        return 0
    if args.action == "stats":
        stats = response.get("stats") or {}
        print(
            f"{stats.get('traces', 0)} traces, "
            f"{stats.get('bytes', 0)}/{stats.get('max_bytes', 0)} bytes "
            f"in {stats.get('dir', '?')}"
        )
        return 0
    rows = response.get("traces") or []
    stats = response.get("stats") or {}
    print(
        f"{len(rows)} of {stats.get('traces', len(rows))} stored traces "
        f"({stats.get('bytes', 0)} bytes in {stats.get('dir', '?')})"
    )
    print(
        f"{'TRACE':<34}{'OP':<10}{'DESIGN':<18}{'STATUS':<8}"
        f"{'DUR':>9}  KEPT-AS"
    )
    for row in rows:
        duration = row.get("duration_s")
        duration_text = (
            f"{float(duration) * 1000.0:8.1f}ms"
            if isinstance(duration, (int, float))
            else f"{'-':>9}"
        )
        print(
            f"{str(row.get('trace_id', '?')):<34}"
            f"{str(row.get('op') or '-'):<10}"
            f"{str(row.get('design') or '-')[:17]:<18}"
            f"{str(row.get('status', '?')):<8}"
            f"{duration_text}  {row.get('sampling', '?')}"
        )
    return 0


def cmd_perf_diff(args: argparse.Namespace) -> int:
    from repro.report import diff_bench, load_bench

    per_workload = {}
    for override in args.tolerance or ():
        name, sep, value = override.partition("=")
        if not sep or not name:
            raise SystemExit(
                f"--tolerance wants NAME=PCT, got {override!r}"
            )
        try:
            per_workload[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"--tolerance {override!r}: {value!r} is not a number"
            )
    try:
        base = load_bench(args.base)
        cand = load_bench(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(str(exc))
    diff = diff_bench(
        base,
        cand,
        default_tolerance_pct=args.default_tolerance,
        per_workload=per_workload,
        workloads=args.workload or None,
    )
    if args.json:
        print(
            json.dumps(
                diff.to_dict(),
                indent=2,
                sort_keys=True,
                separators=(",", ": "),
            )
        )
    else:
        print(diff.render_text())
    return diff.exit_code()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sta",
        description="Hummingbird-style system-level timing analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="run Algorithm 1, report slow paths")
    _common_arguments(analyze)
    analyze.add_argument("--limit", type=int, default=20)
    analyze.add_argument(
        "--min-delay",
        action="store_true",
        help="also check supplementary (minimum delay) constraints",
    )
    forensics_group = analyze.add_argument_group("forensics")
    forensics_group.add_argument(
        "--manifest",
        metavar="PATH",
        help="write a run manifest (repro.manifest/1 JSON); PATH may be "
        "a directory (runs/ convention) or an explicit file",
    )
    forensics_group.add_argument(
        "--label",
        help="run label recorded in the manifest (default: design name)",
    )
    forensics_group.add_argument(
        "--audit",
        metavar="FILE",
        help="record the Algorithm 1 slack-transfer audit trail "
        "(repro.audit/1 JSON) to FILE",
    )
    analyze.set_defaults(func=cmd_analyze)

    constraints = sub.add_parser(
        "constraints", help="run Algorithm 2, print ready/required times"
    )
    _common_arguments(constraints)
    constraints.add_argument(
        "--net", action="append", help="net to report (repeatable)"
    )
    constraints.add_argument("--limit", type=int, default=40)
    constraints.set_defaults(func=cmd_constraints)

    maxfreq = sub.add_parser(
        "maxfreq", help="binary-search the fastest feasible clock scale"
    )
    _common_arguments(maxfreq)
    maxfreq.set_defaults(func=cmd_maxfreq)

    corners = sub.add_parser(
        "corners", help="slow/typical/fast multi-corner sign-off"
    )
    _common_arguments(corners)
    corners.set_defaults(func=cmd_corners)

    stats = sub.add_parser(
        "stats", help="endpoint statistics (WNS/TNS, histogram)"
    )
    _common_arguments(stats)
    stats.add_argument("--bins", type=int, default=8)
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable repro.stats/1 payload (the same "
        "timing block run manifests embed)",
    )
    stats.set_defaults(func=cmd_stats)

    report = sub.add_parser(
        "report",
        help="explain endpoint slacks (D_p, offsets, borrow chain)",
    )
    _common_arguments(report)
    report.add_argument(
        "--endpoint",
        action="append",
        help="endpoint to explain: a net, instance, cell or terminal "
        "name (repeatable; default: the worst endpoints)",
    )
    report.add_argument(
        "--format",
        choices=("text", "json", "html"),
        default="text",
        help="output format (json follows the repro.report/1 schema)",
    )
    report.add_argument(
        "--limit",
        type=int,
        default=3,
        help="how many worst endpoints to explain when no --endpoint "
        "is given",
    )
    report.add_argument(
        "--out", metavar="FILE", help="write the report to FILE"
    )
    report.set_defaults(func=cmd_report)

    diff = sub.add_parser(
        "diff",
        help="compare two run manifests (exit 1 on timing regression)",
    )
    diff.add_argument("run_a", help="baseline manifest JSON file")
    diff.add_argument("run_b", help="candidate manifest JSON file")
    diff.add_argument(
        "--json",
        action="store_true",
        help="emit the repro.diff/1 JSON document instead of text",
    )
    diff.add_argument("--limit", type=int, default=20)
    diff.set_defaults(func=cmd_diff)

    simulate = sub.add_parser(
        "simulate",
        help="dynamic validation: event simulation vs the ideal system",
    )
    _common_arguments(simulate)
    simulate.add_argument("--cycles", type=int, default=8)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=cmd_simulate)

    waveforms = sub.add_parser("waveforms", help="render the clock schedule")
    _common_arguments(waveforms, with_netlist=False)
    waveforms.set_defaults(func=cmd_waveforms)

    def _cache_arguments(parser: argparse.ArgumentParser) -> None:
        group = parser.add_argument_group("result cache")
        group.add_argument(
            "--cache-dir",
            default=".repro-cache",
            help="content-addressed result cache directory "
            "(default: .repro-cache)",
        )
        group.add_argument(
            "--cache-entries",
            type=int,
            default=256,
            help="LRU bound on cached results (default: 256)",
        )
        group.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the result cache entirely",
        )
        group.add_argument(
            "--no-cluster-cache",
            action="store_true",
            help="disable the cluster-granular sub-key cache "
            "(kept under <cache-dir>/clusters); with it on, a "
            "one-gate edit recomputes only the touched cluster",
        )
        group.add_argument(
            "--cluster-cache-entries",
            type=int,
            default=4096,
            help="LRU bound on cached cluster artifacts "
            "(default: 4096)",
        )
        fabric = parser.add_argument_group("cache fabric")
        fabric.add_argument(
            "--peers",
            metavar="URL",
            nargs="+",
            default=None,
            help="cache-fabric peer base URLs (e.g. "
            "http://127.0.0.1:9400); keys shard over the list and "
            "the local cache becomes an L1 in front of the fleet's "
            "shared L2",
        )
        fabric.add_argument(
            "--peers-file",
            metavar="FILE",
            default=None,
            help="read fabric peer URLs from FILE (one per line, or "
            "JSON); the file is re-read when it changes, so peers "
            "can join or leave without a restart",
        )
        fabric.add_argument(
            "--peer-timeout",
            type=float,
            default=2.0,
            metavar="S",
            help="per-request timeout against fabric peers "
            "(default: 2.0s); a slow or dead peer degrades to "
            "local-only, never fails a job",
        )

    batch = sub.add_parser(
        "batch",
        help="run a repro.batch/1 job set through the cache + worker pool",
    )
    batch.add_argument(
        "jobs", help="job-set JSON file (schema repro.batch/1)"
    )
    _cache_arguments(batch)
    batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width (default: cpu count)",
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job seconds before the job is retried",
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=1,
        help="worker re-dispatches before in-process fallback "
        "(default: 1)",
    )
    batch.add_argument(
        "--serial",
        action="store_true",
        help="run jobs in-process (no worker pool)",
    )
    batch.add_argument(
        "--manifest-dir",
        metavar="DIR",
        help="write each job's repro.manifest/1 into DIR",
    )
    batch.add_argument(
        "--stats-out",
        metavar="FILE",
        help="write the repro.batchstats/1 summary to FILE",
    )
    batch.add_argument(
        "--access-log",
        metavar="FILE",
        help="append one repro.accesslog/1 JSON line per job to FILE",
    )
    obs_batch = batch.add_argument_group("observability")
    obs_batch.add_argument("--trace", metavar="FILE", help=argparse.SUPPRESS)
    obs_batch.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a flat metrics JSON dump (cache/scheduler counters)",
    )
    obs_batch.add_argument(
        "--verbose", action="store_true", help="print the phase tree"
    )
    _profile_arguments(obs_batch)
    batch.set_defaults(func=cmd_batch)

    serve = sub.add_parser(
        "serve",
        help="start the timing daemon on a Unix socket (JSON-lines)",
    )
    serve.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="Unix-domain socket path to listen on",
    )
    serve.add_argument("--limit", type=int, default=50)
    serve.add_argument(
        "--workers",
        type=int,
        default=8,
        metavar="N",
        help="request-dispatch thread-pool size; connections pipeline "
        "onto it so a slow cold analysis cannot head-of-line-block "
        "other designs (0 dispatches inline per connection; default: 8)",
    )
    serve.add_argument(
        "--no-snapshot-reads",
        action="store_true",
        help="disable the lock-free analyze read path (every analyze "
        "queues on the per-design lock; the measured baseline for the "
        "snapshot_read_concurrency bench)",
    )
    serve.add_argument(
        "--cache-listen",
        type=int,
        default=None,
        metavar="PORT",
        help="serve this host's cache-fabric object store on "
        "127.0.0.1:PORT (0 picks an ephemeral port); peers address "
        "it via their --peers list",
    )
    _cache_arguments(serve)
    telemetry = serve.add_argument_group("telemetry")
    telemetry.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve GET /healthz and GET /metrics on "
        "127.0.0.1:PORT (localhost only)",
    )
    telemetry.add_argument(
        "--access-log",
        metavar="FILE",
        help="append one repro.accesslog/1 JSON line per request to FILE",
    )
    telemetry.add_argument(
        "--access-log-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="rotate the access log once it reaches N bytes "
        "(FILE -> FILE.1 -> ... -> FILE.<backups>); default: never",
    )
    telemetry.add_argument(
        "--access-log-backups",
        type=int,
        default=3,
        metavar="N",
        help="rotated access-log generations to keep (default: 3)",
    )
    telemetry.add_argument(
        "--slow-threshold",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="requests at least this slow get their full span tree "
        "attached to the access-log line (default: 1.0)",
    )
    telemetry.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable the always-on service recorder (health stays, "
        "metrics op and /metrics refuse)",
    )
    telemetry.add_argument(
        "--profile",
        metavar="FILE",
        help="run the in-daemon sampling profiler from boot and write "
        "a speedscope JSON profile to FILE on shutdown (also "
        "controllable at runtime via the 'profile' op)",
    )
    telemetry.add_argument(
        "--profile-hz",
        type=float,
        default=100.0,
        metavar="HZ",
        help="profiler sampling rate (default: 100)",
    )
    tracing = serve.add_argument_group("trace store")
    tracing.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="keep tail-sampled repro.tracedoc/1 span trees under DIR "
        "(errored + p95-slow requests always kept; their ids surface "
        "as exemplars in /metrics and resolve via 'traces show')",
    )
    tracing.add_argument(
        "--trace-max-bytes",
        type=int,
        default=64 * 1024 * 1024,
        metavar="N",
        help="size bound on the trace directory; oldest traces are "
        "evicted first (default: 64MiB)",
    )
    tracing.add_argument(
        "--trace-sample",
        type=float,
        default=0.05,
        metavar="RATE",
        help="probability of keeping an unremarkable (ok, fast) "
        "request's trace (default: 0.05)",
    )
    fleet_group = serve.add_argument_group("fleet collector")
    fleet_group.add_argument(
        "--collect",
        action="store_true",
        help="embed a fleet collector: scrape the sidecars listed in "
        "--peers-file on the history cadence and serve /fleetz, "
        "/fleet/doctor, /fleet/metrics and /fleet/history from this "
        "daemon's --http-port",
    )
    fleet_group.add_argument(
        "--collect-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="collector scrape cadence (default: 5.0, the metrics-"
        "history cadence)",
    )
    diagnosis = serve.add_argument_group("self-diagnosis")
    diagnosis.add_argument(
        "--alert-rules",
        metavar="FILE",
        help="TOML or JSON repro.alertrules/1 file; extends/overrides "
        "the built-in rules (see docs/observability.md)",
    )
    diagnosis.add_argument(
        "--crash-dir",
        default="crashes",
        metavar="DIR",
        help="directory for repro.crash/1 postmortems on unhandled "
        "errors (default: crashes)",
    )
    diagnosis.add_argument(
        "--stall-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="fire daemon.stalled when a request is in flight longer "
        "than this; 0 disables the watchdog (default: 30)",
    )
    serve.set_defaults(func=cmd_serve)

    query = sub.add_parser(
        "query",
        help="send one JSON request to a running daemon, print the reply",
    )
    query.add_argument("--socket", required=True, metavar="PATH")
    query.add_argument(
        "request",
        help='request JSON, e.g. \'{"op": "ping"}\' or \'{"op": '
        '"analyze", "netlist": "p.json", "clocks": "c.json"}\'',
    )
    query.add_argument("--timeout", type=float, default=60.0)
    obs_query = query.add_argument_group("observability")
    obs_query.add_argument(
        "--trace",
        metavar="FILE",
        help="record the request and merge the daemon's span snapshot "
        "into one cross-process Chrome trace at FILE",
    )
    obs_query.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the merged metrics JSON dump (includes daemon "
        "counters shipped back with the response)",
    )
    obs_query.add_argument(
        "--verbose",
        action="store_true",
        help="print the merged phase tree (client + daemon spans)",
    )
    obs_query.add_argument(
        "--profile",
        metavar="FILE",
        help="profile the daemon while it handles this request and "
        "write its speedscope JSON profile to FILE",
    )
    obs_query.add_argument(
        "--profile-hz",
        type=float,
        default=100.0,
        metavar="HZ",
        help="daemon profiler sampling rate (default: 100)",
    )
    query.set_defaults(func=cmd_query)

    top = sub.add_parser(
        "top",
        help="live dashboard for a running daemon (req/s, latency "
        "quantiles, cache hit rate, per-design table)",
    )
    top.add_argument("--socket", required=True, metavar="PATH")
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll/redraw period (default: 2.0)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="render N frames then exit (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render a single frame to stdout and exit (no redraw)",
    )
    top.add_argument("--timeout", type=float, default=10.0)
    top.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable repro.topframe/1 JSON document "
        "per refresh instead of the rendered dashboard",
    )
    top.set_defaults(func=cmd_top)

    alerts = sub.add_parser(
        "alerts",
        help="list or acknowledge the daemon's alert-engine rows",
    )
    alerts.add_argument("--socket", required=True, metavar="PATH")
    alerts.add_argument(
        "--ack",
        metavar="NAME",
        help="acknowledge a firing alert instead of listing",
    )
    alerts.add_argument("--timeout", type=float, default=10.0)
    alerts.add_argument(
        "--json",
        action="store_true",
        help="emit the raw repro.alerts/1 document",
    )
    alerts.set_defaults(func=cmd_alerts)

    doctor = sub.add_parser(
        "doctor",
        help="one-shot daemon triage: firing alerts, latest crash "
        "report, flight-recorder tail (exit 0 healthy / 1 alerts "
        "firing / 2 crash report present); --fleet aggregates every "
        "peer's verdict into one exit code",
    )
    doctor.add_argument("--socket", metavar="PATH")
    doctor.add_argument(
        "--flight",
        type=int,
        default=20,
        metavar="N",
        help="flight-recorder events to include (default: 20)",
    )
    doctor.add_argument("--timeout", type=float, default=10.0)
    doctor.add_argument(
        "--json",
        action="store_true",
        help="emit the raw repro.doctor/1 (or repro.fleetdoctor/1) "
        "document",
    )
    doctor.add_argument(
        "--fleet",
        action="store_true",
        help="triage every peer sidecar over HTTP instead of one "
        "daemon's socket (exit code = worst peer; a down peer is at "
        "least exit 1)",
    )
    doctor.add_argument(
        "--peers",
        metavar="URL",
        nargs="+",
        default=None,
        help="peer sidecar base URLs for --fleet",
    )
    doctor.add_argument(
        "--peers-file",
        metavar="FILE",
        default=None,
        help="read peer sidecar URLs for --fleet from FILE",
    )
    doctor.set_defaults(func=cmd_doctor)

    collect = sub.add_parser(
        "collect",
        help="run a standalone fleet collector: scrape every peer "
        "sidecar on a cadence and serve the aggregated /fleetz view",
    )
    collect.add_argument(
        "--peers-file",
        required=True,
        metavar="FILE",
        help="peer sidecar base URLs (one per line or JSON; re-read "
        "when the file changes)",
    )
    collect.add_argument(
        "--http-port",
        type=int,
        required=True,
        metavar="PORT",
        help="serve GET /fleetz, /fleet/doctor, /fleet/metrics, "
        "/fleet/history and /healthz on 127.0.0.1:PORT (0 picks an "
        "ephemeral port)",
    )
    collect.add_argument(
        "--interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="scrape cadence (default: 5.0, the metrics-history "
        "cadence)",
    )
    collect.add_argument(
        "--peer-timeout",
        type=float,
        default=2.0,
        metavar="S",
        help="per-endpoint scrape timeout (default: 2.0s)",
    )
    collect.set_defaults(func=cmd_collect)

    fleet = sub.add_parser(
        "fleet",
        help="multi-peer dashboard: one row per daemon with req/s, "
        "latency quantiles, cache/fabric hit rates, firing alerts "
        "and up/degraded/down state",
    )
    fleet.add_argument(
        "--peers",
        metavar="URL",
        nargs="+",
        default=None,
        help="peer sidecar base URLs (e.g. http://127.0.0.1:9200)",
    )
    fleet.add_argument(
        "--peers-file",
        metavar="FILE",
        default=None,
        help="read peer sidecar URLs from FILE",
    )
    fleet.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll/redraw period (default: 2.0)",
    )
    fleet.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="render N frames then exit (default: run until Ctrl-C)",
    )
    fleet.add_argument(
        "--once",
        action="store_true",
        help="render a single frame to stdout and exit (no redraw)",
    )
    fleet.add_argument("--timeout", type=float, default=2.0)
    fleet.add_argument(
        "--json",
        action="store_true",
        help="emit one repro.fleet/1 JSON document per refresh",
    )
    fleet.set_defaults(func=cmd_fleet)

    traces = sub.add_parser(
        "traces",
        help="browse the daemon's tail-sampled trace store (list / "
        "show <trace_id> / stats); exemplar trace_ids in /metrics "
        "resolve here",
    )
    traces.add_argument("--socket", required=True, metavar="PATH")
    traces.add_argument(
        "action",
        nargs="?",
        default="list",
        choices=("list", "show", "stats"),
        help="list recent traces (default), show one by id, or "
        "print store stats",
    )
    traces.add_argument(
        "trace_id",
        nargs="?",
        default=None,
        help="trace id for 'show' (32-hex; from an exemplar in "
        "/metrics, an access-log line or 'traces list')",
    )
    traces.add_argument(
        "--last",
        type=int,
        default=50,
        metavar="N",
        help="traces to list (default: 50, newest first)",
    )
    traces.add_argument("--timeout", type=float, default=10.0)
    traces.add_argument(
        "--json",
        action="store_true",
        help="emit the raw op response",
    )
    traces.set_defaults(func=cmd_traces)

    perf_diff = sub.add_parser(
        "perf-diff",
        help="compare two repro.bench/1 documents and gate on "
        "wall-time regressions (exit 1 on regression)",
    )
    perf_diff.add_argument(
        "base", metavar="BASE.json", help="baseline bench document"
    )
    perf_diff.add_argument(
        "candidate", metavar="CAND.json", help="candidate bench document"
    )
    perf_diff.add_argument(
        "--json",
        action="store_true",
        help="emit the repro.perfdiff/1 document instead of text",
    )
    perf_diff.add_argument(
        "--tolerance",
        action="append",
        metavar="NAME=PCT",
        help="per-workload tolerance override (repeatable), e.g. "
        "--tolerance analyze_random=50",
    )
    perf_diff.add_argument(
        "--default-tolerance",
        type=float,
        default=30.0,
        metavar="PCT",
        help="allowed wall-time growth before a workload counts as "
        "regressed (default: 30)",
    )
    perf_diff.add_argument(
        "--workload",
        action="append",
        metavar="NAME",
        help="compare only this workload (repeatable; default: all)",
    )
    perf_diff.set_defaults(func=cmd_perf_diff)

    return parser


def _run_instrumented(args: argparse.Namespace) -> int:
    """Run the subcommand under a recorder and export as requested."""
    from repro import obs

    # ``batch --profile`` owns its profiler (it must merge the worker
    # documents before exporting), and ``serve``/``query --profile``
    # drive the *daemon's* in-process profiler; every other command
    # samples here.
    profile_path = (
        getattr(args, "profile", None)
        if args.command not in ("batch", "serve", "query")
        else None
    )
    if getattr(args, "profile_hz", None) is not None and args.profile_hz <= 0:
        print(
            f"repro-sta: error: --profile-hz must be > 0, "
            f"got {args.profile_hz:g}",
            file=sys.stderr,
        )
        return 2
    profiler = None
    with obs.recording() as recorder:
        if profile_path:
            profiler = obs.SamplingProfiler(
                hz=args.profile_hz, recorder=recorder
            )
            profiler.start()
        try:
            with obs.span(f"cli.{args.command}", category="cli"):
                status = args.func(args)
        finally:
            if profiler is not None:
                profile_doc = profiler.stop()
    if profiler is not None:
        path = obs.write_speedscope(profile_doc, profile_path)
        print(f"profile written to {path}", file=sys.stderr)
        print(
            obs.render_profile_table(profile_doc, limit=10),
            file=sys.stderr,
        )
    # serve/query define --profile without the full obs flag set.
    if getattr(args, "trace", None):
        path = obs.write_chrome_trace(recorder, args.trace)
        print(f"trace written to {path}", file=sys.stderr)
    if getattr(args, "metrics", None):
        path = obs.write_metrics_json(recorder, args.metrics)
        print(f"metrics written to {path}", file=sys.stderr)
    if getattr(args, "verbose", False):
        print(obs.render_phase_tree(recorder), file=sys.stderr)
    return status


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if (
        getattr(args, "trace", None)
        or getattr(args, "metrics", None)
        or getattr(args, "profile", None)
        or getattr(args, "verbose", False)
    ):
        return _run_instrumented(args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
