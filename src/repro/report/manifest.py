"""Run manifests: one machine-readable record per analysis run.

A manifest captures everything needed to *compare* two runs of the
analyzer -- the primitive behind ``repro-sta diff`` and CI perf
tracking:

* **identity** -- design name, SHA-256 digest of the inputs (netlist +
  clock schedule in canonical JSON form, or the raw input files when
  paths are supplied), the clock schedule itself and the analysis
  configuration (latch model, pass strategy);
* **outcome** -- intended/violated verdict, WNS/TNS, per-endpoint
  capture slacks (the diffable payload), iteration counts;
* **cost** -- wall-clock and CPU seconds for pre-processing and
  analysis, plus an optional :mod:`repro.obs` metric snapshot.

Manifests are written into a ``runs/`` artifact directory (or any
explicit path) as deterministic JSON; only the ``created_at`` timestamp
differs between identical runs, and :func:`manifest_digest` excludes it
so equality checks are one string comparison.
"""

from __future__ import annotations

import hashlib
import json
import math
import platform
import time
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "manifest_digest",
    "timing_digest",
    "write_manifest",
]

#: Schema identifier of the manifest payload.
MANIFEST_SCHEMA = "repro.manifest/1"


def _canonical(data: object) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _num(value: Optional[float]) -> object:
    if value is None:
        return None
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def input_digest(
    network,
    schedule,
    netlist_path: Optional[Union[str, Path]] = None,
    clocks_path: Optional[Union[str, Path]] = None,
) -> str:
    """SHA-256 over the analysis inputs.

    When the original input files are known their raw bytes are hashed
    (so the digest matches what is on disk); otherwise the canonical
    JSON serialisation of the in-memory network/schedule is used.
    """
    from repro.clocks.serialize import schedule_to_dict
    from repro.netlist.persistence import network_to_dict

    h = hashlib.sha256()
    if netlist_path is not None and Path(netlist_path).exists():
        h.update(Path(netlist_path).read_bytes())
    else:
        h.update(_canonical(network_to_dict(network)).encode())
    if clocks_path is not None and Path(clocks_path).exists():
        h.update(Path(clocks_path).read_bytes())
    else:
        h.update(_canonical(schedule_to_dict(schedule)).encode())
    return h.hexdigest()


def build_manifest(
    analyzer,
    result,
    netlist_path: Optional[Union[str, Path]] = None,
    clocks_path: Optional[Union[str, Path]] = None,
    recorder=None,
    label: Optional[str] = None,
) -> Dict[str, object]:
    """Assemble the manifest for one finished :class:`TimingResult`.

    ``analyzer`` is the :class:`repro.core.analyzer.Hummingbird` that
    produced ``result``; ``recorder`` an optional :class:`repro.obs.
    Recorder` whose counters/gauges are snapshotted into the manifest.
    """
    from repro.clocks.serialize import schedule_to_dict
    from repro.core.statistics import timing_statistics

    model = analyzer.model
    stats = timing_statistics(model, result.algorithm1.slacks)
    endpoint_slacks = {
        name: _num(value)
        for name, value in sorted(result.algorithm1.slacks.capture.items())
    }
    iterations = result.algorithm1.iterations
    manifest: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "design": model.network.name,
        "label": label or model.network.name,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "input_digest": input_digest(
            model.network, model.schedule, netlist_path, clocks_path
        ),
        "clock_schedule": schedule_to_dict(model.schedule),
        "config": {
            "latch_model": model.latch_model,
            "pass_strategy": model.pass_strategy,
            "python": platform.python_version(),
        },
        "design_stats": {
            key: value
            for key, value in sorted(result.stats.items())
            if isinstance(value, (int, float))
        },
        "timing": {
            "intended": result.intended,
            "converged": result.algorithm1.converged,
            "worst_slack": _num(stats.overall.worst_slack),
            "total_negative_slack": _num(
                stats.overall.total_negative_slack
            ),
            "endpoints": stats.overall.endpoints,
            "violating": stats.overall.violating,
            "slow_paths": len(result.slow_paths),
            "endpoint_slacks": endpoint_slacks,
        },
        "iterations": {
            "forward": iterations.forward,
            "backward": iterations.backward,
            "partial_forward": iterations.partial_forward,
            "partial_backward": iterations.partial_backward,
            "total": iterations.total,
        },
        "cost": {
            "preprocess_s": result.preprocess_seconds,
            "analysis_s": result.analysis_seconds,
            "cpu_s": result.cpu_seconds,
        },
    }
    if recorder is not None:
        from repro.obs.metrics import metrics_dict

        snapshot = metrics_dict(recorder)
        manifest["obs"] = {
            "counters": {
                name: value
                for name, value in snapshot["counters"].items()
                if value
            },
            "gauges": snapshot["gauges"],
        }
    return manifest


def manifest_digest(manifest: Dict[str, object]) -> str:
    """Digest of the manifest *content* (timestamp and cost excluded).

    Two runs of the same inputs through the same code produce the same
    content digest even though their wall-clock fields differ.
    """
    stable = {
        key: value
        for key, value in manifest.items()
        if key not in ("created_at", "cost", "obs")
    }
    return hashlib.sha256(_canonical(stable).encode()).hexdigest()


def timing_digest(manifest: Dict[str, object]) -> str:
    """Digest of the timing *outcome* only.

    Unlike :func:`manifest_digest` this also excludes the iteration
    counts: a warm-started incremental re-analysis may reach the same
    fixed point in fewer Algorithm 1 cycles than a cold run, and two
    runs that agree on design, configuration, clocks and every endpoint
    slack are the *same answer* regardless of how many transfer sweeps
    it took.  The service daemon reports this digest so clients can
    check that incremental answers match one-shot CLI runs.
    """
    stable = {
        key: manifest.get(key)
        for key in ("schema", "design", "input_digest", "clock_schedule",
                    "config", "timing")
    }
    return hashlib.sha256(_canonical(stable).encode()).hexdigest()


def write_manifest(
    manifest: Dict[str, object], destination: Union[str, Path]
) -> Path:
    """Write the manifest as deterministic JSON.

    ``destination`` may be a directory (a ``<label>.manifest.json`` file
    is created inside, the ``runs/`` artifact-dir convention) or an
    explicit file path.
    """
    destination = Path(destination)
    if destination.is_dir() or (
        not destination.suffix and not destination.exists()
    ):
        destination.mkdir(parents=True, exist_ok=True)
        label = str(manifest.get("label", "run")).replace("/", "_")
        destination = destination / f"{label}.manifest.json"
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        json.dumps(
            manifest, indent=2, sort_keys=True, separators=(",", ": ")
        )
    )
    return destination
