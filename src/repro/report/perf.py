"""Bench-to-bench perf regression gate (``repro-sta perf-diff``).

:mod:`repro.report.diff` compares two run *manifests* (timing facts);
this module compares two ``repro.bench/1`` documents (runtime facts)
as produced by ``benchmarks/run_bench.py`` -- the committed
``BENCH_PR<n>.json`` baselines at the repo root versus a fresh run.

The comparison is deliberately simple: per-workload wall-time delta in
percent against a tolerance (default 30%, per-workload overridable),
because CI runners are noisy and wall time is the only number that
matters for the paper's "cheap enough for the inner loop" claim.
Counters ride along for diagnosis (a wall regression with flat
``alg1.iterations_total`` is a code slowdown, with rising iterations a
convergence regression) but never gate.

Exit-code convention (:meth:`PerfDiff.exit_code`):

* ``0`` -- every compared workload within tolerance,
* ``1`` -- at least one workload regressed past its tolerance,
* ``2`` -- nothing could be compared (disjoint workload sets).

New workloads (present only in the candidate) and retired ones
(present only in the baseline) are reported but never fail the gate --
a PR that adds a bench workload must not need its own baseline to pass
CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["PERFDIFF_SCHEMA", "PerfDiff", "PerfRow", "diff_bench", "load_bench"]

#: Schema identifier of the comparison document.
PERFDIFF_SCHEMA = "repro.perfdiff/1"

#: Schema the input documents must carry.
BENCH_SCHEMA = "repro.bench/1"


def load_bench(path: Union[str, Path]) -> Dict[str, object]:
    """Read and validate one ``repro.bench/1`` document."""
    path = Path(path)
    data = json.loads(path.read_text())
    if data.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: not a {BENCH_SCHEMA} document "
            f"(schema={data.get('schema')!r})"
        )
    if not isinstance(data.get("benches"), dict):
        raise ValueError(f"{path}: missing 'benches' table")
    return data


@dataclass
class PerfRow:
    """One workload's baseline-vs-candidate comparison."""

    name: str
    base_s: Optional[float]
    cand_s: Optional[float]
    tolerance_pct: float
    #: ``"ok"`` | ``"regressed"`` | ``"new"`` | ``"removed"``
    status: str
    delta_pct: Optional[float] = None
    #: Counter deltas for diagnosis (candidate minus baseline).
    counter_deltas: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "base_s": self.base_s,
            "cand_s": self.cand_s,
            "delta_pct": (
                round(self.delta_pct, 2)
                if self.delta_pct is not None
                else None
            ),
            "tolerance_pct": self.tolerance_pct,
            "status": self.status,
            "counter_deltas": {
                name: round(value, 3)
                for name, value in sorted(self.counter_deltas.items())
            },
        }


@dataclass
class PerfDiff:
    """Comparison of two bench documents."""

    rows: List[PerfRow]
    default_tolerance_pct: float
    base_quick: Optional[bool] = None
    cand_quick: Optional[bool] = None

    @property
    def compared(self) -> int:
        return sum(1 for r in self.rows if r.status in ("ok", "regressed"))

    @property
    def regressions(self) -> List[PerfRow]:
        return [r for r in self.rows if r.status == "regressed"]

    def exit_code(self) -> int:
        if not self.compared:
            return 2
        return 1 if self.regressions else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": PERFDIFF_SCHEMA,
            "default_tolerance_pct": self.default_tolerance_pct,
            "base_quick": self.base_quick,
            "cand_quick": self.cand_quick,
            "compared": self.compared,
            "regressed": len(self.regressions),
            "exit_code": self.exit_code(),
            "rows": [row.to_dict() for row in self.rows],
        }

    def render_text(self) -> str:
        header = (
            f"{'workload':<30} {'base':>10} {'cand':>10} "
            f"{'delta':>9} {'tol':>6}  status"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            base = f"{row.base_s:.4f}s" if row.base_s is not None else "-"
            cand = f"{row.cand_s:.4f}s" if row.cand_s is not None else "-"
            delta = (
                f"{row.delta_pct:+.1f}%"
                if row.delta_pct is not None
                else "-"
            )
            flag = (
                "REGRESSED" if row.status == "regressed" else row.status
            )
            lines.append(
                f"{row.name[:30]:<30} {base:>10} {cand:>10} "
                f"{delta:>9} {row.tolerance_pct:>5.0f}%  {flag}"
            )
        regressed = self.regressions
        if not self.compared:
            lines.append("perf-diff: no common workloads to compare")
        elif regressed:
            worst = max(regressed, key=lambda r: r.delta_pct or 0.0)
            lines.append(
                f"perf-diff: {len(regressed)}/{self.compared} workload(s) "
                f"regressed (worst: {worst.name} {worst.delta_pct:+.1f}%)"
            )
        else:
            lines.append(
                f"perf-diff: {self.compared} workload(s) within tolerance"
            )
        if (
            self.base_quick is not None
            and self.cand_quick is not None
            and self.base_quick != self.cand_quick
        ):
            lines.append(
                "warning: quick/full mode mismatch between the two "
                "documents -- wall times are not directly comparable"
            )
        return "\n".join(lines)


def diff_bench(
    base: Dict[str, object],
    cand: Dict[str, object],
    default_tolerance_pct: float = 30.0,
    per_workload: Optional[Dict[str, float]] = None,
    workloads: Optional[List[str]] = None,
) -> PerfDiff:
    """Compare two ``repro.bench/1`` documents workload by workload.

    Parameters
    ----------
    base, cand:
        Baseline and candidate documents (see :func:`load_bench`).
    default_tolerance_pct:
        Allowed wall-time growth in percent before a workload counts as
        regressed (default 30 -- generous on purpose: CI wall clocks
        are noisy and the gate must not cry wolf).
    per_workload:
        Per-workload tolerance overrides, e.g.
        ``{"analyze_random": 50.0}``.
    workloads:
        When given, only these workloads are compared (others are
        dropped from the report entirely).
    """
    if default_tolerance_pct < 0:
        raise ValueError("default_tolerance_pct must be >= 0")
    overrides = dict(per_workload or {})
    base_benches = base.get("benches") or {}
    cand_benches = cand.get("benches") or {}
    names = sorted(set(base_benches) | set(cand_benches))
    if workloads:
        wanted = set(workloads)
        names = [n for n in names if n in wanted]
    rows: List[PerfRow] = []
    for name in names:
        tolerance = float(overrides.get(name, default_tolerance_pct))
        b = base_benches.get(name)
        c = cand_benches.get(name)
        base_s = _wall(b)
        cand_s = _wall(c)
        if base_s is None and cand_s is None:
            continue
        if base_s is None:
            rows.append(PerfRow(name, None, cand_s, tolerance, "new"))
            continue
        if cand_s is None:
            rows.append(PerfRow(name, base_s, None, tolerance, "removed"))
            continue
        if base_s > 0:
            delta_pct = (cand_s - base_s) / base_s * 100.0
        else:
            delta_pct = 0.0 if cand_s == 0 else float("inf")
        status = "regressed" if delta_pct > tolerance else "ok"
        rows.append(
            PerfRow(
                name,
                base_s,
                cand_s,
                tolerance,
                status,
                delta_pct=delta_pct,
                counter_deltas=_counter_deltas(b, c),
            )
        )
    return PerfDiff(
        rows=rows,
        default_tolerance_pct=default_tolerance_pct,
        base_quick=base.get("quick"),
        cand_quick=cand.get("quick"),
    )


def _wall(bench: Optional[Dict[str, object]]) -> Optional[float]:
    if not isinstance(bench, dict):
        return None
    wall = bench.get("wall_s")
    try:
        return float(wall)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def _counter_deltas(
    base: Optional[Dict[str, object]], cand: Optional[Dict[str, object]]
) -> Dict[str, float]:
    base_counters = (base or {}).get("counters") or {}
    cand_counters = (cand or {}).get("counters") or {}
    deltas = {}
    for name in set(base_counters) | set(cand_counters):
        try:
            delta = float(cand_counters.get(name, 0.0)) - float(
                base_counters.get(name, 0.0)
            )
        except (TypeError, ValueError):
            continue
        if delta:
            deltas[name] = delta
    return deltas
