"""``repro.report`` -- the timing *forensics* layer.

Where :mod:`repro.obs` makes the **runtime** observable (spans, counters,
traces), this package makes the **analysis results** explainable:

* :mod:`repro.report.provenance` -- the slack-transfer audit trail:
  every offset move Algorithm 1 performs is recorded as a structured
  :class:`TransferEvent` (latch, donor path, recipient path, amount,
  iteration), bounded by a ring buffer and strictly no-op when disabled;
* :mod:`repro.report.forensics` -- explainable path reports: for any
  endpoint, the full arrival/required breakdown (ideal path constraint
  ``D_p``, terminal offsets ``O_x``/``O_y``, the borrow chain through
  transparent latches, and the binding constraint) in text, JSON
  (``repro.report/1``) and static HTML;
* :mod:`repro.report.manifest` -- run manifests: a machine-readable
  record of one analysis run (input digest, clock schedule, config,
  wall/CPU time, WNS/TNS, obs metric snapshot) for a ``runs/`` artifact
  directory;
* :mod:`repro.report.diff` -- run-to-run comparison of two manifests:
  per-endpoint slack deltas, new/fixed violations and iteration-count
  regressions (the primitive behind ``repro-sta diff`` and CI perf
  tracking);
* :mod:`repro.report.perf` -- bench-to-bench wall-time comparison of
  two ``repro.bench/1`` documents with per-workload tolerances (the
  primitive behind ``repro-sta perf-diff`` and the CI perf gate).

See ``docs/reporting.md`` for the report anatomy and schema reference.
"""

from repro.report.diff import RunDiff, diff_manifests, load_manifest
from repro.report.forensics import (
    BorrowLink,
    EndpointForensics,
    PathForensics,
)
from repro.report.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    manifest_digest,
    timing_digest,
    write_manifest,
)
from repro.report.perf import (
    PERFDIFF_SCHEMA,
    PerfDiff,
    PerfRow,
    diff_bench,
    load_bench,
)
from repro.report.provenance import (
    AuditTrail,
    TransferEvent,
    active_trail,
    auditing,
    set_trail,
    trail_to_dict,
    write_audit_json,
)

__all__ = [
    "AuditTrail",
    "TransferEvent",
    "active_trail",
    "auditing",
    "set_trail",
    "trail_to_dict",
    "write_audit_json",
    "PathForensics",
    "EndpointForensics",
    "BorrowLink",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "manifest_digest",
    "timing_digest",
    "write_manifest",
    "RunDiff",
    "diff_manifests",
    "load_manifest",
    "PERFDIFF_SCHEMA",
    "PerfDiff",
    "PerfRow",
    "diff_bench",
    "load_bench",
]
