"""Explainable path reports: why is this endpoint's slack what it is?

For any capture endpoint (a net, a generic instance or a synchroniser
cell name) :class:`PathForensics` reconstructs the full Section 4-6
story behind the number:

* the **ideal path constraint** ``D_p`` between the launch and capture
  instances' ideal edges (Section 4),
* the **terminal offsets** ``O_x`` (launch assertion offset, with its
  ``max(O_zc, O_zd)`` decomposition) and ``O_y`` (capture closure
  offset, ``min(O_dc, O_dz)``) -- Section 5's simplified model,
* the traversed combinational arcs with cumulative arrivals,
* the **borrow chain**: the transparent latches upstream whose windows
  ended up input-limited (``O_zd > O_zc``), i.e. through which an
  upstream path borrowed time from this one (Section 6's slack
  transfer at its fixed point),
* the **binding constraint**: setup (the ordinary max-delay path
  constraint), supplementary min-delay (Section 4's ``dmin_p`` bound),
  or a synchronising-element bound (a window pinned at its limit, so no
  further transfer was possible).

Renderers: plain text, JSON (schema ``repro.report/1``) and a static
HTML page with an embedded slack histogram.  See ``docs/reporting.md``.
"""

from __future__ import annotations

import html
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ideal_constraints import ideal_path_constraint
from repro.core.mindelay import check_min_delays
from repro.core.model import AnalysisModel, CapturePort
from repro.core.report import PathStep, trace_endpoint_path
from repro.core.slack import PortSlacks, SlackEngine
from repro.core.statistics import timing_statistics
from repro.core.sync_elements import GenericInstance, InstanceKind

__all__ = ["BorrowLink", "EndpointForensics", "PathForensics"]

#: Schema identifier of the JSON report payload.
REPORT_SCHEMA = "repro.report/1"

#: Window positions closer than this to a bound count as "pinned".
_BOUND_EPSILON = 1e-9


@dataclass(frozen=True)
class BorrowLink:
    """One transparent latch of the borrow chain.

    ``borrowed`` is ``max(0, O_zd - O_zc)``: how much later the output
    asserts because of *input timing* rather than control -- exactly the
    time the upstream path borrowed from the path leaving this latch.
    ``donor`` names the path endpoint that ceded the time (the latch's
    data output side), ``recipient`` the one that gained it (the data
    input side).
    """

    latch: str
    cell: str
    window: float  # transparency width W
    position: float  # final window position w = O_zd in [0, W]
    control_offset: float  # O_zc = control arrival + D_cq
    borrowed: float
    donor: str
    recipient: str

    @property
    def pinned(self) -> Optional[str]:
        """Which window bound (if any) the position is pinned at."""
        if self.position <= _BOUND_EPSILON:
            return "leading"
        if self.position >= self.window - _BOUND_EPSILON:
            return "trailing"
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "latch": self.latch,
            "cell": self.cell,
            "window": self.window,
            "position": self.position,
            "control_offset": self.control_offset,
            "borrowed": self.borrowed,
            "donor": self.donor,
            "recipient": self.recipient,
            "pinned": self.pinned,
        }


@dataclass
class EndpointForensics:
    """The full arrival/required breakdown of one capture endpoint."""

    endpoint: str  # the query string
    capture_instance: str
    capture_cell: str
    capture_net: str
    cluster: str
    pass_index: int
    slack: float
    arrival: float
    closure: float
    launch_instance: Optional[str]
    ideal_constraint: Optional[float]  # D_p
    launch_offset: Optional[float]  # O_x
    capture_offset: float  # O_y
    launch_offset_parts: Dict[str, object] = field(default_factory=dict)
    capture_offset_parts: Dict[str, object] = field(default_factory=dict)
    available_time: Optional[float] = None  # D_p - O_x + O_y
    steps: Tuple[PathStep, ...] = ()
    borrow_chain: Tuple[BorrowLink, ...] = ()
    binding_constraint: str = "setup"
    binding_detail: str = ""
    min_delay_margin: Optional[float] = None

    @property
    def violated(self) -> bool:
        return self.slack <= 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "endpoint": self.endpoint,
            "capture_instance": self.capture_instance,
            "capture_cell": self.capture_cell,
            "capture_net": self.capture_net,
            "cluster": self.cluster,
            "pass_index": self.pass_index,
            "slack": _num(self.slack),
            "arrival": _num(self.arrival),
            "closure": _num(self.closure),
            "launch_instance": self.launch_instance,
            "ideal_constraint": _num(self.ideal_constraint),
            "launch_offset": _num(self.launch_offset),
            "capture_offset": _num(self.capture_offset),
            "launch_offset_parts": self.launch_offset_parts,
            "capture_offset_parts": self.capture_offset_parts,
            "available_time": _num(self.available_time),
            "violated": self.violated,
            "steps": [
                {
                    "cell": step.cell_name,
                    "in_pin": step.in_pin,
                    "out_pin": step.out_pin,
                    "net": step.net_name,
                    "arrival": _num(step.arrival),
                }
                for step in self.steps
            ],
            "borrow_chain": [link.to_dict() for link in self.borrow_chain],
            "binding_constraint": self.binding_constraint,
            "binding_detail": self.binding_detail,
            "min_delay_margin": _num(self.min_delay_margin),
        }


def _num(value: Optional[float]) -> object:
    """JSON-safe numeric encoding (infinities become strings)."""
    if value is None:
        return None
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if math.isnan(value):  # pragma: no cover - defensive
        return "nan"
    return value


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return f"{value:.4f}"


class PathForensics:
    """Endpoint explanation engine over one finished analysis.

    Parameters
    ----------
    model, engine:
        The analysed model and its slack engine (offsets as left by
        Algorithm 1 -- the explanation is about *those* offsets).
    slacks:
        Algorithm 1's final node slacks (``result.algorithm1.slacks``).
    """

    def __init__(
        self,
        model: AnalysisModel,
        engine: SlackEngine,
        slacks: PortSlacks,
    ) -> None:
        self._model = model
        self._engine = engine
        self._slacks = slacks
        self._instances: Dict[str, GenericInstance] = {
            inst.name: inst for inst in model.all_instances()
        }
        # instance name -> its capture ports (an instance may capture in
        # several clusters; keep all and pick the worst when walking).
        self._capture_ports: Dict[str, List[CapturePort]] = {}
        for cluster in model.clusters:
            for port in model.capture_ports[cluster.name]:
                self._capture_ports.setdefault(
                    port.instance.name, []
                ).append(port)

    # ------------------------------------------------------------------
    # endpoint resolution
    # ------------------------------------------------------------------
    def endpoints(self) -> List[str]:
        """All capture endpoints, as ``instance (net)`` labels."""
        labels = []
        for ports in self._capture_ports.values():
            for port in ports:
                labels.append(f"{port.instance.name} ({port.net_name})")
        return sorted(labels)

    def _resolve(self, endpoint: str) -> CapturePort:
        """Match an endpoint query against nets, instances and cells."""
        matches: List[CapturePort] = []
        for ports in self._capture_ports.values():
            for port in ports:
                if endpoint in (
                    port.net_name,
                    port.instance.name,
                    port.instance.cell_name,
                    port.terminal_name,
                ):
                    matches.append(port)
        if not matches:
            known = ", ".join(self.endpoints()[:10])
            raise KeyError(
                f"no capture endpoint matches {endpoint!r} "
                f"(known endpoints include: {known})"
            )
        # Several generic instances may match one cell/net: explain the
        # worst (smallest slack) one.
        return min(matches, key=self._port_slack)

    def _port_slack(self, port: CapturePort) -> float:
        return self._slacks.capture.get(port.instance.name, math.inf)

    # ------------------------------------------------------------------
    # explanation
    # ------------------------------------------------------------------
    def explain(self, endpoint: str) -> EndpointForensics:
        port = self._resolve(endpoint)
        model, engine = self._model, self._engine
        slack = self._port_slack(port)
        path = trace_endpoint_path(model, engine, port, slack)
        capture = port.instance
        launch_name = path.launch_instance if path is not None else None
        launch = self._instances.get(launch_name) if launch_name else None

        ideal = None
        launch_offset = None
        launch_parts: Dict[str, object] = {}
        available = None
        if launch is not None and launch.assertion_edge is not None:
            ideal = float(
                ideal_path_constraint(
                    launch, capture, model.schedule.overall_period
                )
            )
            launch_offset = launch.assertion_offset
            if launch.kind is InstanceKind.FIXED_SOURCE:
                launch_parts = {
                    "fixed_offset": launch.fixed_offset,
                    "bound": "fixed",
                }
            else:
                launch_parts = {
                    "o_zc": launch.o_zc,
                    "o_zd": launch.o_zd,
                    "bound": (
                        "input (O_zd)"
                        if launch.o_zd > launch.o_zc
                        else "control (O_zc)"
                    ),
                }

        if capture.kind is InstanceKind.FIXED_SINK:
            capture_offset = capture.fixed_offset
            capture_parts: Dict[str, object] = {
                "fixed_offset": capture.fixed_offset,
                "bound": "fixed",
            }
        else:
            capture_offset = capture.closure_offset
            capture_parts = {
                "o_dc": capture.o_dc,
                "o_dz": capture.o_dz,
                "bound": (
                    "setup (O_dc)"
                    if capture.o_dc <= capture.o_dz
                    else "window (O_dz)"
                ),
            }
        if ideal is not None and launch_offset is not None:
            available = ideal - launch_offset + capture_offset

        chain = self._borrow_chain(launch)
        arrival = path.arrival if path is not None else math.nan
        closure = path.closure if path is not None else math.nan
        binding, detail, min_margin = self._binding_constraint(
            port, slack, chain
        )
        return EndpointForensics(
            endpoint=endpoint,
            capture_instance=capture.name,
            capture_cell=capture.cell_name,
            capture_net=port.net_name,
            cluster=port.cluster_name,
            pass_index=port.pass_index,
            slack=slack,
            arrival=arrival,
            closure=closure,
            launch_instance=launch_name,
            ideal_constraint=ideal,
            launch_offset=launch_offset,
            capture_offset=capture_offset,
            launch_offset_parts=launch_parts,
            capture_offset_parts=capture_parts,
            available_time=available,
            steps=path.steps if path is not None else (),
            borrow_chain=chain,
            binding_constraint=binding,
            binding_detail=detail,
            min_delay_margin=min_margin,
        )

    def _borrow_chain(
        self, launch: Optional[GenericInstance], max_links: int = 32
    ) -> Tuple[BorrowLink, ...]:
        """Walk upstream across input-limited transparent latches."""
        chain: List[BorrowLink] = []
        visited = set()
        current = launch
        while (
            current is not None
            and current.name not in visited
            and len(chain) < max_links
        ):
            visited.add(current.name)
            if current.kind is not InstanceKind.TRANSPARENT:
                break
            borrowed = max(0.0, current.o_zd - current.o_zc)
            chain.append(
                BorrowLink(
                    latch=current.name,
                    cell=current.cell_name,
                    window=current.width,
                    position=current.w,
                    control_offset=current.o_zc,
                    borrowed=borrowed,
                    donor=current.terminal_out or f"{current.cell_name}.Q",
                    recipient=current.terminal_in or f"{current.cell_name}.D",
                )
            )
            if borrowed <= _BOUND_EPSILON:
                break  # control-limited: nothing was borrowed through it
            current = self._upstream_launch(current)
        return tuple(chain)

    def _upstream_launch(
        self, instance: GenericInstance
    ) -> Optional[GenericInstance]:
        """The launch instance of the critical path *into* ``instance``."""
        ports = self._capture_ports.get(instance.name)
        if not ports:
            return None
        port = min(ports, key=self._port_slack)
        path = trace_endpoint_path(
            self._model, self._engine, port, self._port_slack(port)
        )
        if path is None or path.launch_instance is None:
            return None
        return self._instances.get(path.launch_instance)

    def _binding_constraint(
        self,
        port: CapturePort,
        slack: float,
        chain: Tuple[BorrowLink, ...],
    ) -> Tuple[str, str, Optional[float]]:
        """Classify what limits this endpoint."""
        min_margin: Optional[float] = None
        for violation in check_min_delays(self._model, self._engine):
            if (
                violation.capture_instance == port.instance.name
                and violation.capture_net == port.net_name
            ):
                margin = -violation.amount
                if min_margin is None or margin < min_margin:
                    min_margin = margin
        if min_margin is not None and min_margin < min(slack, 0.0):
            return (
                "supplementary-min-delay",
                f"earliest arrival {(-min_margin):.4f} too early "
                f"(Section 4 supplementary constraint)",
                min_margin,
            )
        if slack <= 0.0:
            pinned = [
                link for link in chain if link.pinned == "trailing"
            ]
            if pinned:
                names = ", ".join(link.latch for link in pinned)
                return (
                    "sync-element-bound",
                    f"window(s) pinned at the trailing bound ({names}): "
                    "no further backward transfer was possible",
                    min_margin,
                )
            return (
                "setup",
                "max-delay path constraint violated "
                "(d_p >= D_p - O_x + O_y)",
                min_margin,
            )
        return (
            "setup",
            f"met with {slack:.4f} margin",
            min_margin,
        )

    # ------------------------------------------------------------------
    # renderers
    # ------------------------------------------------------------------
    def render_text(self, forensics: EndpointForensics) -> str:
        f = forensics
        lines = [
            f"endpoint {f.endpoint}: capture {f.capture_instance} "
            f"on net {f.capture_net}",
            f"  cluster {f.cluster}, analysis pass {f.pass_index}",
            f"  slack     {_fmt(f.slack)}   "
            f"({'VIOLATED' if f.violated else 'met'})",
            f"  arrival   {_fmt(f.arrival)}   closure {_fmt(f.closure)}",
            f"  D_p       {_fmt(f.ideal_constraint)}   "
            f"(ideal path constraint, Section 4)",
            f"  O_x       {_fmt(f.launch_offset)}   "
            f"{_parts(f.launch_offset_parts)}",
            f"  O_y       {_fmt(f.capture_offset)}   "
            f"{_parts(f.capture_offset_parts)}",
            f"  available {_fmt(f.available_time)}   (D_p - O_x + O_y)",
            f"  binding   {f.binding_constraint}: {f.binding_detail}",
        ]
        if f.launch_instance:
            lines.append(f"  launched by {f.launch_instance}")
        if f.steps:
            lines.append("  path (capture side first):")
            for step in f.steps:
                lines.append(
                    f"    {step.cell_name:<14} {step.in_pin}->{step.out_pin} "
                    f"net {step.net_name:<14} arrival {_fmt(step.arrival)}"
                )
        if f.borrow_chain:
            lines.append("  borrow chain (downstream first):")
            for link in f.borrow_chain:
                pinned = f" [pinned {link.pinned}]" if link.pinned else ""
                lines.append(
                    f"    {link.latch:<16} w={_fmt(link.position)}/"
                    f"{_fmt(link.window)} borrowed={_fmt(link.borrowed)} "
                    f"{link.donor} -> {link.recipient}{pinned}"
                )
        if f.min_delay_margin is not None:
            lines.append(
                f"  min-delay margin {_fmt(f.min_delay_margin)} "
                "(supplementary constraint)"
            )
        return "\n".join(lines)

    def to_dict(
        self, forensics_list: Sequence[EndpointForensics]
    ) -> Dict[str, object]:
        """The ``repro.report/1`` JSON document for one or more endpoints."""
        stats = timing_statistics(self._model, self._slacks)
        return {
            "schema": REPORT_SCHEMA,
            "design": self._model.network.name,
            "worst_slack": _num(stats.overall.worst_slack),
            "total_negative_slack": _num(
                stats.overall.total_negative_slack
            ),
            "endpoints": [f.to_dict() for f in forensics_list],
        }

    def to_json(
        self, forensics_list: Sequence[EndpointForensics]
    ) -> str:
        return json.dumps(
            self.to_dict(forensics_list),
            indent=2,
            sort_keys=True,
            separators=(",", ": "),
        )

    def render_html(
        self, forensics_list: Sequence[EndpointForensics]
    ) -> str:
        """A static, dependency-free HTML report with a slack histogram."""
        stats = timing_statistics(self._model, self._slacks)
        rows = []
        peak = max((count for __, count in stats.histogram), default=1) or 1
        for lower, count in stats.histogram:
            width_pct = 100.0 * count / peak
            rows.append(
                f'<div class="bar-row"><span class="bar-label">'
                f"&ge; {lower:.2f}</span>"
                f'<span class="bar" style="width:{width_pct:.1f}%"></span>'
                f'<span class="bar-count">{count}</span></div>'
            )
        sections = []
        for f in forensics_list:
            badge = "violated" if f.violated else "met"
            chain_rows = "".join(
                f"<tr><td>{html.escape(link.latch)}</td>"
                f"<td>{_fmt(link.position)} / {_fmt(link.window)}</td>"
                f"<td>{_fmt(link.borrowed)}</td>"
                f"<td>{html.escape(link.donor)} &rarr; "
                f"{html.escape(link.recipient)}</td>"
                f"<td>{html.escape(link.pinned or '-')}</td></tr>"
                for link in f.borrow_chain
            )
            step_rows = "".join(
                f"<tr><td>{html.escape(step.cell_name)}</td>"
                f"<td>{html.escape(step.in_pin)}&rarr;"
                f"{html.escape(step.out_pin)}</td>"
                f"<td>{html.escape(step.net_name)}</td>"
                f"<td>{_fmt(step.arrival)}</td></tr>"
                for step in f.steps
            )
            sections.append(
                f"""
<section class="endpoint {badge}">
  <h2>{html.escape(f.endpoint)}
      <span class="badge">{badge}</span></h2>
  <table class="facts">
    <tr><th>slack</th><td>{_fmt(f.slack)}</td>
        <th>arrival</th><td>{_fmt(f.arrival)}</td>
        <th>closure</th><td>{_fmt(f.closure)}</td></tr>
    <tr><th>D<sub>p</sub></th><td>{_fmt(f.ideal_constraint)}</td>
        <th>O<sub>x</sub></th><td>{_fmt(f.launch_offset)}</td>
        <th>O<sub>y</sub></th><td>{_fmt(f.capture_offset)}</td></tr>
    <tr><th>available</th><td>{_fmt(f.available_time)}</td>
        <th>binding</th>
        <td colspan="3">{html.escape(f.binding_constraint)}:
            {html.escape(f.binding_detail)}</td></tr>
    <tr><th>launch</th>
        <td colspan="5">{html.escape(f.launch_instance or 'n/a')}
            &rarr; {html.escape(f.capture_instance)}</td></tr>
  </table>
  {'<h3>borrow chain</h3><table><tr><th>latch</th><th>w / W</th>'
   '<th>borrowed</th><th>donor &rarr; recipient</th><th>pinned</th></tr>'
   + chain_rows + '</table>' if chain_rows else ''}
  {'<h3>path</h3><table><tr><th>cell</th><th>arc</th><th>net</th>'
   '<th>arrival</th></tr>' + step_rows + '</table>' if step_rows else ''}
</section>"""
            )
        design = html.escape(self._model.network.name)
        return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>timing forensics: {design}</title>
<style>
body {{ font-family: monospace; margin: 2em; color: #222; }}
h1 {{ border-bottom: 2px solid #444; }}
table {{ border-collapse: collapse; margin: 0.5em 0; }}
td, th {{ border: 1px solid #bbb; padding: 2px 8px; text-align: left; }}
.badge {{ font-size: 0.6em; padding: 2px 6px; border-radius: 4px;
         background: #2a2; color: #fff; vertical-align: middle; }}
.violated .badge {{ background: #c22; }}
.bar-row {{ display: flex; align-items: center; margin: 1px 0; }}
.bar-label {{ width: 8em; }}
.bar {{ background: #48f; height: 0.8em; display: inline-block; }}
.bar-count {{ margin-left: 0.5em; }}
.histogram {{ max-width: 40em; }}
</style></head><body>
<h1>timing forensics: {design}</h1>
<p>WNS {_fmt(stats.overall.worst_slack)}
 | TNS {_fmt(stats.overall.total_negative_slack)}
 | endpoints {stats.overall.endpoints}
 | violating {stats.overall.violating}</p>
<h2>slack histogram</h2>
<div class="histogram">{''.join(rows)}</div>
{''.join(sections)}
</body></html>
"""


def _parts(parts: Dict[str, object]) -> str:
    if not parts:
        return ""
    inner = ", ".join(
        f"{key}={_fmt(value) if isinstance(value, float) else value}"
        for key, value in parts.items()
    )
    return f"({inner})"
