"""Run-to-run comparison of two manifests (``repro-sta diff``).

Answers the regression-tracking questions the resynthesis loop (paper,
Section 9) and CI both ask after a change:

* which endpoints got **slower / faster**, and by how much,
* which violations are **new**, which are **fixed**,
* did WNS / TNS regress,
* did Algorithm 1 need **more iterations** (a convergence regression
  against the Section 8 bound),
* did the analysis get slower in wall-clock terms.

Inputs are manifests produced by :mod:`repro.report.manifest` (dicts or
file paths).  The diff itself is a plain dataclass with deterministic
text/JSON renderings.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["RunDiff", "EndpointDelta", "diff_manifests", "load_manifest"]

#: Slack changes smaller than this are reported as unchanged.
DEFAULT_TOLERANCE = 1e-9


def _parse(value: object) -> float:
    """Decode the JSON-safe numeric encoding back to a float."""
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    if value is None:
        return math.inf
    return float(value)  # type: ignore[arg-type]


def load_manifest(source: Union[str, Path, Dict]) -> Dict[str, object]:
    """Accept a manifest dict or a path to a manifest JSON file."""
    if isinstance(source, dict):
        return source
    data = json.loads(Path(source).read_text())
    schema = data.get("schema", "")
    if not str(schema).startswith("repro.manifest/"):
        raise ValueError(
            f"{source}: not a run manifest (schema {schema!r})"
        )
    return data


@dataclass(frozen=True)
class EndpointDelta:
    """Per-endpoint slack change between two runs."""

    endpoint: str
    slack_a: Optional[float]
    slack_b: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.slack_a is None or self.slack_b is None:
            return None
        if math.isinf(self.slack_a) and math.isinf(self.slack_b):
            return 0.0
        return self.slack_b - self.slack_a

    @property
    def status(self) -> str:
        a, b = self.slack_a, self.slack_b
        if a is None:
            return "added"
        if b is None:
            return "removed"
        a_bad, b_bad = a <= 0.0, b <= 0.0
        if b_bad and not a_bad:
            return "new-violation"
        if a_bad and not b_bad:
            return "fixed"
        delta = self.delta or 0.0
        if delta < -DEFAULT_TOLERANCE:
            return "regressed"
        if delta > DEFAULT_TOLERANCE:
            return "improved"
        return "unchanged"


@dataclass
class RunDiff:
    """Structured comparison of two run manifests."""

    label_a: str
    label_b: str
    same_inputs: bool
    worst_slack_a: float
    worst_slack_b: float
    tns_a: float
    tns_b: float
    iterations_a: int
    iterations_b: int
    analysis_s_a: float
    analysis_s_b: float
    endpoints: List[EndpointDelta] = field(default_factory=list)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def by_status(self, status: str) -> List[EndpointDelta]:
        return [e for e in self.endpoints if e.status == status]

    @property
    def new_violations(self) -> List[EndpointDelta]:
        return self.by_status("new-violation")

    @property
    def fixed_violations(self) -> List[EndpointDelta]:
        return self.by_status("fixed")

    @property
    def regressed(self) -> List[EndpointDelta]:
        return self.by_status("regressed") + self.new_violations

    @property
    def wns_delta(self) -> float:
        if math.isinf(self.worst_slack_a) and math.isinf(self.worst_slack_b):
            return 0.0
        return self.worst_slack_b - self.worst_slack_a

    @property
    def iteration_regression(self) -> int:
        """Extra Algorithm 1 iterations run B needed (0 when none)."""
        return max(0, self.iterations_b - self.iterations_a)

    @property
    def has_regression(self) -> bool:
        return bool(
            self.new_violations
            or self.by_status("regressed")
            or self.wns_delta < -DEFAULT_TOLERANCE
        )

    # ------------------------------------------------------------------
    # renderers
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        def num(value: float) -> object:
            if math.isinf(value):
                return "inf" if value > 0 else "-inf"
            return value

        return {
            "schema": "repro.diff/1",
            "run_a": self.label_a,
            "run_b": self.label_b,
            "same_inputs": self.same_inputs,
            "worst_slack": {
                "a": num(self.worst_slack_a),
                "b": num(self.worst_slack_b),
                "delta": num(self.wns_delta),
            },
            "total_negative_slack": {
                "a": num(self.tns_a),
                "b": num(self.tns_b),
                "delta": num(self.tns_b - self.tns_a),
            },
            "iterations": {
                "a": self.iterations_a,
                "b": self.iterations_b,
                "regression": self.iteration_regression,
            },
            "analysis_s": {
                "a": self.analysis_s_a,
                "b": self.analysis_s_b,
            },
            "counts": {
                status: len(self.by_status(status))
                for status in (
                    "new-violation",
                    "fixed",
                    "regressed",
                    "improved",
                    "unchanged",
                    "added",
                    "removed",
                )
            },
            "endpoints": [
                {
                    "endpoint": e.endpoint,
                    "slack_a": num(e.slack_a)
                    if e.slack_a is not None
                    else None,
                    "slack_b": num(e.slack_b)
                    if e.slack_b is not None
                    else None,
                    "delta": num(e.delta) if e.delta is not None else None,
                    "status": e.status,
                }
                for e in self.endpoints
                if e.status != "unchanged"
            ],
            "has_regression": self.has_regression,
        }

    def render_text(self, limit: int = 20) -> str:
        def fmt(value: Optional[float]) -> str:
            if value is None:
                return "   n/a  "
            if math.isinf(value):
                return "    inf " if value > 0 else "   -inf "
            return f"{value:8.4f}"

        lines = [
            f"run diff: {self.label_a} -> {self.label_b}"
            + ("" if self.same_inputs else "  (DIFFERENT INPUTS)"),
            f"  WNS {fmt(self.worst_slack_a)} -> {fmt(self.worst_slack_b)}"
            f"  (delta {fmt(self.wns_delta)})",
            f"  TNS {fmt(self.tns_a)} -> {fmt(self.tns_b)}"
            f"  (delta {fmt(self.tns_b - self.tns_a)})",
            f"  iterations {self.iterations_a} -> {self.iterations_b}"
            + (
                f"  (REGRESSION +{self.iteration_regression})"
                if self.iteration_regression
                else ""
            ),
            f"  analysis {self.analysis_s_a:.4f}s -> "
            f"{self.analysis_s_b:.4f}s",
        ]
        interesting = [
            e for e in self.endpoints if e.status != "unchanged"
        ]
        if not interesting:
            lines.append("  endpoints: no slack changes")
        else:
            lines.append(
                f"  endpoints with changes ({len(interesting)}):"
            )
            order = {
                "new-violation": 0,
                "regressed": 1,
                "removed": 2,
                "added": 3,
                "fixed": 4,
                "improved": 5,
            }
            interesting.sort(
                key=lambda e: (order.get(e.status, 9), e.delta or 0.0)
            )
            for e in interesting[:limit]:
                lines.append(
                    f"    {e.status:<14} {e.endpoint:<20} "
                    f"{fmt(e.slack_a)} -> {fmt(e.slack_b)}"
                )
            if len(interesting) > limit:
                lines.append(
                    f"    ... and {len(interesting) - limit} more"
                )
        verdict = (
            "REGRESSION detected"
            if self.has_regression
            else "no regression"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def diff_manifests(
    a: Union[str, Path, Dict], b: Union[str, Path, Dict]
) -> RunDiff:
    """Compare two run manifests (dicts or file paths)."""
    manifest_a = load_manifest(a)
    manifest_b = load_manifest(b)
    timing_a = manifest_a.get("timing", {})
    timing_b = manifest_b.get("timing", {})
    slacks_a: Dict[str, object] = timing_a.get("endpoint_slacks", {})
    slacks_b: Dict[str, object] = timing_b.get("endpoint_slacks", {})
    names = sorted(set(slacks_a) | set(slacks_b))
    endpoints: List[EndpointDelta] = []
    for name in names:
        endpoints.append(
            EndpointDelta(
                endpoint=name,
                slack_a=_parse(slacks_a[name]) if name in slacks_a else None,
                slack_b=_parse(slacks_b[name]) if name in slacks_b else None,
            )
        )
    return RunDiff(
        label_a=str(manifest_a.get("label", "run_a")),
        label_b=str(manifest_b.get("label", "run_b")),
        same_inputs=(
            manifest_a.get("input_digest") == manifest_b.get("input_digest")
        ),
        worst_slack_a=_parse(timing_a.get("worst_slack")),
        worst_slack_b=_parse(timing_b.get("worst_slack")),
        tns_a=_parse(timing_a.get("total_negative_slack", 0.0)),
        tns_b=_parse(timing_b.get("total_negative_slack", 0.0)),
        iterations_a=int(manifest_a.get("iterations", {}).get("total", 0)),
        iterations_b=int(manifest_b.get("iterations", {}).get("total", 0)),
        analysis_s_a=float(manifest_a.get("cost", {}).get("analysis_s", 0.0)),
        analysis_s_b=float(manifest_b.get("cost", {}).get("analysis_s", 0.0)),
        endpoints=endpoints,
    )
