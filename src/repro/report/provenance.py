"""Slack-transfer provenance: the audit trail of Algorithm 1.

Section 6's slack transfer iteratively shifts transparent-latch windows;
the *result* (final offsets, final slacks) does not say **why** a window
ended up where it did.  The audit trail answers that: every offset move
performed by a :func:`repro.core.transfer.sweep` is recorded as one
:class:`TransferEvent` naming the latch instance, the donor and
recipient paths, the amount moved, and the Algorithm 1 iteration/cycle
that performed it.

Donor/recipient semantics follow the paper's description of slack
transfer as "the donation of spare time ... by one combinational logic
path to an adjacent one":

* **forward** transfer (and forward snatching) moves the window earlier:
  the paths *entering* the element donate to the paths *leaving* it --
  donor is the element's data input terminal, recipient its data output;
* **backward** transfer (and backward snatching) moves the window later:
  the output-side paths donate to the input-side ones.

Enable pattern mirrors :mod:`repro.obs.recorder`: a process-wide trail
that is ``None`` by default, so instrumented code paths degrade to a
single global read when auditing is disabled (strictly no-op).  Memory
is bounded by a ring buffer (:class:`collections.deque` with ``maxlen``):
a long resynthesis loop keeps only the newest ``capacity`` events while
aggregate totals keep counting.

Typical usage::

    from repro import report

    with report.auditing() as trail:
        run_algorithm1(model)
    for event in trail.events:
        print(event.describe())
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "TransferEvent",
    "AuditTrail",
    "active_trail",
    "set_trail",
    "auditing",
    "trail_to_dict",
    "write_audit_json",
]

#: Schema identifier of the serialised audit trail.
AUDIT_SCHEMA = "repro.audit/1"

#: Operation name -> transfer direction ("forward" moves the window
#: earlier, "backward" later).
_DIRECTIONS = {
    "complete_forward": "forward",
    "partial_forward": "forward",
    "snatch_forward": "forward",
    "complete_backward": "backward",
    "partial_backward": "backward",
    "snatch_backward": "backward",
}


@dataclass(frozen=True)
class TransferEvent:
    """One recorded offset move of a transparent latch window.

    ``donor``/``recipient`` are the terminal names of the combinational
    paths the slack moved between (see the module docstring for the
    direction convention).  ``window_before``/``window_after`` are the
    free offset ``w = O_zd`` around the move; ``driving_slack`` is the
    node slack that sized the move (input-side for forward operations,
    output-side for backward ones).
    """

    sequence: int
    phase: str  # Algorithm 1 phase, e.g. "iteration1.forward"
    cycle: int  # complete-transfer cycle within the phase (1-based)
    operation: str  # transfer operator name, e.g. "complete_forward"
    instance: str  # generic-instance name, e.g. "s0_l@0"
    cell: str  # the synchroniser cell, e.g. "s0_l"
    donor: str  # terminal name of the donating path's endpoint
    recipient: str  # terminal name of the receiving path's endpoint
    amount: float  # time moved (always > 0)
    window_before: float
    window_after: float
    driving_slack: float

    @property
    def direction(self) -> str:
        return _DIRECTIONS.get(self.operation, "unknown")

    def describe(self) -> str:
        return (
            f"#{self.sequence:<5} {self.phase:<28} cycle {self.cycle:<3} "
            f"{self.instance:<16} {self.direction:<8} "
            f"{self.donor} -> {self.recipient}  "
            f"amount={self.amount:.4f} w: {self.window_before:.4f} -> "
            f"{self.window_after:.4f}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "sequence": self.sequence,
            "phase": self.phase,
            "cycle": self.cycle,
            "operation": self.operation,
            "direction": self.direction,
            "instance": self.instance,
            "cell": self.cell,
            "donor": self.donor,
            "recipient": self.recipient,
            "amount": self.amount,
            "window_before": self.window_before,
            "window_after": self.window_after,
            "driving_slack": _json_float(self.driving_slack),
        }


def _json_float(value: float) -> object:
    """Infinities are not valid JSON; encode them as strings."""
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return value


class AuditTrail:
    """Bounded collection point for :class:`TransferEvent` records.

    ``capacity`` bounds the ring buffer (oldest events are dropped
    first); the aggregate totals (``total_events``, ``total_moved``,
    per-direction sums) keep counting past the cap so summary questions
    stay answerable even on very long runs.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        self.capacity = capacity
        self._events: Deque[TransferEvent] = deque(maxlen=capacity)
        self.total_events = 0
        self.dropped_events = 0
        self.total_moved = 0.0
        self.moved_by_direction: Dict[str, float] = {
            "forward": 0.0,
            "backward": 0.0,
        }
        self._sequence = 0

    # ------------------------------------------------------------------
    # recording (called from repro.core.transfer.sweep)
    # ------------------------------------------------------------------
    def record(
        self,
        phase: str,
        cycle: int,
        operation: str,
        instance: str,
        cell: str,
        donor: str,
        recipient: str,
        amount: float,
        window_before: float,
        window_after: float,
        driving_slack: float,
    ) -> None:
        event = TransferEvent(
            sequence=self._sequence,
            phase=phase,
            cycle=cycle,
            operation=operation,
            instance=instance,
            cell=cell,
            donor=donor,
            recipient=recipient,
            amount=amount,
            window_before=window_before,
            window_after=window_after,
            driving_slack=driving_slack,
        )
        self._sequence += 1
        self.total_events += 1
        if len(self._events) == self.capacity:
            self.dropped_events += 1
        self.total_moved += amount
        direction = event.direction
        self.moved_by_direction[direction] = (
            self.moved_by_direction.get(direction, 0.0) + amount
        )
        self._events.append(event)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[TransferEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def for_instance(self, name: str) -> List[TransferEvent]:
        """All retained events of one generic instance (or its cell)."""
        return [
            e for e in self._events if e.instance == name or e.cell == name
        ]

    def net_movement(self) -> Dict[str, float]:
        """Net signed window movement per instance (+later, -earlier)."""
        net: Dict[str, float] = {}
        for event in self._events:
            sign = 1.0 if event.direction == "backward" else -1.0
            net[event.instance] = net.get(event.instance, 0.0) + (
                sign * event.amount
            )
        return net

    def describe(self, limit: int = 50) -> str:
        lines = [
            f"audit trail: {self.total_events} event(s), "
            f"{self.total_moved:.4f} total moved "
            f"(forward {self.moved_by_direction.get('forward', 0.0):.4f}, "
            f"backward {self.moved_by_direction.get('backward', 0.0):.4f})"
        ]
        if self.dropped_events:
            lines.append(f"  ({self.dropped_events} oldest event(s) dropped)")
        for event in list(self._events)[:limit]:
            lines.append("  " + event.describe())
        if len(self._events) > limit:
            lines.append(f"  ... and {len(self._events) - limit} more")
        return "\n".join(lines)


#: The process-wide trail; ``None`` means "auditing disabled" (default).
_trail: Optional[AuditTrail] = None


def active_trail() -> Optional[AuditTrail]:
    """The process-wide audit trail, or ``None`` when disabled.

    Hot loops fetch this once per sweep and guard their instrumentation
    on ``trail is not None`` -- the same pattern as ``obs.active()``.
    """
    return _trail


def set_trail(trail: Optional[AuditTrail]) -> Optional[AuditTrail]:
    """Install (or, with ``None``, remove) the process-wide audit trail.

    Returns the previously installed trail.
    """
    global _trail
    previous = _trail
    _trail = trail
    return previous


@contextmanager
def auditing(
    trail: Optional[AuditTrail] = None, capacity: int = 100_000
) -> Iterator[AuditTrail]:
    """Enable slack-transfer auditing for the duration of the block."""
    active = trail if trail is not None else AuditTrail(capacity=capacity)
    previous = set_trail(active)
    try:
        yield active
    finally:
        set_trail(previous)


def trail_to_dict(trail: AuditTrail) -> Dict[str, object]:
    """Serialise the trail (deterministic for deterministic runs)."""
    return {
        "schema": AUDIT_SCHEMA,
        "capacity": trail.capacity,
        "total_events": trail.total_events,
        "dropped_events": trail.dropped_events,
        "total_moved": trail.total_moved,
        "moved_by_direction": dict(sorted(trail.moved_by_direction.items())),
        "events": [event.to_dict() for event in trail.events],
    }


def write_audit_json(trail: AuditTrail, path: Union[str, Path]) -> Path:
    """Write :func:`trail_to_dict` as JSON to ``path``; returns the path.

    The encoding is fully deterministic (sorted keys, fixed separators),
    so two identical runs produce byte-identical files -- the regression
    property ``tests/report/test_provenance.py`` locks in.
    """
    path = Path(path)
    path.write_text(
        json.dumps(
            trail_to_dict(trail),
            indent=2,
            sort_keys=True,
            separators=(",", ": "),
        )
    )
    return path
