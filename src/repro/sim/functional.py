"""Zero-delay functional evaluation of combinational logic.

Evaluates nets in topological order using the cell specs' boolean
functions.  Cells without a function (hierarchical modules, cells from
function-less libraries) cannot be evaluated and raise.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.netlist.hierarchy import ModuleSpec
from repro.netlist.network import Network


class FunctionError(ValueError):
    """A cell in the evaluation cone has no boolean function."""


def evaluate_combinational(
    network: Network, input_values: Mapping[str, bool]
) -> Dict[str, bool]:
    """Evaluate every reachable net of a combinational network.

    ``input_values`` assigns the externally driven nets.  Returns a dict
    with those plus every net computable from them.
    """
    values: Dict[str, bool] = {
        net: bool(value) for net, value in input_values.items()
    }
    for cell in network.comb_topological_cells():
        if isinstance(cell.spec, ModuleSpec):
            raise FunctionError(
                f"cell {cell.name!r} is a module; flatten before evaluating"
            )
        function = getattr(cell.spec, "function", None)
        if function is None:
            raise FunctionError(
                f"cell {cell.name!r} ({cell.spec.name}) has no boolean "
                "function"
            )
        pins: Dict[str, bool] = {}
        ready = True
        for terminal in cell.input_terminals:
            net = terminal.net
            if net is None or net.name not in values:
                ready = False
                break
            pins[terminal.pin] = values[net.name]
        if not ready:
            continue  # driven by nets outside the given cone
        result = bool(function(pins))
        for terminal in cell.output_terminals:
            if terminal.net is not None:
                values[terminal.net.name] = result
    return values


def evaluate_module(
    spec: ModuleSpec, port_values: Mapping[str, bool]
) -> Dict[str, bool]:
    """Evaluate a synthesised module's outputs for given input ports."""
    definition = spec.definition
    missing = set(definition.input_ports) - set(port_values)
    if missing:
        raise ValueError(f"missing values for input ports {sorted(missing)}")
    net_values = {
        definition.input_ports[port]: bool(value)
        for port, value in port_values.items()
        if port in definition.input_ports
    }
    evaluated = evaluate_combinational(definition.inner, net_values)
    return {
        port: evaluated[net]
        for port, net in definition.output_ports.items()
        if net in evaluated
    }
