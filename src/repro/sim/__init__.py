"""Logic simulation substrate.

Two simulators over the same netlists the timing analyser reads:

* :mod:`repro.sim.functional` -- zero-delay functional evaluation of
  combinational networks (used to verify synthesised logic against its
  source expressions),
* :mod:`repro.sim.event` -- an event-driven timing simulator with the
  estimated arc delays, transparent-latch semantics and real clock
  waveforms.  Its role here is *dynamic validation* of the static
  analysis: on designs the analyser declares "behaves as intended", no
  simulated input sequence may produce a setup violation or a capture
  later than the computed ready times.
"""

from repro.sim.event import (
    DynamicCheckResult,
    EventSimulator,
    SetupViolation,
    SimulationTrace,
    dynamic_intended_check,
)
from repro.sim.functional import evaluate_combinational, evaluate_module

__all__ = [
    "DynamicCheckResult",
    "EventSimulator",
    "SetupViolation",
    "SimulationTrace",
    "dynamic_intended_check",
    "evaluate_combinational",
    "evaluate_module",
]
