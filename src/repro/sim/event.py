"""Event-driven timing simulation.

Simulates a network with the same component delays the static analysis
uses: combinational cells re-evaluate when inputs change and schedule
output transitions after the triggering arc's rise/fall delay, with
*inertial* semantics (a newer evaluation cancels a pending older one, so
pulses shorter than the gate delay are suppressed and stale evaluations
never overwrite newer values); clock generators produce their waveforms;
transparent latches pass data while their *simulated* control net is
high and hold on its falling edge; edge-triggered latches capture on the
falling (trailing) control edge.  All nets power up at logic 0.

The simulator's purpose is dynamic validation: on a design that
Algorithm 1 declares "behaves as intended" *and* that passes the
supplementary (minimum-delay) check, no simulated input sequence may
change a synchroniser's data input inside its setup window before a
capturing control edge (see ``setup_violations``).
"""

from __future__ import annotations

import heapq
import itertools
import random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.clocks.schedule import ClockSchedule
from repro.delay.estimator import DelayMap
from repro.netlist.cell import Cell
from repro.netlist.kinds import SyncStyle
from repro.netlist.network import Network

#: stimulus(pad name, cycle index) -> value driven that cycle.
Stimulus = Callable[[str, int], bool]


@dataclass(frozen=True)
class SetupViolation:
    """A data transition inside a synchroniser's setup window."""

    cell_name: str
    capture_time: float
    data_transition_time: float
    margin: float


@dataclass
class SimulationTrace:
    """Recorded transitions per net (time-sorted)."""

    transitions: Dict[str, List[Tuple[float, bool]]] = field(
        default_factory=dict
    )
    #: Power-on settled values (after the t=0 combinational settle).
    initial: Dict[str, bool] = field(default_factory=dict)
    events_processed: int = 0

    def times(self, net_name: str) -> List[float]:
        return [t for t, __ in self.transitions.get(net_name, [])]

    def value_at(self, net_name: str, time: float) -> bool:
        """Net value at ``time`` (before any transition: the power-on
        settled value)."""
        entries = self.transitions.get(net_name, [])
        index = bisect_right([t for t, __ in entries], time) - 1
        if index < 0:
            return self.initial.get(net_name, False)
        return entries[index][1]

    def transitions_in(
        self, net_name: str, start: float, end: float
    ) -> List[float]:
        """Transition times in the half-open window ``[start, end)``."""
        times = self.times(net_name)
        return times[bisect_left(times, start) : bisect_left(times, end)]

    def settle_time(self, net_name: str, start: float, end: float
                    ) -> Optional[float]:
        """Last transition in ``[start, end)`` (None if quiet)."""
        window = self.transitions_in(net_name, start, end)
        return window[-1] if window else None


class EventSimulator:
    """Transport-delay event simulation of a validated network."""

    def __init__(
        self,
        network: Network,
        schedule: ClockSchedule,
        delays: DelayMap,
        stimulus: Optional[Stimulus] = None,
        seed: int = 0,
        max_events: int = 2_000_000,
    ) -> None:
        self.network = network
        self.schedule = schedule
        self.delays = delays
        rng = random.Random(seed)
        self._stimulus: Stimulus = stimulus or (
            lambda name, cycle: rng.random() < 0.5
        )
        self._max_events = max_events
        # net -> sink terminals (fanout notification lists).
        self._sinks: Dict[str, List] = {
            net.name: list(net.sinks) for net in network.nets
        }

    # ------------------------------------------------------------------
    def run(self, cycles: int = 4) -> SimulationTrace:
        """Simulate ``cycles`` overall clock periods from power-on."""
        period = float(self.schedule.overall_period)
        horizon = cycles * period
        trace = SimulationTrace()
        values: Dict[str, bool] = {net.name: False for net in self.network.nets}
        # Power-on settling: registers wake at 0, but combinational
        # outputs must be consistent with their (all-zero) inputs before
        # the first event fires.
        for cell in self.network.comb_topological_cells():
            function = getattr(cell.spec, "function", None)
            if function is None:
                continue  # will be rejected on first reaction instead
            pins = {
                t.pin: values[t.net.name]
                for t in cell.input_terminals
                if t.net is not None
            }
            for out in cell.output_terminals:
                if out.net is not None:
                    values[out.net.name] = bool(function(pins))
        trace.initial = dict(values)
        queue: List[Tuple[float, int, str, bool, bool]] = []
        serial = itertools.count()
        # Inertial-delay bookkeeping: for driver-scheduled events, only
        # the most recent scheduling per net is delivered; a newer output
        # evaluation cancels pending older ones (a pulse shorter than the
        # gate delay is suppressed, and stale evaluations can never
        # overwrite newer ones).
        pending: Dict[str, int] = {}

        def schedule_event(time: float, net: str, value: bool) -> None:
            """Driver (gate/synchroniser) scheduling: inertial."""
            if time <= horizon:
                tag = next(serial)
                pending[net] = tag
                heapq.heappush(queue, (time, tag, net, value, True))

        def schedule_source(time: float, net: str, value: bool) -> None:
            """Clock/stimulus scheduling: pre-planned, never cancelled."""
            if time <= horizon:
                heapq.heappush(queue, (time, next(serial), net, value, False))

        # Clock waveform events.
        for source in self.network.clock_sources:
            net = source.terminal("Z").net
            if net is None:
                continue
            clock = self.schedule.waveform(
                source.attrs.get("clock", source.name)
            )
            clock_period = float(clock.period)
            repeats = int(round(horizon / clock_period)) + 1
            for k in range(repeats):
                base = k * clock_period
                schedule_source(base + float(clock.leading), net.name, True)
                schedule_source(
                    base + float(clock.trailing), net.name, False
                )

        # Primary input stimulus at each pad's reference edge.
        for pad in self.network.primary_inputs:
            net = pad.terminal("Z").net
            if net is None:
                continue
            launch = self._pad_time(pad)
            for cycle in range(cycles):
                schedule_source(
                    cycle * period + launch,
                    net.name,
                    self._stimulus(pad.name, cycle),
                )

        # Main loop.
        while queue:
            time, tag, net_name, value, cancellable = heapq.heappop(queue)
            trace.events_processed += 1
            if trace.events_processed > self._max_events:
                raise RuntimeError(
                    f"simulation exceeded {self._max_events} events "
                    "(oscillating design?)"
                )
            if cancellable and pending.get(net_name) != tag:
                continue  # superseded by a newer evaluation
            if values[net_name] == value:
                continue
            values[net_name] = value
            trace.transitions.setdefault(net_name, []).append((time, value))
            for sink in self._sinks.get(net_name, ()):
                self._react(
                    sink, net_name, time, values, schedule_event
                )
        return trace

    # ------------------------------------------------------------------
    def _pad_time(self, pad: Cell) -> float:
        """A pad's launch time within the overall period."""
        pulses = self.schedule.pulses(pad.attrs["clock"])
        pulse = pulses[int(pad.attrs.get("pulse_index", 0))]
        edge = (
            pulse.leading
            if pad.attrs.get("edge", "trailing") == "leading"
            else pulse.trailing
        )
        return float(edge.time) + float(pad.attrs.get("offset", 0.0))

    def _react(self, sink, net_name, time, values, schedule_event) -> None:
        cell = sink.cell
        if cell.is_combinational:
            self._react_gate(cell, sink.pin, time, values, schedule_event)
        elif cell.is_synchroniser:
            self._react_sync(cell, sink.pin, time, values, schedule_event)
        # Primary outputs only observe.

    def _react_gate(self, cell, changed_pin, time, values, schedule_event):
        function = getattr(cell.spec, "function", None)
        if function is None:
            raise ValueError(
                f"cell {cell.name!r} ({cell.spec.name}) has no boolean "
                "function; the event simulator needs one"
            )
        pins = {
            t.pin: values[t.net.name]
            for t in cell.input_terminals
            if t.net is not None
        }
        new_value = bool(function(pins))
        for out in cell.output_terminals:
            if out.net is None:
                continue
            try:
                arc = self.delays.arc_delay(cell, changed_pin, out.pin)
            except KeyError:
                continue  # no arc from this pin: no effect
            delay = arc.rise if new_value else arc.fall
            schedule_event(time + delay, out.net.name, new_value)

    def _react_sync(self, cell, changed_pin, time, values, schedule_event):
        timing = self.delays.sync_timing(cell)
        style = cell.sync_style
        control = cell.control_terminal
        data = cell.data_input
        output = cell.data_output
        if control is None or control.net is None or data.net is None:
            return
        if output.net is None:
            return
        control_high = values[control.net.name]
        data_value = values[data.net.name]
        is_control = changed_pin == control.pin

        if style is SyncStyle.EDGE_TRIGGERED:
            if is_control and not control_high:  # trailing (falling) edge
                schedule_event(
                    time + timing.c_to_q, output.net.name, data_value
                )
            return
        # Transparent latch / tristate driver.
        if is_control:
            if control_high:  # window opens: output follows D
                schedule_event(
                    time + timing.c_to_q, output.net.name, data_value
                )
            # Window closes: hold (no event).
            return
        if control_high:  # D changed while transparent
            schedule_event(
                time + timing.d_to_q, output.net.name, data_value
            )

    # ------------------------------------------------------------------
    # dynamic checks
    # ------------------------------------------------------------------
    def captured_values(
        self, trace: SimulationTrace, cell: Cell
    ) -> List[Tuple[float, bool]]:
        """The (capture time, captured data value) sequence of one
        synchroniser: its D net sampled just before each falling
        transition of its simulated control net."""
        control = cell.control_terminal
        data = cell.data_input
        if control is None or control.net is None or data.net is None:
            return []
        captures = []
        for edge_time, value in trace.transitions.get(control.net.name, []):
            if value:
                continue
            captures.append(
                (edge_time, trace.value_at(data.net.name, edge_time - 1e-9))
            )
        return captures

    def setup_violations(
        self,
        trace: SimulationTrace,
        warmup: float = 1.0,
    ) -> List[SetupViolation]:
        """Data transitions inside setup windows of capturing edges.

        A capturing edge is a falling transition of a synchroniser's
        *simulated* control net; the setup window is
        ``[edge - setup, edge)``.  Edges before ``warmup`` overall
        periods are skipped (power-on transients).
        """
        horizon_start = warmup * float(self.schedule.overall_period)
        violations: List[SetupViolation] = []
        for cell in self.network.synchronisers:
            control = cell.control_terminal
            data = cell.data_input
            if (
                control is None
                or control.net is None
                or data.net is None
            ):
                continue
            setup = self.delays.sync_timing(cell).setup
            for edge_time, value in trace.transitions.get(
                control.net.name, []
            ):
                if value or edge_time < horizon_start:
                    continue  # only falling (capturing) edges
                for transition in trace.transitions_in(
                    data.net.name, edge_time - setup, edge_time
                ):
                    violations.append(
                        SetupViolation(
                            cell_name=cell.name,
                            capture_time=edge_time,
                            data_transition_time=transition,
                            margin=edge_time - transition,
                        )
                    )
        return violations


@dataclass
class DynamicCheckResult:
    """Outcome of :func:`dynamic_intended_check`."""

    #: (cell, capture index, real value, ideal value) for every capture
    #: where the real-delay system stored a different value than the
    #: ideal system -- the paper's literal definition of *not* behaving
    #: as intended.
    mismatches: List[Tuple[str, int, bool, bool]] = field(
        default_factory=list
    )
    setup_violations: List[SetupViolation] = field(default_factory=list)
    captures_compared: int = 0

    @property
    def intended(self) -> bool:
        return not self.mismatches and not self.setup_violations


def dynamic_intended_check(
    network: Network,
    schedule: ClockSchedule,
    delays: DelayMap,
    cycles: int = 8,
    warmup_cycles: int = 2,
    stimulus: Optional[Stimulus] = None,
    seed: int = 0,
    ideal_scale: float = 1e-9,
) -> DynamicCheckResult:
    """Simulate the real and the *ideal* system (delays scaled towards
    zero, Section 3's reference) under identical stimulus and compare
    every synchroniser's captured values.

    Static analysis soundness means: Algorithm 1 "intended" plus a clean
    supplementary (min-delay) check must imply this dynamic check passes
    for every stimulus.
    """
    rng = random.Random(seed)
    drawn: Dict[Tuple[str, int], bool] = {}

    def fixed_stimulus(name: str, cycle: int) -> bool:
        key = (name, cycle)
        if key not in drawn:
            drawn[key] = (
                stimulus(name, cycle)
                if stimulus is not None
                else rng.random() < 0.5
            )
        return drawn[key]

    real_sim = EventSimulator(network, schedule, delays, fixed_stimulus)
    real_trace = real_sim.run(cycles)
    ideal_sim = EventSimulator(
        network, schedule, delays.globally_scaled(ideal_scale), fixed_stimulus
    )
    ideal_trace = ideal_sim.run(cycles)

    result = DynamicCheckResult(
        setup_violations=real_sim.setup_violations(
            real_trace, warmup=warmup_cycles
        )
    )
    warmup_time = warmup_cycles * float(schedule.overall_period)
    for cell in network.synchronisers:
        real = real_sim.captured_values(real_trace, cell)
        ideal = ideal_sim.captured_values(ideal_trace, cell)
        for index, ((rt, rv), (it, iv)) in enumerate(zip(real, ideal)):
            if rt < warmup_time:
                continue
            result.captures_compared += 1
            if rv != iv:
                result.mismatches.append((cell.name, index, rv, iv))
    return result
