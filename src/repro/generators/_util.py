"""Shared helpers for the benchmark generators."""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.netlist.builder import NetworkBuilder
from repro.netlist.network import Network


def standard_cell_count(network: Network) -> int:
    """Number of *standard cells*: combinational gates plus synchronisers
    (pads and clock sources are not standard cells).  This is the count
    Table 1 reports (e.g. DES = 3681)."""
    return len(network.combinational_cells) + len(network.synchronisers)


def top_up_standard_cells(
    builder: NetworkBuilder,
    rng: random.Random,
    target: int,
    tap_nets: Sequence[str],
    prefix: str = "fill",
) -> int:
    """Add real combinational gates until the standard-cell count hits
    ``target``.

    The filler is a random NAND/INV cone tapping ``tap_nets``; its outputs
    are left unloaded (they join the clusters and are timed, but impose no
    constraints), so the design's real paths keep their meaning while the
    cell count matches the paper's.  Returns the number of cells added.
    """
    from repro.generators.random_logic import random_logic_block

    deficit = target - standard_cell_count(builder.network)
    if deficit < 0:
        raise ValueError(
            f"design already exceeds target ({-deficit} cells over)"
        )
    if deficit == 0:
        return 0
    random_logic_block(
        builder,
        rng,
        prefix=prefix,
        input_nets=list(tap_nets),
        n_gates=deficit,
        n_outputs=1,
        gate_mix=(("NAND2", 3.0), ("INV", 1.0), ("NOR2", 1.0)),
    )
    return deficit


def bus(prefix: str, width: int) -> List[str]:
    """Net names of a ``width``-bit bus."""
    return [f"{prefix}{i}" for i in range(width)]
