"""Seeded random combinational blocks and whole random designs."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.cells.library import CellLibrary, standard_library
from repro.clocks.schedule import ClockSchedule
from repro.netlist.builder import NetworkBuilder
from repro.netlist.network import Network

#: Gate mix used by the random generators: (spec name, weight).  Chosen to
#: look like area-optimised static CMOS synthesis output: NAND-heavy, a
#: sprinkle of complex gates and inverters.
DEFAULT_GATE_MIX: Tuple[Tuple[str, float], ...] = (
    ("INV", 2.0),
    ("NAND2", 4.0),
    ("NAND3", 2.0),
    ("NOR2", 2.5),
    ("NOR3", 1.0),
    ("AOI21", 1.5),
    ("OAI21", 1.5),
    ("XOR2", 0.7),
    ("MUX2", 0.6),
    ("BUF", 0.3),
)


def random_logic_block(
    builder: NetworkBuilder,
    rng: random.Random,
    prefix: str,
    input_nets: Sequence[str],
    n_gates: int,
    n_outputs: int,
    library: Optional[CellLibrary] = None,
    gate_mix: Sequence[Tuple[str, float]] = DEFAULT_GATE_MIX,
    locality: float = 0.6,
    locality_window: int = 16,
) -> List[str]:
    """Add ``n_gates`` random gates to ``builder``; return output nets.

    ``locality`` biases gate inputs toward recently created nets, which
    stretches path depth the way synthesised logic cones do.  Outputs are
    the most recently created nets (deduplicated); every input net is
    guaranteed to be used at least once so no cluster input dangles.
    """
    if not input_nets:
        raise ValueError("a logic block needs at least one input net")
    if n_outputs < 1:
        raise ValueError("a logic block needs at least one output")
    library = library or standard_library()
    names = [name for name, __ in gate_mix]
    weights = [weight for __, weight in gate_mix]

    pool: List[str] = list(input_nets)
    unused: List[str] = list(input_nets)  # list keeps draws deterministic
    created: List[str] = []
    for index in range(max(n_gates, n_outputs)):
        spec_name = rng.choices(names, weights)[0]
        spec = library.spec(spec_name)
        out_net = f"{prefix}_n{index}"
        pins = {}
        for pin in spec.inputs:
            if unused:
                net = unused.pop()
            elif rng.random() < locality and created:
                net = created[
                    rng.randrange(
                        max(0, len(created) - locality_window), len(created)
                    )
                ]
            else:
                net = pool[rng.randrange(len(pool))]
            pins[pin] = net
        builder.gate(f"{prefix}_g{index}", spec_name, Z=out_net, **pins)
        pool.append(out_net)
        created.append(out_net)

    outputs: List[str] = []
    for net in reversed(created):
        if net not in outputs:
            outputs.append(net)
        if len(outputs) == n_outputs:
            break
    return list(reversed(outputs))


def random_design(
    seed: int,
    n_banks: int = 4,
    gates_per_bank: int = 50,
    bits: int = 8,
    style: str = "latch",
    period: float = 100.0,
    name: Optional[str] = None,
    library: Optional[CellLibrary] = None,
) -> Tuple[Network, ClockSchedule]:
    """A random multi-stage design.

    ``style`` is ``"latch"`` (alternating two-phase transparent latches)
    or ``"ff"`` (single-clock edge-triggered).  Each of the ``n_banks``
    pipeline stages is a ``gates_per_bank``-gate random block between
    ``bits``-wide synchroniser banks.
    """
    rng = random.Random(seed)
    library = library or standard_library()
    builder = NetworkBuilder(
        library, name=name or f"random_{style}_{seed}_{n_banks}x{gates_per_bank}"
    )
    if style == "latch":
        schedule = ClockSchedule.two_phase(period)
        clock_nets = ["phi1", "phi2"]
        sync_spec, control_pin = "DLATCH", "G"
    elif style == "ff":
        schedule = ClockSchedule.single("clk", period)
        clock_nets = ["clk"]
        sync_spec, control_pin = "DFF", "CK"
    else:
        raise ValueError(f"unknown style {style!r}")
    for clock in clock_nets:
        builder.clock(clock)

    current = [f"pi{i}" for i in range(bits)]
    for i, net in enumerate(current):
        builder.input(f"in{i}", net, clock=clock_nets[-1], edge="trailing")

    for bank in range(n_banks):
        block_outputs = random_logic_block(
            builder,
            rng,
            prefix=f"b{bank}",
            input_nets=current,
            n_gates=gates_per_bank,
            n_outputs=bits,
            library=library,
        )
        clock = clock_nets[bank % len(clock_nets)]
        next_nets = []
        for i, net in enumerate(block_outputs):
            q_net = f"b{bank}_q{i}"
            builder.latch(
                f"b{bank}_l{i}",
                sync_spec,
                D=net,
                Q=q_net,
                **{control_pin: clock},
            )
            next_nets.append(q_net)
        current = next_nets

    for i, net in enumerate(current):
        builder.output(f"out{i}", net, clock=clock_nets[-1], edge="trailing")
    return builder.build(), schedule
