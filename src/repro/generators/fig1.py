"""The paper's Figure 1 configuration.

"Logic with latches controlled by four different clock phases": a logic
gate whose inputs come from transparent latches on phases phi1 and phi3
and whose output feeds latches on phases phi2 and phi4.  The gate's
output "is required to settle to two different valid states during each
clock cycle" -- the gate is *time multiplexed within the clock period* --
so its cluster needs exactly **two** analysis passes (two settling times
per node), which Section 7's minimum-pass algorithm discovers.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cells.library import CellLibrary, standard_library
from repro.clocks.schedule import ClockSchedule
from repro.clocks.waveform import ClockWaveform
from repro.netlist.builder import NetworkBuilder
from repro.netlist.network import Network


def fig1_schedule(period: float = 100.0) -> ClockSchedule:
    """Four staggered, non-overlapping clock phases (one per quarter)."""
    quarter = period / 4.0
    gap = quarter / 10.0
    return ClockSchedule(
        ClockWaveform(
            f"phi{k + 1}",
            period,
            k * quarter + gap,
            (k + 1) * quarter - gap,
        )
        for k in range(4)
    )


def fig1_circuit(
    period: float = 100.0,
    library: Optional[CellLibrary] = None,
) -> Tuple[Network, ClockSchedule]:
    """The Figure 1 network.

    Latches L1 (phi1) and L3 (phi3) drive gate G; G's output is captured
    by latches L2 (phi2) and L4 (phi4).  Output latches re-converge
    through a second gate for a non-trivial downstream cluster.
    """
    library = library or standard_library()
    schedule = fig1_schedule(period)
    builder = NetworkBuilder(library, name="fig1")
    for k in range(4):
        builder.clock(f"phi{k + 1}")
    builder.input("a", "a_d", clock="phi4", edge="trailing")
    builder.input("b", "b_d", clock="phi2", edge="trailing")
    builder.latch("L1", "DLATCH", D="a_d", G="phi1", Q="l1_q")
    builder.latch("L3", "DLATCH", D="b_d", G="phi3", Q="l3_q")
    builder.gate("G", "NAND2", A="l1_q", B="l3_q", Z="g_out")
    builder.latch("L2", "DLATCH", D="g_out", G="phi2", Q="l2_q")
    builder.latch("L4", "DLATCH", D="g_out", G="phi4", Q="l4_q")
    builder.gate("H", "NOR2", A="l2_q", B="l4_q", Z="h_out")
    builder.latch("L5", "DLATCH", D="h_out", G="phi1", Q="l5_q")
    builder.output("y", "l5_q", clock="phi1", edge="trailing")
    return builder.build(), schedule
