"""Regular pipelines: the workhorse circuits of the unit benches.

``latch_pipeline`` builds the classic two-phase transparent-latch pipeline
whose cycle-borrowing behaviour motivates the paper; ``ff_pipeline`` is
the single-clock edge-triggered control.  Both use explicit inverter
chains so stage delays are predictable in closed form, which the tests
exploit.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.cells.library import CellLibrary, standard_library
from repro.clocks.schedule import ClockSchedule
from repro.netlist.builder import NetworkBuilder
from repro.netlist.network import Network


def _inverter_chain(
    builder: NetworkBuilder, prefix: str, in_net: str, length: int
) -> str:
    """A chain of ``length`` inverters; returns the final net."""
    current = in_net
    for index in range(length):
        out_net = f"{prefix}_c{index}"
        builder.gate(f"{prefix}_i{index}", "INV", A=current, Z=out_net)
        current = out_net
    return current


def latch_pipeline(
    stages: int = 4,
    chain_length: int = 3,
    stage_lengths: Optional[Sequence[int]] = None,
    period: float = 100.0,
    width: Optional[float] = None,
    library: Optional[CellLibrary] = None,
    name: str = "latch_pipeline",
) -> Tuple[Network, ClockSchedule]:
    """A two-phase transparent-latch pipeline.

    Stage ``k`` is an inverter chain of ``stage_lengths[k]`` (default
    ``chain_length``) inverters followed by a transparent latch on
    alternating phases (phi1 for even stages, phi2 for odd).  Uneven
    ``stage_lengths`` exercise cycle borrowing: a long stage can steal
    time through the downstream latch's transparency window.
    """
    if stages < 1:
        raise ValueError("need at least one stage")
    lengths = (
        list(stage_lengths)
        if stage_lengths is not None
        else [chain_length] * stages
    )
    if len(lengths) != stages:
        raise ValueError("stage_lengths must have one entry per stage")
    library = library or standard_library()
    builder = NetworkBuilder(library, name=name)
    schedule = ClockSchedule.two_phase(period, width=width)
    builder.clock("phi1")
    builder.clock("phi2")
    builder.input("din", "s0_in", clock="phi2", edge="leading")
    current = "s0_in"
    for stage, length in enumerate(lengths):
        chain_out = _inverter_chain(builder, f"s{stage}", current, length)
        phase = "phi1" if stage % 2 == 0 else "phi2"
        q_net = f"s{stage}_q"
        builder.latch(f"s{stage}_l", "DLATCH", D=chain_out, G=phase, Q=q_net)
        current = q_net
    final_phase = "phi1" if (stages - 1) % 2 == 0 else "phi2"
    builder.output("dout", current, clock=final_phase, edge="trailing")
    return builder.build(), schedule


def ff_pipeline(
    stages: int = 4,
    chain_length: int = 3,
    stage_lengths: Optional[Sequence[int]] = None,
    period: float = 100.0,
    library: Optional[CellLibrary] = None,
    name: str = "ff_pipeline",
) -> Tuple[Network, ClockSchedule]:
    """A single-clock edge-triggered pipeline (no cycle borrowing)."""
    if stages < 1:
        raise ValueError("need at least one stage")
    lengths = (
        list(stage_lengths)
        if stage_lengths is not None
        else [chain_length] * stages
    )
    if len(lengths) != stages:
        raise ValueError("stage_lengths must have one entry per stage")
    library = library or standard_library()
    builder = NetworkBuilder(library, name=name)
    schedule = ClockSchedule.single("clk", period)
    builder.clock("clk")
    builder.input("din", "s0_in", clock="clk", edge="trailing")
    current = "s0_in"
    for stage, length in enumerate(lengths):
        chain_out = _inverter_chain(builder, f"s{stage}", current, length)
        q_net = f"s{stage}_q"
        builder.latch(f"s{stage}_l", "DFF", D=chain_out, CK="clk", Q=q_net)
        current = q_net
    builder.output("dout", current, clock="clk", edge="trailing")
    return builder.build(), schedule


def loop_of_latches(
    chain_lengths: Sequence[int] = (3, 3),
    period: float = 100.0,
    width: Optional[float] = None,
    library: Optional[CellLibrary] = None,
    name: str = "latch_loop",
) -> Tuple[Network, ClockSchedule]:
    """A directed cycle through transparent latches.

    The paper points out that "too slow" may apply to a set of paths that
    form a directed cycle traversing two or more transparent latches; this
    generator builds exactly that: latches on alternating phases connected
    in a ring through inverter chains (an even total inversion count, as
    in a real iterative datapath loop).
    """
    n = len(chain_lengths)
    if n < 2:
        raise ValueError("a latch loop needs at least two latches")
    library = library or standard_library()
    builder = NetworkBuilder(library, name=name)
    schedule = ClockSchedule.two_phase(period, width=width)
    builder.clock("phi1")
    builder.clock("phi2")
    # Latches first, so the ring can be closed net-by-net.
    for index in range(n):
        phase = "phi1" if index % 2 == 0 else "phi2"
        builder.latch(
            f"r{index}_l",
            "DLATCH",
            D=f"r{index}_d",
            G=phase,
            Q=f"r{index}_q",
        )
    for index in range(n):
        target = (index + 1) % n
        chain_out = _inverter_chain(
            builder, f"r{index}", f"r{index}_q", chain_lengths[index]
        )
        # Join the chain output onto the next latch's D net via a buffer
        # so each net keeps a single driver.
        builder.gate(f"r{index}_join", "BUF", A=chain_out, Z=f"r{target}_d")
    builder.output("probe", "r0_q", clock="phi1", edge="trailing")
    return builder.build(), schedule
