"""Designs with buffered clock distribution.

Control paths with real delay give the synchronisers non-zero assertion
control arrivals (``O_ac``), and unequal buffer depths create skew
between elements -- the situation the generic model's control offsets
exist for.  (Badly asymmetric control paths can also break the
supplementary constraints; the paper notes its algorithms "do not detect
these problems", which is why :mod:`repro.core.mindelay` exists as an
extension.)
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.cells.library import CellLibrary, standard_library
from repro.clocks.schedule import ClockSchedule
from repro.netlist.builder import NetworkBuilder
from repro.netlist.network import Network


def skewed_clock_pipeline(
    buffer_depths: Sequence[int] = (0, 2, 4),
    chain_length: int = 3,
    period: float = 100.0,
    library: Optional[CellLibrary] = None,
    name: str = "skewed_clock",
) -> Tuple[Network, ClockSchedule]:
    """A single-clock FF pipeline where stage ``k``'s flip-flop receives
    the clock through ``buffer_depths[k]`` buffers.

    Deeper buffering delays both the stage's launch (later ``O_zc``) and
    -- in the real circuit -- its capture; the simplified model keeps the
    capture at the ideal edge (``O_cc = 0`` is a conservative lower
    bound), so extra buffer depth strictly *tightens* the stage feeding
    the skewed element and *relaxes* the stage it launches.
    """
    library = library or standard_library()
    builder = NetworkBuilder(library, name=name)
    schedule = ClockSchedule.single("clk", period)
    builder.clock("clk")

    # Dedicated buffer chains per stage.
    clock_nets = []
    for index, depth in enumerate(buffer_depths):
        current = "clk"
        for level in range(depth):
            nxt = f"ck{index}_b{level}"
            builder.gate(f"ckbuf{index}_{level}", "BUF", A=current, Z=nxt)
            current = nxt
        clock_nets.append(current)

    builder.input("din", "s0_in", clock="clk", edge="trailing")
    current = "s0_in"
    for index, clock_net in enumerate(clock_nets):
        for stage in range(chain_length):
            nxt = f"s{index}_c{stage}"
            builder.gate(f"s{index}_i{stage}", "INV", A=current, Z=nxt)
            current = nxt
        q_net = f"s{index}_q"
        builder.latch(
            f"ff{index}", "DFF", D=current, CK=clock_net, Q=q_net
        )
        current = q_net
    builder.output("dout", current, clock="clk", edge="trailing")
    return builder.build(), schedule
