"""Real benchmark circuits: ISCAS'89 s27.

s27 is the smallest ISCAS'89 sequential benchmark: 4 primary inputs, 1
primary output, 3 D flip-flops and 10 gates.  The netlist below follows
the published structure (Brglez, Bryan & Kozminski, ISCAS 1989), mapped
onto this repository's cell library:

    G5  = DFF(G10)        G6 = DFF(G11)        G7 = DFF(G13)
    G14 = NOT(G0)          G17 = NOT(G11)
    G8  = AND(G14, G6)     G15 = OR(G12, G8)    G16 = OR(G3, G8)
    G9  = NAND(G16, G15)   G10 = NOR(G14, G11)  G11 = NOR(G5, G9)
    G12 = NOR(G1, G7)      G13 = NOR(G2, G12)
    G17 is the primary output.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cells.library import CellLibrary, standard_library
from repro.clocks.schedule import ClockSchedule
from repro.netlist.builder import NetworkBuilder
from repro.netlist.network import Network


def generate_s27(
    period: float = 20.0,
    library: Optional[CellLibrary] = None,
) -> Tuple[Network, ClockSchedule]:
    """The ISCAS'89 s27 benchmark on a single clock."""
    library = library or standard_library()
    b = NetworkBuilder(library, name="s27")
    schedule = ClockSchedule.single("clk", period)
    b.clock("clk")

    for name in ("G0", "G1", "G2", "G3"):
        b.input(f"pi_{name}", name, clock="clk", edge="trailing")

    # State elements.
    b.latch("dff_G5", "DFF", D="G10", CK="clk", Q="G5")
    b.latch("dff_G6", "DFF", D="G11", CK="clk", Q="G6")
    b.latch("dff_G7", "DFF", D="G13", CK="clk", Q="G7")

    # Combinational core (BUF+INV pairs stand in for AND/OR where the
    # library spelling differs from the original's primitive names).
    b.gate("not_G14", "INV", A="G0", Z="G14")
    b.gate("not_G17", "INV", A="G11", Z="G17")
    b.gate("and_G8", "AND2", A="G14", B="G6", Z="G8")
    b.gate("or_G15", "OR2", A="G12", B="G8", Z="G15")
    b.gate("or_G16", "OR2", A="G3", B="G8", Z="G16")
    b.gate("nand_G9", "NAND2", A="G16", B="G15", Z="G9")
    b.gate("nor_G10", "NOR2", A="G14", B="G11", Z="G10")
    b.gate("nor_G11", "NOR2", A="G5", B="G9", Z="G11")
    b.gate("nor_G12", "NOR2", A="G1", B="G7", Z="G12")
    b.gate("nor_G13", "NOR2", A="G2", B="G12", Z="G13")

    b.output("po_G17", "G17", clock="clk", edge="trailing")
    return b.build(), schedule
