"""A 3681-standard-cell DES-style encryption datapath (Table 1's "DES").

The paper's headline example is "a complete data encryption chip, made up
from 3681 standard cells".  This generator builds a DES-shaped pipeline:

* 64-bit input register (edge-triggered) and a 56-bit key register,
* 16 unrolled Feistel rounds -- each with key mixing XORs, eight random
  S-box cones and the L-side XOR,
* two-phase transparent latch banks between round groups, so the design
  exercises the latch-aware analysis (the real chip was latch based),
* an output register,
* a little real filler logic to land exactly on 3681 standard cells.

The logic *functions* are random cones rather than the DES S-boxes -- the
analysis only sees topology and delays (see DESIGN.md substitutions).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.cells.library import CellLibrary, standard_library
from repro.clocks.schedule import ClockSchedule
from repro.generators._util import top_up_standard_cells
from repro.generators.random_logic import random_logic_block
from repro.netlist.builder import NetworkBuilder
from repro.netlist.network import Network

#: The paper's standard-cell count for the DES chip.
DES_TARGET_CELLS = 3681


def _round_function(
    builder: NetworkBuilder,
    rng: random.Random,
    round_index: int,
    left: List[str],
    right: List[str],
    key: List[str],
    sbox_gates: int,
) -> Tuple[List[str], List[str]]:
    """One Feistel round: returns (new_left, new_right)."""
    p = f"r{round_index}"
    half = len(right)
    # Key mixing: right xor key (one XOR2 per bit).
    mixed = []
    for i in range(half):
        net = f"{p}_kx{i}"
        builder.gate(
            f"{p}_kxor{i}", "XOR2", A=right[i], B=key[i % len(key)], Z=net
        )
        mixed.append(net)
    # Eight S-box cones over 6-bit groups producing 4 bits each.
    sbox_out: List[str] = []
    for s in range(8):
        group = [mixed[(6 * s + k) % half] for k in range(6)]
        outs = random_logic_block(
            builder,
            rng,
            prefix=f"{p}_s{s}",
            input_nets=group,
            n_gates=sbox_gates,
            n_outputs=4,
        )
        sbox_out.extend(outs)
    # P-permutation (free wiring) then L-side XOR.
    new_right = []
    for i in range(half):
        net = f"{p}_nx{i}"
        builder.gate(
            f"{p}_lxor{i}",
            "XOR2",
            A=left[i],
            B=sbox_out[(5 * i + 3) % len(sbox_out)],
            Z=net,
        )
        new_right.append(net)
    return right, new_right


def _latch_bank(
    builder: NetworkBuilder,
    name: str,
    nets: List[str],
    phase: str,
) -> List[str]:
    out = []
    for i, net in enumerate(nets):
        q = f"{name}_q{i}"
        builder.latch(f"{name}_{i}", "DLATCH", D=net, G=phase, Q=q)
        out.append(q)
    return out


def generate_des(
    seed: int = 3681,
    rounds: int = 16,
    sbox_gates: int = 14,
    latch_every: int = 4,
    period: float = 200.0,
    target_cells: Optional[int] = DES_TARGET_CELLS,
    library: Optional[CellLibrary] = None,
) -> Tuple[Network, ClockSchedule]:
    """The DES-style benchmark.

    ``latch_every`` inserts a two-phase transparent latch bank after every
    that many rounds (alternating phases), reflecting latch-based pipeline
    styling.  ``target_cells=None`` skips the exact-count filler.
    """
    rng = random.Random(seed)
    library = library or standard_library()
    builder = NetworkBuilder(library, name="DES")
    schedule = ClockSchedule.two_phase(period)
    builder.clock("phi1")
    builder.clock("phi2")

    # Input registers: 64-bit data (as L/R halves) + 56-bit key, loaded on
    # phi2's trailing edge via edge-triggered latches clocked by phi2.
    left: List[str] = []
    right: List[str] = []
    for i in range(32):
        builder.input(f"pl{i}", f"pad_l{i}", clock="phi2", edge="trailing")
        builder.latch(f"regl{i}", "DFF", D=f"pad_l{i}", CK="phi2", Q=f"des_l{i}")
        left.append(f"des_l{i}")
        builder.input(f"pr{i}", f"pad_r{i}", clock="phi2", edge="trailing")
        builder.latch(f"regr{i}", "DFF", D=f"pad_r{i}", CK="phi2", Q=f"des_r{i}")
        right.append(f"des_r{i}")
    key: List[str] = []
    for i in range(56):
        builder.input(f"pk{i}", f"pad_k{i}", clock="phi2", edge="trailing")
        builder.latch(f"regk{i}", "DFF", D=f"pad_k{i}", CK="phi2", Q=f"des_k{i}")
        key.append(f"des_k{i}")

    bank_index = 0
    for round_index in range(rounds):
        # Per-round key selection: rotate the key bus (free wiring).
        round_key = key[round_index % 56 :] + key[: round_index % 56]
        left, right = _round_function(
            builder, rng, round_index, left, right, round_key, sbox_gates
        )
        if latch_every and (round_index + 1) % latch_every == 0 and (
            round_index + 1
        ) < rounds:
            phase = "phi1" if bank_index % 2 == 0 else "phi2"
            left = _latch_bank(builder, f"bankl{bank_index}", left, phase)
            right = _latch_bank(builder, f"bankr{bank_index}", right, phase)
            bank_index += 1

    # Output register on phi2.
    for i, net in enumerate(left + right):
        builder.latch(f"rego{i}", "DFF", D=net, CK="phi2", Q=f"des_y{i}")
        builder.output(f"py{i}", f"des_y{i}", clock="phi2", edge="trailing")

    if target_cells is not None:
        top_up_standard_cells(builder, rng, target_cells, tap_nets=key)
    return builder.build(), schedule
