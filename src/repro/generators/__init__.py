"""Benchmark circuit generators.

The paper's Table 1 designs (a DES chip with 3681 standard cells, an
899-cell ALU portion, and a 12-bit FSM in flat and hierarchical form) are
proprietary Berkeley test cases; these generators build synthetic
equivalents with the same cell counts, latch styles and topology classes
(see DESIGN.md, substitution table).  All generators are deterministic
for a given seed.
"""

from repro.generators.alu import generate_alu
from repro.generators.bus import tristate_bus_design
from repro.generators.clock_tree import skewed_clock_pipeline
from repro.generators.des import generate_des
from repro.generators.fig1 import fig1_circuit, fig1_schedule
from repro.generators.iscas import generate_s27
from repro.generators.fsm import generate_sm1f, generate_sm1h
from repro.generators.gating import clock_gated_design
from repro.generators.pipelines import ff_pipeline, latch_pipeline, loop_of_latches
from repro.generators.random_logic import random_design, random_logic_block

__all__ = [
    "clock_gated_design",
    "ff_pipeline",
    "fig1_circuit",
    "fig1_schedule",
    "generate_alu",
    "generate_des",
    "generate_s27",
    "generate_sm1f",
    "generate_sm1h",
    "latch_pipeline",
    "loop_of_latches",
    "random_design",
    "skewed_clock_pipeline",
    "random_logic_block",
    "tristate_bus_design",
]
