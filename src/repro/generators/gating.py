"""Clock-gated designs: enable paths in action (paper, Section 4).

A register on one phase computes an *enable* that gates another phase's
clock through an AND gate before it reaches a latch's control input --
the classic clock-gating idiom.  The gating signal must settle before
the gated clock edge arrives: exactly the paper's enable-path
constraint.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cells.library import CellLibrary, standard_library
from repro.clocks.schedule import ClockSchedule
from repro.netlist.builder import NetworkBuilder
from repro.netlist.network import Network


def clock_gated_design(
    period: float = 100.0,
    enable_logic_depth: int = 1,
    data_chain: int = 3,
    library: Optional[CellLibrary] = None,
    name: str = "clock_gated",
) -> Tuple[Network, ClockSchedule]:
    """A two-phase design with one clock-gated latch.

    * ``en_ff`` (an edge-triggered register on phi2) computes the enable;
    * the enable passes through ``enable_logic_depth`` buffers and an AND
      gate that gates phi1;
    * latch ``gated_l`` is controlled by the gated clock and sits in an
      ordinary data pipeline.

    The enable path runs from ``en_ff/Q`` to ``gated_l/G``; its
    constraint is the time from en_ff's assertion (phi2's trailing edge)
    to the next leading edge of phi1.
    """
    library = library or standard_library()
    builder = NetworkBuilder(library, name=name)
    schedule = ClockSchedule.two_phase(period)
    builder.clock("phi1")
    builder.clock("phi2")

    # Enable register and gating logic.
    builder.input("en_in", "en_d", clock="phi2", edge="leading")
    builder.latch("en_ff", "DFF", D="en_d", CK="phi2", Q="en_q")
    current = "en_q"
    for index in range(enable_logic_depth):
        builder.gate(f"en_buf{index}", "BUF", A=current, Z=f"en_b{index}")
        current = f"en_b{index}"
    builder.gate("clk_gate", "AND2", A="phi1", B=current, Z="gated_phi1")

    # Data pipeline through the gated latch.
    builder.input("din", "d0", clock="phi2", edge="leading")
    previous = "d0"
    for index in range(data_chain):
        builder.gate(f"dp{index}", "INV", A=previous, Z=f"d{index + 1}")
        previous = f"d{index + 1}"
    builder.latch(
        "gated_l",
        "DLATCH",
        D=previous,
        G="gated_phi1",
        Q="gq",
        attrs={"enable_edge": "leading"},
    )
    builder.gate("post", "INV", A="gq", Z="q_out")
    builder.latch("cap", "DLATCH", D="q_out", G="phi2", Q="cap_q")
    builder.output("dout", "cap_q", clock="phi2", edge="trailing")
    return builder.build(), schedule
