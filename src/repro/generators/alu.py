"""An 899-standard-cell registered ALU (Table 1's "portion of a CPU chip").

Structured like a synthesised datapath: input operand registers, an
opcode register, per-bit function slices with a ripple carry chain, a
zero-detect tree, flag logic and an output register.  The exact cell
count is matched to the paper's 899 with a small amount of real filler
logic (see :func:`repro.generators._util.top_up_standard_cells`).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.cells.library import CellLibrary, standard_library
from repro.clocks.schedule import ClockSchedule
from repro.generators._util import bus, top_up_standard_cells
from repro.netlist.builder import NetworkBuilder
from repro.netlist.network import Network

#: The paper's standard-cell count for the ALU example.
ALU_TARGET_CELLS = 899


def _bit_slice(
    builder: NetworkBuilder, index: int, a: str, b: str, carry_in: str, op: List[str]
) -> Tuple[str, str]:
    """One ALU bit: logic unit + full adder + function select.

    Returns ``(result_net, carry_out_net)``.
    """
    p = f"bit{index}"
    # Logic unit: AND / OR / XOR of the operands.
    builder.gate(f"{p}_and", "NAND2", A=a, B=b, Z=f"{p}_nand")
    builder.gate(f"{p}_andb", "INV", A=f"{p}_nand", Z=f"{p}_land")
    builder.gate(f"{p}_or", "NOR2", A=a, B=b, Z=f"{p}_nor")
    builder.gate(f"{p}_orb", "INV", A=f"{p}_nor", Z=f"{p}_lor")
    builder.gate(f"{p}_xor", "XOR2", A=a, B=b, Z=f"{p}_lxor")
    # Adder: sum = a ^ b ^ cin, cout = majority(a, b, cin).
    builder.gate(f"{p}_sum", "XOR2", A=f"{p}_lxor", B=carry_in, Z=f"{p}_add")
    builder.gate(f"{p}_c1", "NAND2", A=f"{p}_lxor", B=carry_in, Z=f"{p}_c1n")
    builder.gate(f"{p}_c2", "NAND2", A=f"{p}_c1n", B=f"{p}_nand", Z=f"{p}_cout")
    # Function select: two mux levels driven by the opcode.
    builder.gate(
        f"{p}_m0", "MUX2", A=f"{p}_land", B=f"{p}_lor", S=op[0], Z=f"{p}_m0o"
    )
    builder.gate(
        f"{p}_m1", "MUX2", A=f"{p}_lxor", B=f"{p}_add", S=op[0], Z=f"{p}_m1o"
    )
    builder.gate(
        f"{p}_m2", "MUX2", A=f"{p}_m0o", B=f"{p}_m1o", S=op[1], Z=f"{p}_res"
    )
    return f"{p}_res", f"{p}_cout"


def generate_alu(
    seed: int = 899,
    width: int = 48,
    period: float = 100.0,
    target_cells: Optional[int] = ALU_TARGET_CELLS,
    library: Optional[CellLibrary] = None,
) -> Tuple[Network, ClockSchedule]:
    """The registered ALU benchmark.

    ``target_cells=None`` skips the filler and yields the bare structure.
    """
    rng = random.Random(seed)
    library = library or standard_library()
    builder = NetworkBuilder(library, name="ALU")
    schedule = ClockSchedule.single("clk", period)
    builder.clock("clk")

    # Operand and opcode input registers.
    a_bits, b_bits = bus("alu_a", width), bus("alu_b", width)
    for i in range(width):
        builder.input(f"pa{i}", f"pad_a{i}", clock="clk", edge="trailing")
        builder.latch(f"rega{i}", "DFF", D=f"pad_a{i}", CK="clk", Q=a_bits[i])
        builder.input(f"pb{i}", f"pad_b{i}", clock="clk", edge="trailing")
        builder.latch(f"regb{i}", "DFF", D=f"pad_b{i}", CK="clk", Q=b_bits[i])
    op = bus("alu_op", 2)
    for i in range(2):
        builder.input(f"pop{i}", f"pad_op{i}", clock="clk", edge="trailing")
        builder.latch(f"regop{i}", "DFF", D=f"pad_op{i}", CK="clk", Q=op[i])

    # Carry-in tied through a register so every net has a timed source.
    builder.input("pcin", "pad_cin", clock="clk", edge="trailing")
    builder.latch("regcin", "DFF", D="pad_cin", CK="clk", Q="alu_cin")

    # Datapath slices with a ripple carry.
    carry = "alu_cin"
    results: List[str] = []
    for i in range(width):
        result, carry = _bit_slice(builder, i, a_bits[i], b_bits[i], carry, op)
        results.append(result)

    # Zero detect: NOR/NAND reduction tree over the results.
    level = results
    tree_index = 0
    while len(level) > 1:
        next_level: List[str] = []
        for j in range(0, len(level) - 1, 2):
            out = f"z{tree_index}_{j}"
            spec = "NOR2" if tree_index % 2 == 0 else "NAND2"
            builder.gate(
                f"zt{tree_index}_{j}", spec, A=level[j], B=level[j + 1], Z=out
            )
            next_level.append(out)
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
        tree_index += 1
    zero_net = level[0]

    # Output and flag registers.
    for i in range(width):
        builder.latch(
            f"rego{i}", "DFF", D=results[i], CK="clk", Q=f"alu_y{i}"
        )
        builder.output(f"py{i}", f"alu_y{i}", clock="clk", edge="trailing")
    builder.latch("regz", "DFF", D=zero_net, CK="clk", Q="alu_zero")
    builder.output("pzero", "alu_zero", clock="clk", edge="trailing")
    builder.latch("regc", "DFF", D=carry, CK="clk", Q="alu_carry")
    builder.output("pcarry", "alu_carry", clock="clk", edge="trailing")

    if target_cells is not None:
        top_up_standard_cells(
            builder, rng, target_cells, tap_nets=a_bits + b_bits
        )
    return builder.build(), schedule
