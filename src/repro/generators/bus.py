"""Tristate bus designs.

"Clocked tristate drivers are modeled in the same way as transparent
latches" (Section 5).  A shared bus with several tristate drivers is the
one structure where a net legitimately has multiple drivers; the timing
analysis treats each driver as an independent launch onto the bus and
takes the worst case.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cells.library import CellLibrary, standard_library
from repro.clocks.schedule import ClockSchedule
from repro.netlist.builder import NetworkBuilder
from repro.netlist.network import Network


def tristate_bus_design(
    n_drivers: int = 4,
    source_chain: int = 2,
    sink_chain: int = 2,
    period: float = 100.0,
    library: Optional[CellLibrary] = None,
    name: str = "tristate_bus",
) -> Tuple[Network, ClockSchedule]:
    """``n_drivers`` tristate drivers sharing one bus.

    Each driver's data comes from a phi1 latch through its own logic
    cone (of increasing depth, so the drivers have distinct arrival
    times); the bus feeds a cone captured on phi2.  All drivers are
    enabled by phi1 -- the timing model analyses every driver's launch
    independently of the (functional) bus arbitration.
    """
    if n_drivers < 2:
        raise ValueError("a bus needs at least two drivers")
    library = library or standard_library()
    builder = NetworkBuilder(library, name=name)
    schedule = ClockSchedule.two_phase(period)
    builder.clock("phi1")
    builder.clock("phi2")

    for index in range(n_drivers):
        builder.input(
            f"in{index}", f"src{index}_d", clock="phi2", edge="leading"
        )
        builder.latch(
            f"src{index}",
            "DLATCH",
            D=f"src{index}_d",
            G="phi1",
            Q=f"src{index}_q",
        )
        current = f"src{index}_q"
        # Driver k gets k extra inverter pairs: staggered arrival times.
        for stage in range(source_chain + 2 * index):
            nxt = f"src{index}_c{stage}"
            builder.gate(f"src{index}_i{stage}", "INV", A=current, Z=nxt)
            current = nxt
        builder.latch(
            f"drv{index}", "TRIBUF", D=current, EN="phi1", Q="bus"
        )

    current = "bus"
    for stage in range(sink_chain):
        nxt = f"sink_c{stage}"
        builder.gate(f"sink_i{stage}", "INV", A=current, Z=nxt)
        current = nxt
    builder.latch("cap", "DLATCH", D=current, G="phi2", Q="cap_q")
    builder.output("dout", "cap_q", clock="phi2", edge="trailing")
    return builder.build(), schedule
