"""SM1: the paper's 12-bit finite state machine, flat and hierarchical.

Table 1 lists the same machine twice: SM1F as a "flattened" network of
standard cells and SM1H as a "hierarchical" description "in which the
combinational logic is contained in a single module".  The generator
builds the hierarchical form (state register + one combinational module)
and derives the flat form by flattening it, so the two are exactly the
same machine -- as in the paper.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.cells.library import CellLibrary, standard_library
from repro.clocks.schedule import ClockSchedule
from repro.generators._util import bus
from repro.generators.random_logic import random_logic_block
from repro.netlist.builder import NetworkBuilder
from repro.netlist.hierarchy import ModuleDefinition, ModuleSpec, flatten
from repro.netlist.network import Network


def _next_state_module(
    seed: int,
    state_bits: int,
    n_inputs: int,
    n_outputs: int,
    n_gates: int,
    library: CellLibrary,
) -> ModuleSpec:
    """The FSM's combinational next-state/output logic as a module."""
    rng = random.Random(seed)
    inner_builder = NetworkBuilder(library, name="sm1_logic")
    in_ports = bus("s", state_bits) + bus("x", n_inputs)
    outputs = random_logic_block(
        inner_builder,
        rng,
        prefix="ns",
        input_nets=in_ports,
        n_gates=n_gates,
        n_outputs=state_bits + n_outputs,
    )
    inner = inner_builder.build()
    definition = ModuleDefinition(
        inner,
        input_ports={name: name for name in in_ports},
        output_ports={
            **{f"ns{i}": outputs[i] for i in range(state_bits)},
            **{
                f"y{i}": outputs[state_bits + i] for i in range(n_outputs)
            },
        },
    )
    return ModuleSpec("SM1_LOGIC", definition)


def generate_sm1h(
    seed: int = 1989,
    state_bits: int = 12,
    n_inputs: int = 8,
    n_outputs: int = 9,
    n_gates: int = 280,
    period: float = 100.0,
    library: Optional[CellLibrary] = None,
) -> Tuple[Network, ClockSchedule]:
    """SM1H: hierarchical 12-bit FSM (logic in a single module)."""
    library = library or standard_library()
    module = _next_state_module(
        seed, state_bits, n_inputs, n_outputs, n_gates, library
    )
    builder = NetworkBuilder(library, name="SM1H")
    schedule = ClockSchedule.single("clk", period)
    builder.clock("clk")
    pins = {}
    for i in range(n_inputs):
        builder.input(f"x{i}", f"xin{i}", clock="clk", edge="trailing")
        pins[f"x{i}"] = f"xin{i}"
    for i in range(state_bits):
        builder.latch(
            f"state{i}", "DFF", D=f"ns_net{i}", CK="clk", Q=f"st{i}"
        )
        pins[f"s{i}"] = f"st{i}"
        pins[f"ns{i}"] = f"ns_net{i}"
    for i in range(n_outputs):
        pins[f"y{i}"] = f"yout{i}"
        builder.output(f"y{i}_pad", f"yout{i}", clock="clk", edge="trailing")
    builder.instantiate("logic", module, **pins)
    return builder.build(), schedule


def generate_sm1f(
    seed: int = 1989,
    state_bits: int = 12,
    n_inputs: int = 8,
    n_outputs: int = 9,
    n_gates: int = 280,
    period: float = 100.0,
    library: Optional[CellLibrary] = None,
) -> Tuple[Network, ClockSchedule]:
    """SM1F: the same machine as :func:`generate_sm1h`, flattened."""
    network, schedule = generate_sm1h(
        seed, state_bits, n_inputs, n_outputs, n_gates, period, library
    )
    return flatten(network, name="SM1F"), schedule
