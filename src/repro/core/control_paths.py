"""Control-path delay extraction.

A *control path* is a combinational path from a clock generator output to
a synchronising element's control input (paper, Section 4).  Control paths
have an ideal path constraint of exactly zero; their real delay shows up
as the assertion-control arrival offset ``O_ac >= 0`` of the element's
model.  This module computes, per synchroniser, the maximum and minimum
control-path delay with a memoised backward traversal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.delay.estimator import DelayMap
from repro.netlist.cell import Cell
from repro.netlist.kinds import CellRole
from repro.netlist.network import Network
from repro.netlist.terminals import Terminal


@dataclass(frozen=True)
class ControlArrival:
    """Max/min delay from the clock source to a control pin."""

    latest: float
    earliest: float

    @property
    def skew_spread(self) -> float:
        """Uncertainty of the control arrival (within one pin)."""
        return self.latest - self.earliest


class ControlDelayExtractor:
    """Computes control arrivals for every synchroniser of a network."""

    def __init__(self, network: Network, delays: DelayMap) -> None:
        self._network = network
        self._delays = delays
        self._memo: Dict[str, Tuple[float, float]] = {}

    def arrival(self, sync_cell: Cell) -> ControlArrival:
        """Control arrival of ``sync_cell`` (validated networks only)."""
        control = sync_cell.control_terminal
        if control is None:
            raise ValueError(f"{sync_cell.name!r} has no control terminal")
        latest, earliest = self._arrival_at(control)
        if latest == float("-inf"):
            raise ValueError(
                f"no clock source reachable from {control.full_name}"
            )
        return ControlArrival(latest=latest, earliest=earliest)

    def all_arrivals(self) -> Dict[str, ControlArrival]:
        return {
            cell.name: self.arrival(cell)
            for cell in self._network.synchronisers
        }

    # ------------------------------------------------------------------
    def _arrival_at(self, terminal: Terminal) -> Tuple[float, float]:
        """(max, min) delay from the clock source to a sink terminal."""
        memoised = self._memo.get(terminal.full_name)
        if memoised is not None:
            return memoised
        net = terminal.net
        if net is None or not net.drivers:
            raise ValueError(
                f"control path reaches undriven terminal {terminal.full_name}"
            )
        latest = float("-inf")
        earliest = float("inf")
        for driver in net.drivers:
            cell = driver.cell
            if cell.role is CellRole.CLOCK_SOURCE:
                latest = max(latest, 0.0)
                earliest = min(earliest, 0.0)
                continue
            if cell.is_synchroniser or cell.role is CellRole.PRIMARY_INPUT:
                # Enable-path branch: carries gating data, not the clock
                # transition, so it does not shape the control arrival.
                # Its own constraint is checked by core.enable_paths.
                continue
            if not cell.is_combinational:
                raise ValueError(
                    f"control path reaches {cell.role.value} cell "
                    f"{cell.name!r}; validate the network first"
                )
            for in_pin, out_pin in self._delays.arcs_of(cell):
                if out_pin != driver.pin:
                    continue
                up_latest, up_earliest = self._arrival_at(
                    cell.terminal(in_pin)
                )
                if up_latest == float("-inf"):
                    continue  # branch carries no clock transition
                arc_max = self._delays.arc_delay(cell, in_pin, out_pin)
                arc_min = self._delays.arc_delay_min(cell, in_pin, out_pin)
                latest = max(latest, up_latest + arc_max.worst)
                earliest = min(earliest, up_earliest + arc_min.best)
        result = (latest, earliest)
        self._memo[terminal.full_name] = result
        return result


def control_arrivals(
    network: Network, delays: DelayMap
) -> Dict[str, ControlArrival]:
    """Control arrivals for every synchroniser of ``network``."""
    return ControlDelayExtractor(network, delays).all_arrivals()
