"""Algorithm 3: the analysis-redesign loop (paper, Section 8).

    Synthesise initial area-optimised combinational logic modules.
    Until all paths are fast enough:
        Perform timing analysis to identify all paths that are too slow;
        Provide input data ready times and output required times for all
        combinational logic modules traversed by paths that are too slow;
        Select one such module and speed up slow paths.

The re-synthesis program itself (Singh et al. [1]) is outside the paper's
scope; this module substitutes a delay/area trade-off model: "speeding
up" a module multiplies its arc delays by ``speedup_factor`` (< 1) and
charges area proportional to the delay reduction.  Module selection
follows the Singh-style "most potential for speed up" heuristic: the
module whose speed-up most reduces the worst violation per unit area
cost -- approximated by picking, among modules on slow paths, the one
with the largest (delay x occurrences-on-slow-paths) product that can
still be sped up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.clocks.schedule import ClockSchedule
from repro.core.algorithm1 import run_algorithm1
from repro.core.algorithm2 import run_algorithm2
from repro.core.model import AnalysisModel
from repro.core.report import extract_slow_paths
from repro.core.slack import SlackEngine
from repro.delay.estimator import DelayMap
from repro.netlist.network import Network


@dataclass
class RedesignRound:
    """Record of one loop iteration."""

    round_index: int
    worst_slack: float
    slow_path_count: int
    chosen_module: Optional[str]
    scale_applied: Optional[float]
    #: Delay budget handed to the chosen module (Algorithm 2 output).
    allowed_delay: Optional[float] = None


@dataclass
class RedesignResult:
    """Outcome of the analysis-redesign loop."""

    success: bool
    rounds: List[RedesignRound] = field(default_factory=list)
    final_delays: Optional[DelayMap] = None
    #: Relative area increase charged by the trade-off model.
    area_cost: float = 0.0

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)


@dataclass(frozen=True)
class SpeedupModel:
    """The delay/area trade-off of the substitute re-synthesis tool."""

    #: Multiplier applied to a module's delays per speed-up.
    speedup_factor: float = 0.75
    #: Smallest cumulative scale a module can reach (diminishing returns).
    min_scale: float = 0.25
    #: Area charged per unit of relative delay reduction.
    area_per_speedup: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.speedup_factor < 1:
            raise ValueError("speedup_factor must be in (0, 1)")
        if not 0 < self.min_scale <= 1:
            raise ValueError("min_scale must be in (0, 1]")


def select_module(
    model: AnalysisModel,
    engine: SlackEngine,
    capture_slacks: Dict[str, float],
    scales: Dict[str, float],
    speedup: SpeedupModel,
) -> Optional[str]:
    """Pick the combinational module with the most speed-up potential.

    Scores each cell on a slow path by ``violation-weight x current worst
    arc delay``: a slow, frequently-implicated module gives the largest
    violation reduction per application of the speed-up factor.
    """
    paths = extract_slow_paths(
        model, engine, capture_slacks, tolerance=0.0, limit=None
    )
    scores: Dict[str, float] = {}
    for path in paths:
        weight = max(path.violation, 1e-6)
        for step in path.steps:
            if scales.get(step.cell_name, 1.0) <= speedup.min_scale:
                continue
            cell = model.network.cell(step.cell_name)
            delay = model.delays.worst_arc_delay(cell)
            scores[step.cell_name] = scores.get(step.cell_name, 0.0) + (
                weight * delay
            )
    if not scores:
        return None
    return max(sorted(scores), key=lambda name: scores[name])


def run_redesign_loop(
    network: Network,
    schedule: ClockSchedule,
    delays: DelayMap,
    speedup: Optional[SpeedupModel] = None,
    max_rounds: int = 50,
    generate_constraints: bool = True,
    incremental: bool = True,
) -> RedesignResult:
    """Run Algorithm 3 until all paths are fast enough or no module can
    be sped up further.

    The network is not modified; the returned ``final_delays`` reflect the
    accumulated speed-ups.  With ``incremental=True`` (default) the loop
    keeps one analysis model alive across rounds and warm-starts
    Algorithm 1 from the previous fixed point
    (:mod:`repro.core.incremental`); ``incremental=False`` rebuilds from
    scratch each round, which the ablation bench uses as the reference.
    """
    from repro.core.incremental import IncrementalAnalyzer

    speedup = speedup or SpeedupModel()
    scales: Dict[str, float] = {}
    current = delays
    result = RedesignResult(success=False)
    inc: Optional[IncrementalAnalyzer] = (
        IncrementalAnalyzer(network, schedule, delays) if incremental else None
    )

    for round_index in range(max_rounds):
        # The span covers one whole redesign round; a `break` below exits
        # the span (recording it) before leaving the loop.
        with obs.span(
            "resynthesis.round", category="resynthesis", round=round_index
        ):
            obs.counter("resynthesis.rounds")
            if inc is not None:
                model = inc.model
                engine = inc.engine
                outcome = inc.analyze(warm=True)
                current = inc.delays
            else:
                model = AnalysisModel(network, schedule, current)
                engine = SlackEngine(model)
                outcome = run_algorithm1(model, engine)
            slow_paths = (
                []
                if outcome.intended
                else extract_slow_paths(
                    model, engine, outcome.slacks.capture, limit=None
                )
            )
            obs.event(
                "resynthesis.round_done",
                round=round_index,
                slow_paths=len(slow_paths),
                intended=outcome.intended,
            )
            if outcome.intended:
                result.rounds.append(
                    RedesignRound(
                        round_index=round_index,
                        worst_slack=outcome.worst_slack,
                        slow_path_count=0,
                        chosen_module=None,
                        scale_applied=None,
                    )
                )
                result.success = True
                break

            chosen = select_module(
                model, engine, outcome.slacks.capture, scales, speedup
            )
            allowed: Optional[float] = None
            if chosen is not None and generate_constraints:
                constraints = run_algorithm2(
                    model, engine, algorithm1_result=outcome
                ).constraints
                allowed = constraints.cell_constraints(
                    network.cell(chosen)
                ).allowed_delay
            result.rounds.append(
                RedesignRound(
                    round_index=round_index,
                    worst_slack=outcome.worst_slack,
                    slow_path_count=len(slow_paths),
                    chosen_module=chosen,
                    scale_applied=speedup.speedup_factor if chosen else None,
                    allowed_delay=allowed,
                )
            )
            if chosen is None:
                break  # nothing left to speed up: the loop fails
            obs.event(
                "resynthesis.module_chosen",
                round=round_index,
                module=chosen,
                allowed_delay=allowed,
            )
            previous_scale = scales.get(chosen, 1.0)
            new_scale = max(
                previous_scale * speedup.speedup_factor, speedup.min_scale
            )
            factor = new_scale / previous_scale
            scales[chosen] = new_scale
            if inc is not None:
                inc.scale_cell(chosen, factor)
                current = inc.delays
            else:
                current = current.with_scaled_cell(chosen, factor)
            result.area_cost += speedup.area_per_speedup * (1.0 - factor)

    result.final_delays = current
    return result
