"""Supplementary (minimum-delay) path constraints -- documented extension.

Section 4 defines, for each path ending at data input ``y`` on a clock of
period ``T_y``, the supplementary path constraint::

    dmin_p > D_p - O_x + O_y - T_y

("the signal at the data input must not be updated more than ``T_y``
before the input closure time").  The paper notes that its algorithms "do
not detect these problems"; this module adds the detection as an optional
post-pass: per cluster pass, the *earliest* possible arrivals are traced
forward (minimum arc delays, earliest assertion offsets) and compared
against ``closure - T_y (+ hold)`` at each designated capture.

The earliest assertion offset of an instance conservatively assumes a
zero internal clock-to-output delay on top of the *minimum* control-path
arrival, and for transparent elements that data races through the moment
the window opens.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.core.sync_elements import GenericInstance, InstanceKind
from repro.rftime import RiseFall


@dataclass(frozen=True)
class MinDelayViolation:
    """A path that is too *fast* (supplementary constraint violated)."""

    cluster: str
    pass_index: int
    capture_instance: str
    capture_net: str
    earliest_arrival: float
    earliest_allowed: float

    @property
    def amount(self) -> float:
        return self.earliest_allowed - self.earliest_arrival


def earliest_assertion_offset(instance: GenericInstance) -> float:
    """Earliest offset at which the instance's output can change."""
    if instance.kind is InstanceKind.FIXED_SOURCE:
        return instance.fixed_offset
    # Conservative: the output may change as soon as the earliest control
    # transition arrives (zero internal delay assumed for the minimum).
    return instance.control_arrival_min


def check_min_delays(
    model: AnalysisModel, engine: SlackEngine
) -> List[MinDelayViolation]:
    """All supplementary-constraint violations under the current offsets."""
    violations: List[MinDelayViolation] = []
    for cluster in model.clusters:
        plan = model.plans[cluster.name]
        launches = model.launch_ports[cluster.name]
        captures = model.capture_ports[cluster.name]
        for pass_index in range(plan.num_passes):
            designated = [c for c in captures if c.pass_index == pass_index]
            if not designated:
                continue
            earliest = _forward_min(model, engine, cluster, launches, pass_index)
            for port in designated:
                at = earliest.get(port.net_name)
                if at is None or not at.is_finite():
                    continue
                closure = engine._closure_time(cluster.name, port)
                allowed = (
                    closure
                    - float(port.instance.clock_period)
                    + port.instance.hold
                )
                # Strictly earlier than allowed is a violation; exact
                # equality is the degenerate zero-margin boundary (e.g. a
                # zero-delay launch exactly at the edge), reported by the
                # max-delay analysis instead.
                if at.best < allowed - 1e-12:
                    violations.append(
                        MinDelayViolation(
                            cluster=cluster.name,
                            pass_index=pass_index,
                            capture_instance=port.instance.name,
                            capture_net=port.net_name,
                            earliest_arrival=at.best,
                            earliest_allowed=allowed,
                        )
                    )
    return violations


@dataclass(frozen=True)
class HoldViolation:
    """A classic same-edge hold violation.

    The launch and capture share an ideal clock edge; the minimum path
    delay (earliest launch's min clock-to-output plus the combinational
    minimum) fails to cover the capture's latest control arrival plus its
    hold requirement.
    """

    cluster: str
    launch_instance: str
    capture_instance: str
    capture_net: str
    earliest_change: float
    required_stable_until: float

    @property
    def amount(self) -> float:
        return self.required_stable_until - self.earliest_change


def check_hold(
    model: AnalysisModel, engine: SlackEngine
) -> List[HoldViolation]:
    """Same-edge hold analysis (industry-classic; a refinement beyond the
    paper's supplementary constraint).

    For every cluster, launches sharing one ideal assertion edge are
    traced forward with minimum delays *relative to that edge*; every
    capture whose ideal closure coincides with the edge requires the data
    to stay stable until its latest control arrival plus ``hold``.
    """
    violations: List[HoldViolation] = []
    for cluster in model.clusters:
        launches = model.launch_ports[cluster.name]
        captures = model.capture_ports[cluster.name]
        by_edge: Dict[object, List] = {}
        for port in launches:
            by_edge.setdefault(port.instance.assertion_edge, []).append(port)
        for edge, group in by_edge.items():
            same_edge_captures = [
                c for c in captures if c.instance.closure_edge == edge
            ]
            if not same_edge_captures:
                continue
            earliest, origin = _relative_forward_min(model, cluster, group)
            for port in same_edge_captures:
                at = earliest.get(port.net_name)
                if at is None:
                    continue
                instance = port.instance
                required = (
                    instance.control_arrival + instance.hold
                    if instance.kind is not InstanceKind.FIXED_SINK
                    else instance.fixed_offset + instance.hold
                )
                if at.best < required - 1e-12:
                    violations.append(
                        HoldViolation(
                            cluster=cluster.name,
                            launch_instance=origin.get(
                                port.net_name, "<unknown>"
                            ),
                            capture_instance=instance.name,
                            capture_net=port.net_name,
                            earliest_change=at.best,
                            required_stable_until=required,
                        )
                    )
    return violations


def _launch_min_offset(instance: GenericInstance) -> float:
    """Earliest the instance's output can change after its clock edge."""
    if instance.kind is InstanceKind.FIXED_SOURCE:
        return instance.fixed_offset
    return instance.control_arrival_min + instance.c_to_q_min


def _relative_forward_min(model: AnalysisModel, cluster, group):
    """Minimum arrivals relative to the shared launch edge."""
    delays = model.delays
    arrival: Dict[str, RiseFall] = {}
    origin: Dict[str, str] = {}
    for port in group:
        t = _launch_min_offset(port.instance)
        pair = RiseFall.both(t)
        existing = arrival.get(port.net_name)
        if existing is None or pair.best < existing.best:
            origin[port.net_name] = port.instance.name
        arrival[port.net_name] = (
            pair if existing is None else existing.min_with(pair)
        )
    for cell in cluster.cells:
        for in_pin, out_pin in delays.arcs_of(cell):
            in_net = cell.terminal(in_pin).net
            out_net = cell.terminal(out_pin).net
            if in_net is None or out_net is None:
                continue
            at_input = arrival.get(in_net.name)
            if at_input is None:
                continue
            sense = delays.arc_unateness(cell, in_pin, out_pin)
            value = at_input.back_through_arc(sense).plus(
                delays.arc_delay_min(cell, in_pin, out_pin)
            )
            existing = arrival.get(out_net.name)
            if existing is None or value.best < existing.best:
                origin[out_net.name] = origin.get(
                    in_net.name, "<unknown>"
                )
            arrival[out_net.name] = (
                value if existing is None else existing.min_with(value)
            )
    return arrival, origin


def _forward_min(
    model: AnalysisModel,
    engine: SlackEngine,
    cluster,
    launches,
    pass_index: int,
) -> Dict[str, RiseFall]:
    """Trace earliest arrivals forward (minimum delays)."""
    plan = model.plans[cluster.name]
    delays = model.delays
    arrival: Dict[str, RiseFall] = {}
    for port in launches:
        assert port.instance.assertion_edge is not None
        t = float(
            plan.position_assertion(port.instance.assertion_edge, pass_index)
        ) + earliest_assertion_offset(port.instance)
        pair = RiseFall.both(t)
        existing = arrival.get(port.net_name)
        arrival[port.net_name] = (
            pair if existing is None else existing.min_with(pair)
        )
    for cell in cluster.cells:
        for in_pin, out_pin in delays.arcs_of(cell):
            in_net = cell.terminal(in_pin).net
            out_net = cell.terminal(out_pin).net
            if in_net is None or out_net is None:
                continue
            at_input = arrival.get(in_net.name)
            if at_input is None:
                continue
            sense = delays.arc_unateness(cell, in_pin, out_pin)
            value = at_input.back_through_arc(sense).plus(
                delays.arc_delay_min(cell, in_pin, out_pin)
            )
            existing = arrival.get(out_net.name)
            arrival[out_net.name] = (
                value if existing is None else existing.min_with(value)
            )
    return arrival
