"""The prepared analysis model ("pre-processing" in Table 1's terms).

Building an :class:`AnalysisModel` performs everything the paper counts as
pre-processing: validation, expansion of synchronisers into generic
instances, control-path delay extraction, cluster generation, requirement
arc construction and the Section 7 minimum-pass selection.  The model is
then iterated over cheaply by Algorithms 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.clocks.schedule import ClockSchedule
from repro.core.breakopen import BreakOpenPlan, RequirementArc, plan_for_cluster
from repro.core.clusters import Cluster, extract_clusters
from repro.core.control_paths import control_arrivals
from repro.core.sync_elements import (
    GenericInstance,
    InstanceKind,
    expand_synchroniser,
    pad_instance,
)
from repro.delay.estimator import DelayMap
from repro.netlist.network import Network
from repro.netlist.validate import validate_network


@dataclass(frozen=True)
class LaunchPort:
    """A generic instance's output feeding one cluster."""

    instance: GenericInstance
    terminal_name: str
    net_name: str
    cluster_name: str


@dataclass(frozen=True)
class CapturePort:
    """A generic instance's data input fed by one cluster.

    ``pass_index`` is the cluster analysis pass in which this capture's
    slack is computed (its closure time is closest to the end of that
    pass's broken-open period).
    """

    instance: GenericInstance
    terminal_name: str
    net_name: str
    cluster_name: str
    pass_index: int


class AnalysisModel:
    """Everything Algorithms 1/2 need, prepared once per network."""

    def __init__(
        self,
        network: Network,
        schedule: ClockSchedule,
        delays: DelayMap,
        exhaustive_limit: int = 4,
        latch_model: str = "transparent",
        pass_strategy: str = "minimum",
        clusters: Optional[Tuple[Cluster, ...]] = None,
    ) -> None:
        """``latch_model="edge"`` degrades every transparent latch to an
        edge-triggered element (the McWilliams-style baseline of Section
        2); ``pass_strategy="per_edge"`` analyses every cluster once per
        clock edge instead of the Section 7 minimum (the per-edge
        settling-time attribution of Wallace/Szymanski).

        ``clusters`` accepts a precomputed partition of *this* network
        (e.g. one whose reachability maps were seeded from the cluster
        cache); when omitted the partition is extracted here.  Passing
        clusters of a different network is undefined."""
        if latch_model not in ("transparent", "edge"):
            raise ValueError(f"unknown latch model {latch_model!r}")
        if pass_strategy not in ("minimum", "per_edge"):
            raise ValueError(f"unknown pass strategy {pass_strategy!r}")
        self.network = network
        self.schedule = schedule
        self.delays = delays
        self.latch_model = latch_model
        self.pass_strategy = pass_strategy

        report = validate_network(network, set(schedule.clock_names))
        report.raise_if_failed()
        self.validation = report

        self.instances: Dict[str, Tuple[GenericInstance, ...]] = {}
        self._build_instances()
        if latch_model == "edge":
            self._degrade_to_edge_triggered()

        self.clusters: Tuple[Cluster, ...] = (
            clusters if clusters is not None else extract_clusters(network)
        )
        self.plans: Dict[str, BreakOpenPlan] = {}
        self.launch_ports: Dict[str, Tuple[LaunchPort, ...]] = {}
        self.capture_ports: Dict[str, Tuple[CapturePort, ...]] = {}
        self._build_ports(exhaustive_limit)

    # ------------------------------------------------------------------
    # instance expansion
    # ------------------------------------------------------------------
    def _build_instances(self) -> None:
        arrivals = control_arrivals(self.network, self.delays)
        for cell in self.network.synchronisers:
            trace = self.validation.control_traces[cell.name]
            arrival = arrivals[cell.name]
            timing = self.delays.sync_timing(cell)
            self.instances[cell.name] = expand_synchroniser(
                cell,
                self.schedule,
                trace.clock,
                trace.sense,
                timing,
                control_arrival=arrival.latest,
                control_arrival_min=arrival.earliest,
            )
        for cell in self.network.primary_inputs + self.network.primary_outputs:
            self.instances[cell.name] = (pad_instance(cell, self.schedule),)

    def _degrade_to_edge_triggered(self) -> None:
        """Treat every transparent element as closing *and* asserting on
        the trailing edge of its pulse -- McWilliams-style modelling with
        no cycle borrowing."""
        for group in self.instances.values():
            for instance in group:
                if instance.kind is InstanceKind.TRANSPARENT:
                    instance.kind = InstanceKind.EDGE_TRIGGERED
                    instance.assertion_edge = instance.closure_edge
                    instance.w = 0.0

    def all_instances(self) -> List[GenericInstance]:
        return [i for group in self.instances.values() for i in group]

    def adjustable_instances(self) -> List[GenericInstance]:
        return [i for i in self.all_instances() if i.adjustable]

    def reset_windows(self) -> None:
        """Restore every instance's initial offsets ("Select any set of
        offsets satisfying the synchronising element constraints")."""
        for instance in self.all_instances():
            instance.reset_window()

    # ------------------------------------------------------------------
    # ports and pass plans
    # ------------------------------------------------------------------
    def _build_ports(self, exhaustive_limit: int) -> None:
        candidate_breaks = self.schedule.edge_times()
        period = self.schedule.overall_period
        for cluster in self.clusters:
            if self.pass_strategy == "per_edge":
                # Wallace/Szymanski-style: one settling time per clock edge.
                plan = BreakOpenPlan(
                    period=period, breaks=tuple(candidate_breaks)
                )
            else:
                arcs = self._requirement_arcs(cluster)
                plan = plan_for_cluster(
                    period, candidate_breaks, arcs, exhaustive_limit
                )
            self.plans[cluster.name] = plan

            launches: List[LaunchPort] = []
            for terminal in cluster.sources:
                for instance in self.instances[terminal.cell.name]:
                    if not instance.has_output:
                        continue
                    assert terminal.net is not None
                    launches.append(
                        LaunchPort(
                            instance=instance,
                            terminal_name=terminal.full_name,
                            net_name=terminal.net.name,
                            cluster_name=cluster.name,
                        )
                    )
            self.launch_ports[cluster.name] = tuple(launches)

            captures: List[CapturePort] = []
            for terminal in cluster.captures:
                for instance in self.instances[terminal.cell.name]:
                    if not instance.has_input:
                        continue
                    assert terminal.net is not None
                    assert instance.closure_edge is not None
                    captures.append(
                        CapturePort(
                            instance=instance,
                            terminal_name=terminal.full_name,
                            net_name=terminal.net.name,
                            cluster_name=cluster.name,
                            pass_index=plan.designated_pass(
                                instance.closure_edge
                            ),
                        )
                    )
            self.capture_ports[cluster.name] = tuple(captures)

    def _requirement_arcs(self, cluster: Cluster) -> List[RequirementArc]:
        """One arc per (launch instance, capture instance) edge-time pair
        connected by a switching path."""
        reach = cluster.reachable_captures(self.network)
        capture_cell_by_terminal = {
            t.full_name: t.cell.name for t in cluster.captures
        }
        arcs: List[RequirementArc] = []
        for source in cluster.sources:
            targets = reach.get(source.full_name, frozenset())
            if not targets:
                continue
            source_instances = [
                i
                for i in self.instances[source.cell.name]
                if i.has_output and i.assertion_edge is not None
            ]
            for target_name in targets:
                capture_cell = capture_cell_by_terminal[target_name]
                for capture in self.instances[capture_cell]:
                    if not capture.has_input or capture.closure_edge is None:
                        continue
                    for launch in source_instances:
                        arcs.append(
                            RequirementArc(
                                assertion=launch.assertion_edge,
                                closure=capture.closure_edge,
                            )
                        )
        return arcs

    # ------------------------------------------------------------------
    # statistics (Table 1 style)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        stats = dict(self.network.stats())
        stats["clusters"] = len(self.clusters)
        stats["generic_instances"] = len(self.all_instances())
        stats["total_passes"] = sum(
            plan.num_passes for plan in self.plans.values()
        )
        stats["max_passes_per_cluster"] = max(
            (plan.num_passes for plan in self.plans.values()), default=0
        )
        return stats


def build_model(
    network: Network,
    schedule: ClockSchedule,
    delays: Optional[DelayMap] = None,
    exhaustive_limit: int = 4,
) -> AnalysisModel:
    """Convenience constructor estimating delays when not supplied."""
    if delays is None:
        from repro.delay.estimator import estimate_delays

        delays = estimate_delays(network)
    return AnalysisModel(network, schedule, delays, exhaustive_limit)
