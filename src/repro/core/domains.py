"""Clock-domain crossing report.

Multi-phase, multi-frequency designs have data paths between elements on
different clocks; the ideal path constraint ``D_p`` of each crossing
pair determines how much time those paths get.  This report enumerates
the (launch clock, capture clock) pairs present in a design with their
tightest ideal constraints -- a quick map of where the clocking scheme
squeezes the logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Tuple

from repro.core.model import AnalysisModel
from repro.netlist.network import Network


def clock_domains(network: Network) -> Tuple[str, ...]:
    """The clock names referenced by the design's synchronisers/pads.

    A cheap structural fingerprint (no :class:`AnalysisModel` needed):
    the sorted set of ``clock`` attributes on synchronising elements and
    clocked pads.  The batch scheduler uses it to group jobs that share
    a clocking structure onto the same worker wave (see
    :mod:`repro.service.batch`); the full per-pair crossing report
    below still requires a built model.
    """
    names = set()
    for source in network.clock_sources:
        names.add(str(source.attrs.get("clock", source.name)))
    for cell in network.cells:
        clock = cell.attrs.get("clock")
        if clock:
            names.add(str(clock))
    return tuple(sorted(names))


@dataclass(frozen=True)
class DomainCrossing:
    """Aggregate of all paths from one clock to another."""

    launch_clock: str
    capture_clock: str
    path_pairs: int
    #: Tightest / widest ideal path constraint among the pairs.
    min_constraint: float
    max_constraint: float


def _clock_of(model: AnalysisModel, cell_name: str) -> str:
    trace = model.validation.control_traces.get(cell_name)
    if trace is not None:
        return trace.clock
    cell = model.network.cell(cell_name)
    return str(cell.attrs.get("clock", "<none>"))


def domain_crossings(model: AnalysisModel) -> List[DomainCrossing]:
    """All clock-domain pairs connected by switching paths."""
    period = model.schedule.overall_period
    buckets: Dict[Tuple[str, str], List[Fraction]] = {}
    for cluster in model.clusters:
        reach = cluster.reachable_captures(model.network)
        capture_cell = {t.full_name: t.cell.name for t in cluster.captures}
        for source in cluster.sources:
            targets = reach.get(source.full_name, frozenset())
            if not targets:
                continue
            launch_clock = _clock_of(model, source.cell.name)
            for target in targets:
                capture_clock = _clock_of(model, capture_cell[target])
                key = (launch_clock, capture_clock)
                for launch in model.instances[source.cell.name]:
                    if launch.assertion_edge is None:
                        continue
                    for capture in model.instances[capture_cell[target]]:
                        if capture.closure_edge is None:
                            continue
                        delta = (
                            capture.closure_edge - launch.assertion_edge
                        ) % period
                        buckets.setdefault(key, []).append(
                            delta if delta != 0 else period
                        )
    crossings = []
    for (launch, capture), constraints in sorted(buckets.items()):
        crossings.append(
            DomainCrossing(
                launch_clock=launch,
                capture_clock=capture,
                path_pairs=len(constraints),
                min_constraint=float(min(constraints)),
                max_constraint=float(max(constraints)),
            )
        )
    return crossings


def render_domain_crossings(crossings: List[DomainCrossing]) -> str:
    """Text table of the crossing report."""
    if not crossings:
        return "no clocked data paths"
    header = (
        f"{'launch':<10} {'capture':<10} {'pairs':>6} "
        f"{'min D_p':>9} {'max D_p':>9}"
    )
    lines = [header, "-" * len(header)]
    for crossing in crossings:
        lines.append(
            f"{crossing.launch_clock:<10} {crossing.capture_clock:<10} "
            f"{crossing.path_pairs:>6} {crossing.min_constraint:>9.3f} "
            f"{crossing.max_constraint:>9.3f}"
        )
    return "\n".join(lines)
