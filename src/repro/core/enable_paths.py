"""Enable paths (paper, Section 4).

"An enable path is a combinational logic path from a synchronising
element output to a synchronising element control input.  For an enable
path from terminal z to terminal y, of synchronising element sigma, the
ideal path constraint is the time that elapses between the ideal
assertion time at z and one of the following two transitions of the
clock that controls sigma.  The nature of the operation of the
synchronising element, and of the enable logic, determines which of the
clock edges is to be enabled/disabled."

Per controlled element, the gated edge is selected by the instance
attribute ``attrs['enable_edge']`` (``"leading"`` -- the default, the
usual clock-gating requirement that the gate be stable before the pulse
starts -- or ``"trailing"``); ``attrs['enable_setup']`` adds a margin.
The enable signal launched at each source assertion must settle, through
the combinational enable logic, before the *next* gated edge.

Enable-path constraints have no adjustable offsets on the control side
(the simplified model pins ``O_cc = 0``), so they are checked after
Algorithm 1 against the final source offsets rather than participating
in slack transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from repro.core.model import AnalysisModel
from repro.netlist.cell import Cell
from repro.netlist.terminals import Terminal


@dataclass(frozen=True)
class EnablePathCheck:
    """One (enable source instance, controlled element) constraint."""

    controlled_cell: str
    source_terminal: str
    launch_instance: str
    #: Ideal path constraint: assertion edge to the next gated edge.
    ideal_constraint: float
    #: Worst-case enable settle time after the source's ideal assertion
    #: (source assertion offset + combinational path delay + margin).
    settle_offset: float

    @property
    def slack(self) -> float:
        return self.ideal_constraint - self.settle_offset

    @property
    def ok(self) -> bool:
        return self.slack > 0


def enable_path_checks(model: AnalysisModel) -> List[EnablePathCheck]:
    """Evaluate every enable-path constraint under the current offsets."""
    checks: List[EnablePathCheck] = []
    period = model.schedule.overall_period
    for cell in model.network.synchronisers:
        trace = model.validation.control_traces.get(cell.name)
        if trace is None or not trace.enable_sources:
            continue
        gated_edges = _gated_edges(model, cell)
        margin = float(cell.attrs.get("enable_setup", 0.0))
        control = cell.control_terminal
        assert control is not None
        for source_name in trace.enable_sources:
            source_terminal = _find_terminal(model, source_name)
            path_delay = _max_path_delay(model, source_terminal, control)
            if path_delay is None:
                continue  # no structural path (shared cone artefact)
            for launch in model.instances[source_terminal.cell.name]:
                if not launch.has_output or launch.assertion_edge is None:
                    continue
                d = _next_edge_constraint(
                    launch.assertion_edge, gated_edges, period
                )
                checks.append(
                    EnablePathCheck(
                        controlled_cell=cell.name,
                        source_terminal=source_name,
                        launch_instance=launch.name,
                        ideal_constraint=float(d),
                        settle_offset=(
                            launch.assertion_offset + path_delay + margin
                        ),
                    )
                )
    return checks


def check_enable_paths(model: AnalysisModel) -> List[EnablePathCheck]:
    """The violated enable-path constraints (empty when all gating logic
    settles in time)."""
    return [check for check in enable_path_checks(model) if not check.ok]


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _gated_edges(model: AnalysisModel, cell: Cell) -> List[Fraction]:
    """The ideal times of the edges the enable logic gates."""
    which = cell.attrs.get("enable_edge", "leading")
    if which not in ("leading", "trailing"):
        raise ValueError(
            f"{cell.name!r}: enable_edge must be 'leading' or 'trailing'"
        )
    edges: List[Fraction] = []
    for instance in model.instances[cell.name]:
        edge = (
            instance.assertion_edge
            if which == "leading" and instance.assertion_edge is not None
            else instance.closure_edge
        )
        if edge is not None:
            edges.append(edge)
    return edges


def _next_edge_constraint(
    assertion: Fraction, gated_edges: List[Fraction], period: Fraction
) -> Fraction:
    """Time from the assertion to the very next gated edge (in (0, T])."""
    best = period
    for edge in gated_edges:
        delta = (edge - assertion) % period
        if delta == 0:
            delta = period
        best = min(best, delta)
    return best


def _find_terminal(model: AnalysisModel, full_name: str) -> Terminal:
    cell_name, __, pin = full_name.partition("/")
    return model.network.cell(cell_name).terminal(pin)


def _max_path_delay(
    model: AnalysisModel, source: Terminal, target: Terminal
) -> Optional[float]:
    """Worst combinational delay from a source output to a control pin.

    Memoised backward walk over the (small) enable cone; returns ``None``
    when no structural path exists.
    """
    source_net = source.net
    target_net = target.net
    if source_net is None or target_net is None:
        return None
    memo: Dict[str, Optional[float]] = {}
    missing = object()

    def longest_to(net_name: str) -> Optional[float]:
        if net_name == source_net.name:
            return 0.0
        cached = memo.get(net_name, missing)
        if cached is not missing:
            return cached
        memo[net_name] = None  # cycle guard (combinational logic is acyclic)
        best: Optional[float] = None
        net = model.network.net(net_name)
        for driver in net.drivers:
            cell = driver.cell
            if not cell.is_combinational:
                continue
            for in_pin, out_pin in model.delays.arcs_of(cell):
                if out_pin != driver.pin:
                    continue
                in_net = cell.terminal(in_pin).net
                if in_net is None:
                    continue
                upstream = longest_to(in_net.name)
                if upstream is None:
                    continue
                arc = model.delays.arc_delay(cell, in_pin, out_pin).worst
                candidate = upstream + arc
                if best is None or candidate > best:
                    best = candidate
        memo[net_name] = best
        return best

    return longest_to(target_net.name)
