"""Cluster extraction (paper, Section 7).

"A cluster is a maximal connected network of combinational logic elements.
All inputs to a cluster are synchronising element outputs and all outputs
from a cluster are synchronising element inputs."

Connectivity is through nets (two gates sharing a net -- as driver or
sink -- are in the same cluster).  Nets that connect a synchroniser output
directly to a synchroniser input with no combinational logic in between
form degenerate single-net clusters carrying a zero-delay path.

Clusters also precompute, per source terminal, the set of capture
terminals reachable through the cluster: the "cluster input-output
combinations between which switching paths exist" that drive the
requirement arcs of the break-open pass selection.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.netlist.cell import Cell
from repro.netlist.kinds import CellRole, Unateness
from repro.netlist.network import Network
from repro.netlist.terminals import Terminal
from repro.rftime import RiseFall

#: Schema identifier of one cached per-cluster timing artifact.
ARTIFACT_SCHEMA = "repro.clusterart/1"


def cell_arc_pairs(cell: Cell) -> Tuple[Tuple[str, str], ...]:
    """The (input pin, output pin) connectivity of a combinational cell.

    Uses the spec's timing arcs when available; otherwise assumes every
    input reaches every output.
    """
    arcs = getattr(cell.spec, "arcs", None)
    if arcs:
        return tuple(arcs.keys())
    return tuple(
        (i, o) for i in cell.spec.inputs for o in cell.spec.outputs
    )


class Cluster:
    """One maximal combinational network with its boundary terminals."""

    def __init__(
        self,
        name: str,
        cells: Sequence[Cell],
        net_names: Iterable[str],
        sources: Sequence[Terminal],
        captures: Sequence[Terminal],
    ) -> None:
        self.name = name
        #: Combinational cells in topological order.
        self.cells: Tuple[Cell, ...] = tuple(cells)
        self.net_names: FrozenSet[str] = frozenset(net_names)
        #: Synchroniser outputs / primary inputs driving cluster nets.
        self.sources: Tuple[Terminal, ...] = tuple(sources)
        #: Synchroniser data inputs / primary outputs fed by cluster nets.
        self.captures: Tuple[Terminal, ...] = tuple(captures)
        self._reach: Dict[str, FrozenSet[str]] = {}

    @property
    def is_degenerate(self) -> bool:
        """True for direct synchroniser-to-synchroniser nets."""
        return not self.cells

    def reachable_captures(self, network: Network) -> Dict[str, FrozenSet[str]]:
        """Map each source terminal's full name to the full names of the
        capture terminals a switching path can reach."""
        if self._reach:
            return self._reach
        capture_by_net: Dict[str, List[str]] = {}
        for capture in self.captures:
            assert capture.net is not None
            capture_by_net.setdefault(capture.net.name, []).append(
                capture.full_name
            )
        for source in self.sources:
            assert source.net is not None
            reached_nets = self._nets_reachable_from(network, source.net.name)
            captures = frozenset(
                name
                for net_name in reached_nets
                for name in capture_by_net.get(net_name, ())
            )
            self._reach[source.full_name] = captures
        return self._reach

    def seed_reachability(
        self, reach: Mapping[str, Iterable[str]]
    ) -> None:
        """Install a precomputed source-to-capture reachability map.

        Used by the cluster-granular result cache: a cached
        ``repro.clusterart/1`` artifact carries the exact map the BFS in
        :meth:`reachable_captures` would compute, so a warm analysis can
        skip the per-source net traversal for clean clusters.  The map
        must come from an artifact whose :func:`~repro.service.digest.cluster_digest`
        matches this cluster -- the cache layer guarantees that.
        """
        self._reach = {
            source: frozenset(captures)
            for source, captures in reach.items()
        }

    def _nets_reachable_from(
        self, network: Network, start_net: str
    ) -> FrozenSet[str]:
        reached = {start_net}
        frontier = [start_net]
        while frontier:
            net = network.net(frontier.pop())
            for sink in net.sinks:
                cell = sink.cell
                if not cell.is_combinational:
                    continue
                for in_pin, out_pin in cell_arc_pairs(cell):
                    if in_pin != sink.pin:
                        continue
                    out_net = cell.terminal(out_pin).net
                    if out_net is not None and out_net.name not in reached:
                        reached.add(out_net.name)
                        frontier.append(out_net.name)
        return frozenset(reached)

    def __repr__(self) -> str:
        return (
            f"Cluster({self.name!r}, cells={len(self.cells)}, "
            f"sources={len(self.sources)}, captures={len(self.captures)})"
        )


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def find(self, key: str) -> str:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self.find(parent)
        self._parent[key] = root
        return root

    def union(self, a: str, b: str) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


def _is_launch_terminal(terminal: Terminal) -> bool:
    cell = terminal.cell
    return (
        cell.is_synchroniser and terminal.is_driver
    ) or cell.role is CellRole.PRIMARY_INPUT


def _is_capture_terminal(terminal: Terminal) -> bool:
    cell = terminal.cell
    if cell.is_synchroniser:
        return terminal is cell.data_input
    return cell.role is CellRole.PRIMARY_OUTPUT


def extract_clusters(network: Network) -> Tuple[Cluster, ...]:
    """Partition the combinational logic of ``network`` into clusters."""
    uf = _UnionFind()
    # Union each combinational cell with every net it touches.
    for cell in network.combinational_cells:
        cell_key = f"c:{cell.name}"
        for terminal in cell.terminals():
            if terminal.net is not None:
                uf.union(cell_key, f"n:{terminal.net.name}")

    # Group combinational cells and their nets by component root.
    topo = network.comb_topological_cells()
    cells_by_root: Dict[str, List[Cell]] = {}
    for cell in topo:
        cells_by_root.setdefault(uf.find(f"c:{cell.name}"), []).append(cell)

    nets_by_root: Dict[str, List[str]] = {}
    degenerate_nets: List[str] = []
    for net in network.nets:
        key = f"n:{net.name}"
        root = uf.find(key)
        if root != key or root in cells_by_root:
            nets_by_root.setdefault(root, []).append(net.name)
        else:
            # Net touching no combinational cell: a cluster of its own if
            # it links a launch terminal to a capture terminal.
            has_launch = any(_is_launch_terminal(t) for t in net.drivers)
            has_capture = any(_is_capture_terminal(t) for t in net.sinks)
            if has_launch and has_capture:
                degenerate_nets.append(net.name)

    clusters: List[Cluster] = []
    for index, (root, cells) in enumerate(sorted(cells_by_root.items())):
        net_names = sorted(nets_by_root.get(root, ()))
        sources, captures = _boundary_terminals(network, net_names)
        clusters.append(
            Cluster(f"cluster_{index}", cells, net_names, sources, captures)
        )
    for net_name in sorted(degenerate_nets):
        sources, captures = _boundary_terminals(network, [net_name])
        clusters.append(
            Cluster(f"cluster_net_{net_name}", (), [net_name], sources, captures)
        )
    return tuple(clusters)


def _sweep_path_delays(
    cluster: Cluster, delays, start_net: str, maximum: bool
) -> Dict[str, RiseFall]:
    """Propagate path delay from ``start_net`` through the cluster.

    ``maximum=True`` mirrors the slack engine's Equation-1 forward sweep
    (max propagation with :meth:`DelayMap.arc_delay`); ``maximum=False``
    is the dual shortest-path sweep with :meth:`DelayMap.arc_delay_min`.
    Unateness swaps rise/fall exactly as in
    :meth:`repro.core.slack.SlackEngine._forward`.
    """
    arrival: Dict[str, RiseFall] = {start_net: RiseFall.both(0.0)}
    for cell in cluster.cells:
        for in_pin, out_pin in delays.arcs_of(cell):
            in_net = cell.terminal(in_pin).net
            out_net = cell.terminal(out_pin).net
            if in_net is None or out_net is None:
                continue
            at_input = arrival.get(in_net.name)
            if at_input is None:
                continue
            delay = (
                delays.arc_delay(cell, in_pin, out_pin)
                if maximum
                else delays.arc_delay_min(cell, in_pin, out_pin)
            )
            sense = delays.arc_unateness(cell, in_pin, out_pin)
            if sense is Unateness.POSITIVE:
                pair = RiseFall(
                    at_input.rise + delay.rise, at_input.fall + delay.fall
                )
            elif sense is Unateness.NEGATIVE:
                pair = RiseFall(
                    at_input.fall + delay.rise, at_input.rise + delay.fall
                )
            else:  # non-unate: the binding input transition drives both
                pick = max if maximum else min
                bound = pick(at_input.rise, at_input.fall)
                pair = RiseFall(bound + delay.rise, bound + delay.fall)
            existing = arrival.get(out_net.name)
            if existing is None:
                arrival[out_net.name] = pair
            elif maximum:
                arrival[out_net.name] = existing.max_with(pair)
            else:
                arrival[out_net.name] = existing.min_with(pair)
    return arrival


def cluster_timing_artifact(
    network: Network, cluster: Cluster, delays
) -> Dict[str, object]:
    """One cluster's cacheable timing artifact (``repro.clusterart/1``).

    Per the Li et al. extraction contract, the artifact captures the
    cluster's port-to-port timing view without any window state:

    * ``reach`` -- the exact source-to-capture reachability map the
      break-open pass selection needs (:meth:`Cluster.reachable_captures`),
      reusable via :meth:`Cluster.seed_reachability`;
    * ``dmax_p`` / ``dmin_p`` -- longest / shortest combinational path
      delay from each source terminal to each reachable capture
      terminal (the paper's per-path ``Dmax_p`` / ``Dmin_p`` symbols);
    * ``worst_arcs`` -- for each capture terminal, the source whose
      ``dmax_p`` binds it (the critical through-cluster arc).

    The numbers are derived views for reporting/invalidation checks;
    correctness of warm runs rests on ``reach`` being byte-identical to
    what a cold BFS computes, which it is by construction (it *is* the
    cold BFS output).
    """
    reach = cluster.reachable_captures(network)
    capture_by_net: Dict[str, List[str]] = {}
    for capture in cluster.captures:
        if capture.net is not None:
            capture_by_net.setdefault(capture.net.name, []).append(
                capture.full_name
            )
    dmax_p: Dict[str, Dict[str, float]] = {}
    dmin_p: Dict[str, Dict[str, float]] = {}
    worst_arcs: Dict[str, Dict[str, object]] = {}
    for source in sorted(cluster.sources, key=lambda t: t.full_name):
        if source.net is None:
            continue
        reached = reach.get(source.full_name, frozenset())
        max_arrival = _sweep_path_delays(
            cluster, delays, source.net.name, maximum=True
        )
        min_arrival = _sweep_path_delays(
            cluster, delays, source.net.name, maximum=False
        )
        max_row: Dict[str, float] = {}
        min_row: Dict[str, float] = {}
        for net_name, names in capture_by_net.items():
            at_max = max_arrival.get(net_name)
            at_min = min_arrival.get(net_name)
            if at_max is None or at_min is None:
                continue
            dmax = max(at_max.rise, at_max.fall)
            dmin = min(at_min.rise, at_min.fall)
            for capture_name in names:
                if capture_name not in reached:
                    continue
                max_row[capture_name] = dmax
                min_row[capture_name] = dmin
                binding = worst_arcs.get(capture_name)
                if binding is None or dmax > binding["dmax"]:
                    worst_arcs[capture_name] = {
                        "source": source.full_name,
                        "dmax": dmax,
                        "dmin": dmin,
                    }
        dmax_p[source.full_name] = max_row
        dmin_p[source.full_name] = min_row
    return {
        "schema": ARTIFACT_SCHEMA,
        "cluster": cluster.name,
        "cells": len(cluster.cells),
        "reach": {
            source: sorted(captures)
            for source, captures in reach.items()
        },
        "dmax_p": dmax_p,
        "dmin_p": dmin_p,
        "worst_arcs": worst_arcs,
    }


def _boundary_terminals(
    network: Network, net_names: Sequence[str]
) -> Tuple[List[Terminal], List[Terminal]]:
    sources: List[Terminal] = []
    captures: List[Terminal] = []
    for net_name in net_names:
        net = network.net(net_name)
        for driver in net.drivers:
            if _is_launch_terminal(driver):
                sources.append(driver)
        for sink in net.sinks:
            if _is_capture_terminal(sink):
                captures.append(sink)
    return sources, captures
