"""Cluster extraction (paper, Section 7).

"A cluster is a maximal connected network of combinational logic elements.
All inputs to a cluster are synchronising element outputs and all outputs
from a cluster are synchronising element inputs."

Connectivity is through nets (two gates sharing a net -- as driver or
sink -- are in the same cluster).  Nets that connect a synchroniser output
directly to a synchroniser input with no combinational logic in between
form degenerate single-net clusters carrying a zero-delay path.

Clusters also precompute, per source terminal, the set of capture
terminals reachable through the cluster: the "cluster input-output
combinations between which switching paths exist" that drive the
requirement arcs of the break-open pass selection.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.netlist.cell import Cell
from repro.netlist.kinds import CellRole
from repro.netlist.network import Network
from repro.netlist.terminals import Terminal


def cell_arc_pairs(cell: Cell) -> Tuple[Tuple[str, str], ...]:
    """The (input pin, output pin) connectivity of a combinational cell.

    Uses the spec's timing arcs when available; otherwise assumes every
    input reaches every output.
    """
    arcs = getattr(cell.spec, "arcs", None)
    if arcs:
        return tuple(arcs.keys())
    return tuple(
        (i, o) for i in cell.spec.inputs for o in cell.spec.outputs
    )


class Cluster:
    """One maximal combinational network with its boundary terminals."""

    def __init__(
        self,
        name: str,
        cells: Sequence[Cell],
        net_names: Iterable[str],
        sources: Sequence[Terminal],
        captures: Sequence[Terminal],
    ) -> None:
        self.name = name
        #: Combinational cells in topological order.
        self.cells: Tuple[Cell, ...] = tuple(cells)
        self.net_names: FrozenSet[str] = frozenset(net_names)
        #: Synchroniser outputs / primary inputs driving cluster nets.
        self.sources: Tuple[Terminal, ...] = tuple(sources)
        #: Synchroniser data inputs / primary outputs fed by cluster nets.
        self.captures: Tuple[Terminal, ...] = tuple(captures)
        self._reach: Dict[str, FrozenSet[str]] = {}

    @property
    def is_degenerate(self) -> bool:
        """True for direct synchroniser-to-synchroniser nets."""
        return not self.cells

    def reachable_captures(self, network: Network) -> Dict[str, FrozenSet[str]]:
        """Map each source terminal's full name to the full names of the
        capture terminals a switching path can reach."""
        if self._reach:
            return self._reach
        capture_by_net: Dict[str, List[str]] = {}
        for capture in self.captures:
            assert capture.net is not None
            capture_by_net.setdefault(capture.net.name, []).append(
                capture.full_name
            )
        for source in self.sources:
            assert source.net is not None
            reached_nets = self._nets_reachable_from(network, source.net.name)
            captures = frozenset(
                name
                for net_name in reached_nets
                for name in capture_by_net.get(net_name, ())
            )
            self._reach[source.full_name] = captures
        return self._reach

    def _nets_reachable_from(
        self, network: Network, start_net: str
    ) -> FrozenSet[str]:
        reached = {start_net}
        frontier = [start_net]
        while frontier:
            net = network.net(frontier.pop())
            for sink in net.sinks:
                cell = sink.cell
                if not cell.is_combinational:
                    continue
                for in_pin, out_pin in cell_arc_pairs(cell):
                    if in_pin != sink.pin:
                        continue
                    out_net = cell.terminal(out_pin).net
                    if out_net is not None and out_net.name not in reached:
                        reached.add(out_net.name)
                        frontier.append(out_net.name)
        return frozenset(reached)

    def __repr__(self) -> str:
        return (
            f"Cluster({self.name!r}, cells={len(self.cells)}, "
            f"sources={len(self.sources)}, captures={len(self.captures)})"
        )


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def find(self, key: str) -> str:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self.find(parent)
        self._parent[key] = root
        return root

    def union(self, a: str, b: str) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


def _is_launch_terminal(terminal: Terminal) -> bool:
    cell = terminal.cell
    return (
        cell.is_synchroniser and terminal.is_driver
    ) or cell.role is CellRole.PRIMARY_INPUT


def _is_capture_terminal(terminal: Terminal) -> bool:
    cell = terminal.cell
    if cell.is_synchroniser:
        return terminal is cell.data_input
    return cell.role is CellRole.PRIMARY_OUTPUT


def extract_clusters(network: Network) -> Tuple[Cluster, ...]:
    """Partition the combinational logic of ``network`` into clusters."""
    uf = _UnionFind()
    # Union each combinational cell with every net it touches.
    for cell in network.combinational_cells:
        cell_key = f"c:{cell.name}"
        for terminal in cell.terminals():
            if terminal.net is not None:
                uf.union(cell_key, f"n:{terminal.net.name}")

    # Group combinational cells and their nets by component root.
    topo = network.comb_topological_cells()
    cells_by_root: Dict[str, List[Cell]] = {}
    for cell in topo:
        cells_by_root.setdefault(uf.find(f"c:{cell.name}"), []).append(cell)

    nets_by_root: Dict[str, List[str]] = {}
    degenerate_nets: List[str] = []
    for net in network.nets:
        key = f"n:{net.name}"
        root = uf.find(key)
        if root != key or root in cells_by_root:
            nets_by_root.setdefault(root, []).append(net.name)
        else:
            # Net touching no combinational cell: a cluster of its own if
            # it links a launch terminal to a capture terminal.
            has_launch = any(_is_launch_terminal(t) for t in net.drivers)
            has_capture = any(_is_capture_terminal(t) for t in net.sinks)
            if has_launch and has_capture:
                degenerate_nets.append(net.name)

    clusters: List[Cluster] = []
    for index, (root, cells) in enumerate(sorted(cells_by_root.items())):
        net_names = sorted(nets_by_root.get(root, ()))
        sources, captures = _boundary_terminals(network, net_names)
        clusters.append(
            Cluster(f"cluster_{index}", cells, net_names, sources, captures)
        )
    for net_name in sorted(degenerate_nets):
        sources, captures = _boundary_terminals(network, [net_name])
        clusters.append(
            Cluster(f"cluster_net_{net_name}", (), [net_name], sources, captures)
        )
    return tuple(clusters)


def _boundary_terminals(
    network: Network, net_names: Sequence[str]
) -> Tuple[List[Terminal], List[Terminal]]:
    sources: List[Terminal] = []
    captures: List[Terminal] = []
    for net_name in net_names:
        net = network.net(net_name)
        for driver in net.drivers:
            if _is_launch_terminal(driver):
                sources.append(driver)
        for sink in net.sinks:
            if _is_capture_terminal(sink):
                captures.append(sink)
    return sources, captures
