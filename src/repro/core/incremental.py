"""Incremental re-analysis inside the synthesis loop.

Algorithm 3 re-runs timing analysis after every module change.  Because
Algorithm 1 may start from *any* set of offsets satisfying the
synchronising element constraints ("Initialise: Select any set of
offsets..."), re-analysis can warm-start from the previous fixed point:
after a small delay change, the old offsets are already close to a new
fixed point, so the complete-transfer iterations converge in fewer
cycles.

Pre-processing is also reused: clusters, requirement arcs and break-open
plans depend only on the network structure and the clocks, not on the
delays.  The one exception is a delay change on a cell inside a
*control* cone: that shifts ``O_ac`` offsets, which are baked into the
instances, so such changes trigger a full model rebuild (tracked in
:attr:`IncrementalAnalyzer.rebuilds`).
"""

from __future__ import annotations

from typing import Optional, Set

from repro import obs
from repro.clocks.schedule import ClockSchedule
from repro.core.algorithm1 import Algorithm1Result, run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay.estimator import DelayMap, estimate_delays
from repro.netlist.network import Network


class IncrementalAnalyzer:
    """Keeps the analysis model alive across delay changes."""

    def __init__(
        self,
        network: Network,
        schedule: ClockSchedule,
        delays: Optional[DelayMap] = None,
    ) -> None:
        self.network = network
        self.schedule = schedule
        self._delays = delays if delays is not None else estimate_delays(network)
        #: Full model rebuilds performed (control-cone changes).
        self.rebuilds = 0
        #: Cheap delay swaps performed (data-path changes).
        self.swaps = 0
        self._build()

    def _build(self) -> None:
        self.model = AnalysisModel(self.network, self.schedule, self._delays)
        self.engine = SlackEngine(self.model)
        self._control_cells: Set[str] = set()
        for trace in self.model.validation.control_traces.values():
            self._control_cells.update(trace.comb_cells)
        self._warm = False

    # ------------------------------------------------------------------
    # delay changes
    # ------------------------------------------------------------------
    @property
    def delays(self) -> DelayMap:
        return self._delays

    def scale_cell(self, cell_name: str, factor: float) -> None:
        """Scale one cell's delays (the re-synthesis loop's operation)."""
        self.network.cell(cell_name)
        self._delays = self._delays.with_scaled_cell(cell_name, factor)
        if cell_name in self._control_cells:
            # Control-path delays shape O_ac; rebuild the instances.
            self.rebuilds += 1
            obs.counter("incremental.rebuilds")
            with obs.span("incremental.rebuild", category="incremental"):
                self._build()
        else:
            # Positions, plans and instances are all unaffected: swap the
            # delay map under the existing model.
            self.swaps += 1
            obs.counter("incremental.swaps")
            self.model.delays = self._delays

    def set_delays(self, delays: DelayMap) -> None:
        """Replace the whole delay map (conservatively rebuilds)."""
        self._delays = delays
        self.rebuilds += 1
        obs.counter("incremental.rebuilds")
        with obs.span("incremental.rebuild", category="incremental"):
            self._build()

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def analyze(self, warm: bool = True) -> Algorithm1Result:
        """Run Algorithm 1; ``warm=True`` starts from the previous fixed
        point's offsets instead of the initial window positions."""
        reset = not (warm and self._warm)
        # Warm-start accounting: a *hit* reuses the previous fixed point,
        # a *cold start* resets the windows (first run or warm=False).
        obs.counter(
            "incremental.cold_starts" if reset else "incremental.warm_hits"
        )
        with obs.span(
            "incremental.analyze", category="incremental", warm=not reset
        ):
            result = run_algorithm1(self.model, self.engine, reset=reset)
        self._warm = True
        return result
