"""Incremental re-analysis inside the synthesis loop.

Algorithm 3 re-runs timing analysis after every module change.  Because
Algorithm 1 may start from *any* set of offsets satisfying the
synchronising element constraints ("Initialise: Select any set of
offsets..."), a *repeat* query can warm-start from the previous fixed
point and converge immediately.  After a **delay change** the cached
fixed point is discarded: latch networks can admit several
self-consistent fixed points, and iterating from offsets that belonged
to the old delay map may land on a non-canonical one, making the answer
depend on query history.  Determinism wins -- the next run re-seeds the
windows, while the expensive pre-processing is still reused.

Pre-processing is also reused: clusters, requirement arcs and break-open
plans depend only on the network structure and the clocks, not on the
delays.  The one exception is a delay change on a cell inside a
*control* cone: that shifts ``O_ac`` offsets, which are baked into the
instances, so such changes trigger a full model rebuild (tracked in
:attr:`IncrementalAnalyzer.rebuilds`).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set

from repro import obs
from repro.clocks.schedule import ClockSchedule
from repro.core.algorithm1 import Algorithm1Result, run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay.estimator import DelayMap, estimate_delays
from repro.netlist.network import Network


class IncrementalAnalyzer:
    """Keeps the analysis model alive across delay changes."""

    def __init__(
        self,
        network: Network,
        schedule: ClockSchedule,
        delays: Optional[DelayMap] = None,
    ) -> None:
        self.network = network
        self.schedule = schedule
        self._delays = delays if delays is not None else estimate_delays(network)
        #: Full model rebuilds performed (control-cone changes).
        self.rebuilds = 0
        #: Cheap delay swaps performed (data-path changes).
        self.swaps = 0
        #: Cluster touched by the most recent :meth:`scale_cell`
        #: (``None`` before any mutation, or when the touched cell is
        #: not combinational -- e.g. a synchroniser, whose timing sits
        #: on every adjacent cluster's boundary).  Survives the model
        #: rebuild a control-cone edit triggers.
        self.last_touched_cluster: Optional[str] = None
        #: Mutation epoch: bumped by every delay change.  Snapshot
        #: layers (the daemon's copy-on-write read path) compare epochs
        #: to decide whether a cached result still describes this
        #: engine -- defense in depth under their own epoch tracking.
        self.epoch = 0
        self._build()

    def _build(self) -> None:
        started = time.perf_counter()
        started_cpu = time.process_time()
        self.model = AnalysisModel(self.network, self.schedule, self._delays)
        self.engine = SlackEngine(self.model)
        #: Wall/CPU seconds of the most recent model build (the
        #: pre-processing cost the warm path amortises away).
        self.preprocess_seconds = time.perf_counter() - started
        self.preprocess_cpu_seconds = time.process_time() - started_cpu
        self._control_cells: Set[str] = set()
        for trace in self.model.validation.control_traces.values():
            self._control_cells.update(trace.comb_cells)
        self._warm = False
        # Lazy cell -> cluster ownership map; reset on rebuild (the
        # rebuilt model re-extracts the partition).
        self._cell_to_cluster: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------
    # delay changes
    # ------------------------------------------------------------------
    @property
    def delays(self) -> DelayMap:
        return self._delays

    def cluster_of(self, cell_name: str) -> Optional[str]:
        """The cluster owning a combinational cell, or ``None``.

        Built lazily from :attr:`model.clusters` (the same partition
        the analysis uses), so the cache layer's invalidation map and
        the analysis agree on ownership by construction.
        """
        if self._cell_to_cluster is None:
            self._cell_to_cluster = {
                cell.name: cluster.name
                for cluster in self.model.clusters
                for cell in cluster.cells
            }
        return self._cell_to_cluster.get(cell_name)

    def scale_cell(self, cell_name: str, factor: float) -> None:
        """Scale one cell's delays (the re-synthesis loop's operation)."""
        self.network.cell(cell_name)
        # Record which cluster the edit lands in *before* mutating, so
        # the service layer can drop exactly that cluster's cache
        # sub-entry (see repro.service.cluster_cache).
        self.last_touched_cluster = self.cluster_of(cell_name)
        self.epoch += 1
        self._delays = self._delays.with_scaled_cell(cell_name, factor)
        if cell_name in self._control_cells:
            # Control-path delays shape O_ac; rebuild the instances.
            self.rebuilds += 1
            obs.counter("incremental.rebuilds")
            with obs.span("incremental.rebuild", category="incremental"):
                self._build()
        else:
            # Positions, plans and instances are all unaffected: swap the
            # delay map under the existing model.
            self.swaps += 1
            obs.counter("incremental.swaps")
            self.model.delays = self._delays
            # The previous fixed point belongs to the *old* delay map.
            # Algorithm 1 accepts any valid initial offsets, but latch
            # networks can have several self-consistent fixed points and
            # iterating from stale offsets may land on a non-canonical
            # one -- the answer would then depend on query history.
            # Re-seed the next run so re-analysis is byte-identical to a
            # from-scratch run; the expensive preprocessing (positions,
            # plans, instances) is still reused.
            self._warm = False

    def set_delays(self, delays: DelayMap) -> None:
        """Replace the whole delay map (conservatively rebuilds)."""
        self.epoch += 1
        self._delays = delays
        self.rebuilds += 1
        obs.counter("incremental.rebuilds")
        with obs.span("incremental.rebuild", category="incremental"):
            self._build()

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def analyze(self, warm: bool = True) -> Algorithm1Result:
        """Run Algorithm 1; ``warm=True`` starts from the previous fixed
        point's offsets instead of the initial window positions."""
        reset = not (warm and self._warm)
        # Warm-start accounting: a *hit* reuses the previous fixed point,
        # a *cold start* resets the windows (first run or warm=False).
        obs.counter(
            "incremental.cold_starts" if reset else "incremental.warm_hits"
        )
        with obs.span(
            "incremental.analyze", category="incremental", warm=not reset
        ):
            result = run_algorithm1(self.model, self.engine, reset=reset)
        self._warm = True
        return result

    def timing_result(
        self,
        warm: bool = True,
        slow_path_limit: Optional[int] = 50,
        tolerance: float = 0.0,
    ):
        """Run :meth:`analyze` and wrap the outcome as a full
        :class:`repro.core.analyzer.TimingResult`.

        The wrapper carries slow paths, model stats and this analyzer as
        the back-reference, so ``forensics()`` / ``manifest()`` /
        ``payload()`` work exactly as on a one-shot
        :class:`~repro.core.analyzer.Hummingbird` result.  This is the
        primitive the service daemon uses to answer mutate-and-requery
        traffic without rebuilding the model.
        """
        from repro.core.analyzer import TimingResult
        from repro.core.report import extract_slow_paths

        started = time.perf_counter()
        started_cpu = time.process_time()
        outcome = self.analyze(warm=warm)
        analysis_seconds = time.perf_counter() - started
        analysis_cpu_seconds = time.process_time() - started_cpu
        slow_paths = (
            []
            if outcome.intended
            else extract_slow_paths(
                self.model,
                self.engine,
                outcome.slacks.capture,
                tolerance=tolerance,
                limit=slow_path_limit,
            )
        )
        stats = self.model.stats()
        stats["algorithm1_iterations"] = outcome.iterations.total
        stats["algorithm1_forward_cycles"] = outcome.iterations.forward
        stats["algorithm1_backward_cycles"] = outcome.iterations.backward
        return TimingResult(
            algorithm1=outcome,
            slow_paths=slow_paths,
            preprocess_seconds=self.preprocess_seconds,
            analysis_seconds=analysis_seconds,
            stats=stats,
            cpu_seconds=self.preprocess_cpu_seconds + analysis_cpu_seconds,
            analyzer=self,
        )
