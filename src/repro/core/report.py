"""Slow-path extraction and human-readable timing reports.

The original Hummingbird could "flag all slow paths in the OCT data base"
for viewing in VEM.  Here slow paths are extracted as explicit objects
(launch instance, traversed arcs, capture instance, slack) by tracing the
critical arrival backwards through the cluster, and rendered as text.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.model import AnalysisModel, CapturePort
from repro.core.slack import SlackEngine
from repro.rftime import RiseFall

_TRACE_TOLERANCE = 1e-6


@dataclass(frozen=True)
class PathStep:
    """One traversed arc of a slow path."""

    cell_name: str
    in_pin: str
    out_pin: str
    net_name: str  # the net at the arc's output
    arrival: float


@dataclass(frozen=True)
class SlowPath:
    """A combinational path that is too slow (negative/zero node slack)."""

    cluster: str
    pass_index: int
    launch_instance: Optional[str]
    capture_instance: str
    capture_net: str
    slack: float
    arrival: float
    closure: float
    steps: Tuple[PathStep, ...]

    @property
    def violation(self) -> float:
        """How much too slow the path is (positive number)."""
        return max(0.0, -self.slack)

    def describe(self) -> str:
        cells = " -> ".join(step.cell_name for step in reversed(self.steps))
        origin = self.launch_instance or "<unresolved>"
        return (
            f"{origin} -> [{cells or 'direct'}] -> {self.capture_instance}"
            f"  slack={self.slack:.3f}"
        )


def extract_slow_paths(
    model: AnalysisModel,
    engine: SlackEngine,
    capture_slacks: Dict[str, float],
    tolerance: float = 0.0,
    limit: Optional[int] = 50,
) -> List[SlowPath]:
    """Trace one critical path per violated capture port.

    ``capture_slacks`` are Algorithm 1's final capture-side node slacks.
    Paths are returned most-violating first.
    """
    violations: List[Tuple[float, CapturePort]] = []
    for cluster in model.clusters:
        for port in model.capture_ports[cluster.name]:
            slack = capture_slacks.get(port.instance.name, math.inf)
            if slack <= tolerance:
                violations.append((slack, port))
    violations.sort(key=lambda item: item[0])
    if limit is not None:
        violations = violations[:limit]

    paths = []
    for slack, port in violations:
        path = trace_endpoint_path(model, engine, port, slack)
        if path is not None:
            paths.append(path)
    return paths


def trace_endpoint_path(
    model: AnalysisModel,
    engine: SlackEngine,
    port: CapturePort,
    slack: float,
) -> Optional[SlowPath]:
    """Trace the critical path ending at one capture port.

    Public provenance hook: :func:`extract_slow_paths` uses it for
    violated endpoints, and :class:`repro.report.PathForensics` uses it
    to explain *any* endpoint (passing the endpoint's current node
    slack), not just the slow ones.
    """
    for cluster in model.clusters:
        if cluster.name == port.cluster_name:
            return _trace_path(model, engine, cluster, port, slack)
    return None


def _trace_path(
    model: AnalysisModel,
    engine: SlackEngine,
    cluster,
    port: CapturePort,
    slack: float,
) -> Optional[SlowPath]:
    detail = engine.cluster_detail(cluster)
    ready = detail.passes[port.pass_index].ready
    at_capture = ready.get(port.net_name)
    if at_capture is None or not at_capture.is_finite():
        return None
    closure = _closure_time(engine, cluster.name, port)

    # Trace the latest-arriving transition backwards.
    transition = "rise" if at_capture.rise >= at_capture.fall else "fall"
    net_name = port.net_name
    steps: List[PathStep] = []
    guard = len(cluster.cells) + 2
    cells_by_out_net = _cells_by_output_net(model, cluster)
    while guard > 0:
        guard -= 1
        hop = _find_driving_arc(
            model, cells_by_out_net, ready, net_name, transition
        )
        if hop is None:
            break
        cell_name, in_pin, out_pin, in_net, in_transition = hop
        steps.append(
            PathStep(
                cell_name=cell_name,
                in_pin=in_pin,
                out_pin=out_pin,
                net_name=net_name,
                arrival=getattr(ready[net_name], transition),
            )
        )
        net_name = in_net
        transition = in_transition

    launch = _launch_at(model, engine, cluster, port.pass_index, net_name, ready)
    return SlowPath(
        cluster=cluster.name,
        pass_index=port.pass_index,
        launch_instance=launch,
        capture_instance=port.instance.name,
        capture_net=port.net_name,
        slack=slack,
        arrival=at_capture.worst,
        closure=closure,
        steps=tuple(steps),
    )


def _closure_time(engine: SlackEngine, cluster_name: str, port) -> float:
    return engine._closure_time(cluster_name, port)


def _cells_by_output_net(model: AnalysisModel, cluster) -> Dict[str, List]:
    by_net: Dict[str, List] = {}
    for cell in cluster.cells:
        for in_pin, out_pin in model.delays.arcs_of(cell):
            out_net = cell.terminal(out_pin).net
            if out_net is not None:
                by_net.setdefault(out_net.name, []).append(
                    (cell, in_pin, out_pin)
                )
    return by_net


def _find_driving_arc(
    model: AnalysisModel,
    cells_by_out_net: Dict[str, List],
    ready: Dict[str, RiseFall],
    net_name: str,
    transition: str,
):
    """Find the arc that produced ``ready[net_name].<transition>``."""
    target = getattr(ready.get(net_name, RiseFall.never()), transition)
    if not math.isfinite(target):
        return None
    for cell, in_pin, out_pin in cells_by_out_net.get(net_name, ()):
        in_net = cell.terminal(in_pin).net
        if in_net is None:
            continue
        at_input = ready.get(in_net.name)
        if at_input is None:
            continue
        sense = model.delays.arc_unateness(cell, in_pin, out_pin)
        value = at_input.through_arc(sense).plus(
            model.delays.arc_delay(cell, in_pin, out_pin)
        )
        if abs(getattr(value, transition) - target) > _TRACE_TOLERANCE:
            continue
        in_transition = _input_transition(sense, transition, at_input)
        return cell.name, in_pin, out_pin, in_net.name, in_transition
    return None


def _input_transition(sense, transition: str, at_input: RiseFall) -> str:
    from repro.netlist.kinds import Unateness

    if sense is Unateness.POSITIVE:
        return transition
    if sense is Unateness.NEGATIVE:
        return "fall" if transition == "rise" else "rise"
    return "rise" if at_input.rise >= at_input.fall else "fall"


def _launch_at(
    model: AnalysisModel,
    engine: SlackEngine,
    cluster,
    pass_index: int,
    net_name: str,
    ready: Dict[str, RiseFall],
) -> Optional[str]:
    """Which launch port asserts ``net_name`` at its ready time."""
    target = ready.get(net_name)
    if target is None:
        return None
    for port in model.launch_ports[cluster.name]:
        if port.net_name != net_name:
            continue
        t = engine._assertion_time(cluster.name, pass_index, port)
        if abs(t - target.worst) <= _TRACE_TOLERANCE:
            return port.instance.name
    # Fall back to any launch port on the net (conservative arrival from a
    # different instance of the same element).
    for port in model.launch_ports[cluster.name]:
        if port.net_name == net_name:
            return port.instance.name
    return None


def format_slow_paths(paths: List[SlowPath], limit: int = 20) -> str:
    """Multi-line report of the worst slow paths."""
    if not paths:
        return "No slow paths: the system behaves as intended."
    lines = [f"{len(paths)} slow path(s); worst first:"]
    for path in paths[:limit]:
        lines.append(f"  {path.describe()}")
        lines.append(
            f"    cluster={path.cluster} pass={path.pass_index} "
            f"arrival={path.arrival:.3f} closure={path.closure:.3f} "
            f"violation={path.violation:.3f}"
        )
    if len(paths) > limit:
        lines.append(f"  ... and {len(paths) - limit} more")
    return "\n".join(lines)
