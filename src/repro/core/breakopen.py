"""Breaking open the clock period (paper, Section 7).

Block-method cluster analysis needs all assertion and closure times on one
linear axis, but the ideal times are clock edges on a *cyclic* overall
period.  "Breaking open" the cycle at a point ``b`` maps an edge time
``t`` to the axis position ``(t - b) mod T``.  A (source, capture) pair
with ideal path constraint ``D`` is *handled* by a break ``b`` iff the
capture's closure edge appears exactly ``D`` after the source's assertion
edge on the axis; algebraically::

    (b - c) mod T  <=  T - D        where D = ((c - a) mod T  or  T)

Every pair that switching paths connect contributes a *requirement arc*
(the paper's "extra arcs" in the clock-edge graph, Figure 4).  The minimum
number of analysis passes is the minimum set of break points such that
every requirement arc is handled by at least one of them -- found, as in
the paper, "by exhaustive search of the graph, starting with removal of
each single original arc, then all possible pairs, and so on".

Each cluster output's slack is then calculated during the pass "within
which its ideal closure time appears closest to the end", i.e. the chosen
break minimising ``(b - c) mod T`` -- which, as shown in DESIGN.md, is
guaranteed to handle every pair converging on that output.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro import obs


@dataclass(frozen=True)
class RequirementArc:
    """One "extra arc": assertion edge time -> closure edge time.

    ``assertion`` and ``closure`` are times within ``[0, T)``.  The ideal
    path constraint is ``(closure - assertion) mod T`` mapped to ``(0, T]``.
    """

    assertion: Fraction
    closure: Fraction

    def ideal_constraint(self, period: Fraction) -> Fraction:
        """``D_p`` of this pair: in ``(0, T]`` (``T`` for coincident edges,
        e.g. flip-flop to flip-flop on the same clock edge)."""
        delta = (self.closure - self.assertion) % period
        return delta if delta != 0 else period

    def handled_by(self, break_time: Fraction, period: Fraction) -> bool:
        """Whether breaking the period at ``break_time`` handles this pair."""
        d = self.ideal_constraint(period)
        return (break_time - self.closure) % period <= period - d


class PassSelectionError(ValueError):
    """No set of break points handles every requirement arc."""


@dataclass(frozen=True)
class BreakOpenPlan:
    """The analysis passes chosen for one cluster.

    ``breaks[i]`` is the axis origin of pass ``i``; captures are assigned
    to passes with :meth:`designated_pass`.
    """

    period: Fraction
    breaks: Tuple[Fraction, ...]

    @property
    def num_passes(self) -> int:
        return len(self.breaks)

    def position_assertion(self, time: Fraction, pass_index: int) -> Fraction:
        """Axis position of an assertion edge in pass ``pass_index``
        (range ``[0, T)``)."""
        return (time - self.breaks[pass_index]) % self.period

    def position_closure(self, time: Fraction, pass_index: int) -> Fraction:
        """Axis position of a closure edge (range ``(0, T]``: a closure
        coincident with the break point belongs to the *end* of the axis)."""
        position = (time - self.breaks[pass_index]) % self.period
        return position if position != 0 else self.period

    def designated_pass(self, closure_time: Fraction) -> int:
        """The pass in which a capture with this ideal closure time has its
        slack computed: its closure position is "closest to the end"."""
        return min(
            range(len(self.breaks)),
            key=lambda i: (self.breaks[i] - closure_time) % self.period,
        )

    def handles(self, arc: RequirementArc, pass_index: int) -> bool:
        return arc.handled_by(self.breaks[pass_index], self.period)


def minimum_breaks(
    period: Fraction,
    candidate_breaks: Sequence[Fraction],
    arcs: Iterable[RequirementArc],
    exhaustive_limit: int = 4,
) -> Tuple[Fraction, ...]:
    """Choose a minimum set of break points covering all requirement arcs.

    ``candidate_breaks`` are the distinct clock edge times (breaking the
    cycle anywhere between two consecutive edges is equivalent to breaking
    at the later edge).  Exhaustive search over subsets of growing size up
    to ``exhaustive_limit`` ("very seldom is it necessary to remove more
    than two arcs"); beyond that, a greedy set cover finishes the job.
    """
    rec = obs.active()
    candidates = sorted(set(candidate_breaks))
    if not candidates:
        raise ValueError("need at least one candidate break point")
    unique_arcs = sorted(set(arcs), key=lambda a: (a.assertion, a.closure))
    if rec is not None:
        rec.counter("breakopen.searches")
        rec.counter("breakopen.requirement_arcs", len(unique_arcs))
    if not unique_arcs:
        if rec is not None:
            rec.counter("breakopen.passes_selected", 1)
        return (candidates[0],)

    valid: Dict[Fraction, FrozenSet[int]] = {
        b: frozenset(
            i
            for i, arc in enumerate(unique_arcs)
            if arc.handled_by(b, period)
        )
        for b in candidates
    }
    everything = frozenset(range(len(unique_arcs)))
    uncoverable = everything - frozenset().union(*valid.values())
    if uncoverable:
        bad = unique_arcs[next(iter(uncoverable))]
        raise PassSelectionError(
            f"requirement arc {bad.assertion}->{bad.closure} is handled by "
            "no break point"
        )

    combos_tried = 0
    for size in range(1, min(exhaustive_limit, len(candidates)) + 1):
        for combo in itertools.combinations(candidates, size):
            combos_tried += 1
            covered = frozenset().union(*(valid[b] for b in combo))
            if covered == everything:
                if rec is not None:
                    rec.counter("breakopen.combos_tried", combos_tried)
                    rec.counter("breakopen.passes_selected", len(combo))
                return tuple(combo)

    chosen = _greedy_cover(candidates, valid, everything)
    if rec is not None:
        rec.counter("breakopen.combos_tried", combos_tried)
        rec.counter("breakopen.greedy_fallbacks")
        rec.counter("breakopen.passes_selected", len(chosen))
    return chosen


def _greedy_cover(
    candidates: Sequence[Fraction],
    valid: Dict[Fraction, FrozenSet[int]],
    everything: FrozenSet[int],
) -> Tuple[Fraction, ...]:
    chosen: List[Fraction] = []
    remaining = set(everything)
    while remaining:
        best = max(candidates, key=lambda b: len(valid[b] & remaining))
        gain = valid[best] & remaining
        if not gain:  # pragma: no cover - guarded by uncoverable check
            raise PassSelectionError("greedy cover stalled")
        chosen.append(best)
        remaining -= gain
    return tuple(sorted(chosen))


def plan_for_cluster(
    period: Fraction,
    candidate_breaks: Sequence[Fraction],
    arcs: Iterable[RequirementArc],
    exhaustive_limit: int = 4,
) -> BreakOpenPlan:
    """Convenience wrapper: minimum breaks wrapped in a plan."""
    breaks = minimum_breaks(period, candidate_breaks, arcs, exhaustive_limit)
    return BreakOpenPlan(period=period, breaks=breaks)


@dataclass(frozen=True)
class ClockEdgeGraph:
    """The directed clock-edge graph of Figure 4, for reporting.

    Nodes are the distinct edge times in chronological order; the original
    arcs form the period cycle; requirement arcs are the "extra arcs".
    Removing original arc ``times[i] -> times[i+1]`` corresponds to
    breaking the period at ``times[i+1]``.
    """

    period: Fraction
    times: Tuple[Fraction, ...]
    arcs: Tuple[RequirementArc, ...]

    def original_arcs(self) -> Tuple[Tuple[Fraction, Fraction], ...]:
        n = len(self.times)
        return tuple(
            (self.times[i], self.times[(i + 1) % n]) for i in range(n)
        )

    def break_for_removed_arc(
        self, arc: Tuple[Fraction, Fraction]
    ) -> Fraction:
        """The break time equivalent to removing an original arc."""
        if arc not in self.original_arcs():
            raise ValueError(f"{arc} is not an original arc")
        return arc[1]
