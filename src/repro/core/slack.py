"""Block-method slack evaluation (paper, Section 7, equations 1-2).

Per cluster and per analysis pass:

* cluster input assertion times become node *ready times* and are traced
  forward through the combinational components (equation 1),
* slack at each cluster output designated to the pass is the difference
  between its closure time and the ready time,
* slacks (equivalently *required times*) are traced backward through the
  components (equation 2).

The node slack of a terminal is the minimum over the passes in which it is
evaluated; outputs not designated to a pass take "a large number"
(:data:`math.inf`) for that pass.  Ready/required values are rise/fall
pairs propagated with arc unateness (the Bening et al. [7] refinement).

The block method deliberately does not discard false paths -- pessimistic
slacks are safe and fast, which is what an analysis-redesign loop needs
(Section 7's discussion).  The exact alternative is implemented in
:mod:`repro.baselines.path_enumeration` for comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.clusters import Cluster
from repro.core.model import AnalysisModel, CapturePort, LaunchPort
from repro.netlist.kinds import Unateness
from repro.rftime import RiseFall


@dataclass
class PortSlacks:
    """Scalar node slacks at the generic-instance boundary terminals.

    Keyed by instance name.  Instances whose terminal is unconstrained
    (e.g. an unloaded output) are present with ``+inf``.
    """

    capture: Dict[str, float] = field(default_factory=dict)
    launch: Dict[str, float] = field(default_factory=dict)

    def worst(self) -> float:
        values = list(self.capture.values()) + list(self.launch.values())
        return min(values, default=math.inf)

    def all_positive(self, tolerance: float = 0.0) -> bool:
        return self.worst() > tolerance


@dataclass
class PassDetail:
    """Ready/required times of one cluster analysis pass (one settling
    time per node)."""

    pass_index: int
    break_time: float
    ready: Dict[str, RiseFall]
    required: Dict[str, RiseFall]

    def slack_of(self, net_name: str) -> float:
        ready = self.ready.get(net_name)
        required = self.required.get(net_name)
        if ready is None or required is None:
            return math.inf
        pair = required.minus(ready)
        return pair.best


@dataclass
class ClusterDetail:
    """Full analysis record of one cluster (for reports / Algorithm 2)."""

    cluster_name: str
    passes: List[PassDetail]

    def net_slack(self, net_name: str) -> float:
        return min(
            (p.slack_of(net_name) for p in self.passes), default=math.inf
        )

    def settling_times(self, net_name: str) -> int:
        """How many distinct settling times the node has (finite ready
        values across passes) -- the quantity Section 7 minimises."""
        return sum(
            1
            for p in self.passes
            if p.ready.get(net_name, RiseFall.never()).is_finite()
        )


class SlackEngine:
    """Evaluates node slacks for the current offsets of a model.

    Construction precomputes, per cluster and pass, the axis positions of
    every boundary edge (pure clock arithmetic); repeated slack queries
    during Algorithm 1/2 iterations then only involve float work linear in
    the cluster sizes.
    """

    def __init__(self, model: AnalysisModel) -> None:
        self._model = model
        # (cluster, pass, instance) -> axis position of the assertion edge
        self._launch_pos: Dict[Tuple[str, int, str], float] = {}
        # (cluster, instance) -> axis position of the closure edge in the
        # capture's designated pass
        self._capture_pos: Dict[Tuple[str, str], float] = {}
        # Per cluster: flat arc tuples (cell, in_pin, out_pin, in_net,
        # out_net, sense code) in topological order, so the sweeps avoid
        # terminal lookups.  Sense codes: 0 positive, 1 negative, 2 other.
        self._cluster_arcs: Dict[str, Tuple[Tuple, ...]] = {}
        sense_codes = {
            Unateness.POSITIVE: 0,
            Unateness.NEGATIVE: 1,
            Unateness.NON_UNATE: 2,
        }
        for cluster in model.clusters:
            arcs = []
            for cell in cluster.cells:
                for in_pin, out_pin in model.delays.arcs_of(cell):
                    in_net = cell.terminal(in_pin).net
                    out_net = cell.terminal(out_pin).net
                    if in_net is None or out_net is None:
                        continue
                    arcs.append(
                        (
                            cell,
                            in_pin,
                            out_pin,
                            in_net.name,
                            out_net.name,
                            sense_codes[
                                model.delays.arc_unateness(
                                    cell, in_pin, out_pin
                                )
                            ],
                        )
                    )
            self._cluster_arcs[cluster.name] = tuple(arcs)
        for cluster in model.clusters:
            plan = model.plans[cluster.name]
            for port in model.launch_ports[cluster.name]:
                assert port.instance.assertion_edge is not None
                for pass_index in range(plan.num_passes):
                    self._launch_pos[
                        (cluster.name, pass_index, port.instance.name)
                    ] = float(
                        plan.position_assertion(
                            port.instance.assertion_edge, pass_index
                        )
                    )
            for port in model.capture_ports[cluster.name]:
                assert port.instance.closure_edge is not None
                self._capture_pos[(cluster.name, port.instance.name)] = float(
                    plan.position_closure(
                        port.instance.closure_edge, port.pass_index
                    )
                )

    # ------------------------------------------------------------------
    # fast path: boundary slacks only (the Algorithm 1/2 inner loop)
    # ------------------------------------------------------------------
    def port_slacks(self) -> PortSlacks:
        rec = obs.active()
        slacks = PortSlacks()
        for instance in self._model.all_instances():
            if instance.has_input:
                slacks.capture.setdefault(instance.name, math.inf)
            if instance.has_output:
                slacks.launch.setdefault(instance.name, math.inf)
        for cluster in self._model.clusters:
            self._cluster_port_slacks(cluster, slacks, rec)
        if rec is not None:
            rec.counter("slack.evaluations")
        return slacks

    def _cluster_port_slacks(
        self,
        cluster: Cluster,
        slacks: PortSlacks,
        rec: Optional["obs.Recorder"] = None,
    ) -> None:
        model = self._model
        plan = model.plans[cluster.name]
        launches = model.launch_ports[cluster.name]
        captures = model.capture_ports[cluster.name]
        for pass_index in range(plan.num_passes):
            designated = [c for c in captures if c.pass_index == pass_index]
            arrival = self._forward(cluster, launches, pass_index)
            if rec is not None:
                rec.counter("slack.cluster_passes")
                rec.counter("slack.forward_sweeps")
                rec.counter("slack.nodes_visited", len(arrival))
            required: Dict[str, RiseFall] = {}
            for port in designated:
                closure = self._closure_time(cluster.name, port)
                ready = arrival.get(port.net_name)
                if ready is not None and ready.is_finite():
                    slack = min(closure - ready.rise, closure - ready.fall)
                else:
                    slack = math.inf
                name = port.instance.name
                slacks.capture[name] = min(slacks.capture[name], slack)
                existing = required.get(port.net_name)
                pair = RiseFall.both(closure)
                required[port.net_name] = (
                    pair if existing is None else existing.min_with(pair)
                )
            if not required:
                continue
            self._backward(cluster, required)
            if rec is not None:
                rec.counter("slack.backward_sweeps")
            for port in launches:
                need = required.get(port.net_name)
                if need is None:
                    continue
                t = self._assertion_time(cluster.name, pass_index, port)
                slack = need.best - t
                name = port.instance.name
                slacks.launch[name] = min(slacks.launch[name], slack)

    # ------------------------------------------------------------------
    # full detail (reports, Algorithm 2 outputs)
    # ------------------------------------------------------------------
    def cluster_detail(self, cluster: Cluster) -> ClusterDetail:
        with obs.span(
            "slack.cluster_detail", category="slack", cluster=cluster.name
        ):
            return self._cluster_detail(cluster)

    def _cluster_detail(self, cluster: Cluster) -> ClusterDetail:
        model = self._model
        plan = model.plans[cluster.name]
        launches = model.launch_ports[cluster.name]
        captures = model.capture_ports[cluster.name]
        details: List[PassDetail] = []
        for pass_index in range(plan.num_passes):
            arrival = self._forward(cluster, launches, pass_index)
            required: Dict[str, RiseFall] = {}
            for port in captures:
                if port.pass_index != pass_index:
                    continue
                closure = self._closure_time(cluster.name, port)
                pair = RiseFall.both(closure)
                existing = required.get(port.net_name)
                required[port.net_name] = (
                    pair if existing is None else existing.min_with(pair)
                )
            self._backward(cluster, required)
            details.append(
                PassDetail(
                    pass_index=pass_index,
                    break_time=float(plan.breaks[pass_index]),
                    ready=arrival,
                    required=required,
                )
            )
        return ClusterDetail(cluster_name=cluster.name, passes=details)

    def details(self) -> Dict[str, ClusterDetail]:
        return {
            cluster.name: self.cluster_detail(cluster)
            for cluster in self._model.clusters
        }

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------
    def _assertion_time(
        self, cluster_name: str, pass_index: int, port: LaunchPort
    ) -> float:
        return (
            self._launch_pos[(cluster_name, pass_index, port.instance.name)]
            + port.instance.assertion_offset
        )

    def _closure_time(self, cluster_name: str, port: CapturePort) -> float:
        return (
            self._capture_pos[(cluster_name, port.instance.name)]
            + port.instance.closure_offset
        )

    def _forward(
        self,
        cluster: Cluster,
        launches: Tuple[LaunchPort, ...],
        pass_index: int,
    ) -> Dict[str, RiseFall]:
        """Equation 1: trace ready times forward through the cluster.

        The arc loop is flattened and the rise/fall algebra inlined -- it
        is the analysis's innermost loop (see DESIGN.md performance note).
        """
        delays = self._model.delays
        arc_delay = delays.arc_delay
        arrival: Dict[str, RiseFall] = {}
        for port in launches:
            t = self._assertion_time(cluster.name, pass_index, port)
            pair = RiseFall.both(t)
            existing = arrival.get(port.net_name)
            arrival[port.net_name] = (
                pair if existing is None else existing.max_with(pair)
            )
        get = arrival.get
        for cell, in_pin, out_pin, in_net, out_net, sense in (
            self._cluster_arcs[cluster.name]
        ):
            at_input = get(in_net)
            if at_input is None:
                continue
            delay = arc_delay(cell, in_pin, out_pin)
            if sense == 0:  # positive unate
                rise = at_input.rise + delay.rise
                fall = at_input.fall + delay.fall
            elif sense == 1:  # negative unate: output rise from input fall
                rise = at_input.fall + delay.rise
                fall = at_input.rise + delay.fall
            else:  # non-unate: worst input transition drives both
                worst = (
                    at_input.rise
                    if at_input.rise >= at_input.fall
                    else at_input.fall
                )
                rise = worst + delay.rise
                fall = worst + delay.fall
            existing = get(out_net)
            if existing is None:
                arrival[out_net] = RiseFall(rise, fall)
            elif rise > existing.rise or fall > existing.fall:
                arrival[out_net] = RiseFall(
                    rise if rise > existing.rise else existing.rise,
                    fall if fall > existing.fall else existing.fall,
                )
        return arrival

    def _backward(
        self, cluster: Cluster, required: Dict[str, RiseFall]
    ) -> None:
        """Equation 2: trace required times backward (in place)."""
        arc_delay = self._model.delays.arc_delay
        get = required.get
        for cell, in_pin, out_pin, in_net, out_net, sense in reversed(
            self._cluster_arcs[cluster.name]
        ):
            at_output = get(out_net)
            if at_output is None:
                continue
            delay = arc_delay(cell, in_pin, out_pin)
            out_rise = at_output.rise - delay.rise
            out_fall = at_output.fall - delay.fall
            if sense == 0:
                rise, fall = out_rise, out_fall
            elif sense == 1:  # adjoint of the forward swap
                rise, fall = out_fall, out_rise
            else:  # non-unate: the tighter requirement binds both
                best = out_rise if out_rise <= out_fall else out_fall
                rise = fall = best
            existing = get(in_net)
            if existing is None:
                required[in_net] = RiseFall(rise, fall)
            elif rise < existing.rise or fall < existing.fall:
                required[in_net] = RiseFall(
                    rise if rise < existing.rise else existing.rise,
                    fall if fall < existing.fall else existing.fall,
                )
