"""Aggregate timing statistics for reports.

The original tool printed slow paths; modern flows also want the
aggregate view: worst negative slack, total negative slack, endpoint
counts and slack distributions, grouped by capture clock.  These are
derived entirely from Algorithm 1's final node slacks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro import obs
from repro.core.model import AnalysisModel
from repro.core.slack import PortSlacks
from repro.obs.hist import bucket_counts, equal_width_edges


@dataclass(frozen=True)
class GroupStats:
    """Slack statistics for one group of capture endpoints."""

    name: str
    endpoints: int
    violating: int
    worst_slack: float
    #: Total negative slack: sum of negative endpoint slacks (<= 0).
    total_negative_slack: float

    @property
    def ok(self) -> bool:
        return self.violating == 0


@dataclass
class TimingStatistics:
    """Endpoint slack statistics for a whole design."""

    overall: GroupStats
    by_clock: Dict[str, GroupStats] = field(default_factory=dict)
    #: (lower bound, count) histogram rows, in ascending slack order.
    histogram: List[Tuple[float, int]] = field(default_factory=list)

    def format(self) -> str:
        lines = [
            f"endpoints: {self.overall.endpoints}  "
            f"violating: {self.overall.violating}  "
            f"WNS: {_fmt(self.overall.worst_slack)}  "
            f"TNS: {_fmt(self.overall.total_negative_slack)}"
        ]
        if self.by_clock:
            lines.append("by capture clock:")
            for name in sorted(self.by_clock):
                group = self.by_clock[name]
                lines.append(
                    f"  {name:<12} endpoints={group.endpoints:<5} "
                    f"violating={group.violating:<5} "
                    f"WNS={_fmt(group.worst_slack)} "
                    f"TNS={_fmt(group.total_negative_slack)}"
                )
        if self.histogram:
            lines.append("slack histogram:")
            width = max(count for __, count in self.histogram) or 1
            for lower, count in self.histogram:
                bar = "#" * max(1, round(24 * count / width)) if count else ""
                lines.append(f"  >= {lower:>9.2f}: {count:>5} {bar}")
        return "\n".join(lines)


def _fmt(value: float) -> str:
    # A design with no constrained endpoints has WNS = +inf; report
    # "n/a" rather than a bare "inf" in human-facing summaries.
    if math.isinf(value):
        return "n/a"
    return f"{value:.3f}"


def _group(name: str, slacks: Sequence[float]) -> GroupStats:
    finite = [s for s in slacks if not math.isinf(s)]
    violating = [s for s in finite if s <= 0]
    return GroupStats(
        name=name,
        endpoints=len(slacks),
        violating=len(violating),
        worst_slack=min(finite, default=math.inf),
        total_negative_slack=sum(violating),
    )


def timing_statistics(
    model: AnalysisModel,
    slacks: PortSlacks,
    histogram_bins: int = 8,
) -> TimingStatistics:
    """Summarise capture-endpoint slacks (run Algorithm 1 first)."""
    clock_of_cell: Dict[str, str] = {
        name: trace.clock
        for name, trace in model.validation.control_traces.items()
    }
    for cell in model.network.primary_outputs:
        clock = cell.attrs.get("clock")
        if clock is not None:
            clock_of_cell[cell.name] = clock

    per_clock: Dict[str, List[float]] = {}
    all_values: List[float] = []
    for cluster in model.clusters:
        for port in model.capture_ports[cluster.name]:
            value = slacks.capture.get(port.instance.name)
            if value is None:
                continue
            all_values.append(value)
            clock = clock_of_cell.get(port.instance.cell_name, "<none>")
            per_clock.setdefault(clock, []).append(value)

    stats = TimingStatistics(overall=_group("all", all_values))
    for clock, values in per_clock.items():
        stats.by_clock[clock] = _group(clock, values)
    stats.histogram = _histogram(all_values, histogram_bins)
    rec = obs.active()
    if rec is not None:
        # Mirror the endpoint slacks into the recorder histogram so the
        # Prometheus/metrics export carries the same distribution the
        # text report prints (shared bucketing: repro.obs.hist).
        for value in all_values:
            if not math.isinf(value):
                rec.histogram("slack.endpoint", value)
    return stats


def _histogram(
    values: Sequence[float], bins: int
) -> List[Tuple[float, int]]:
    """Equal-width slack histogram via the shared bucketing helper."""
    finite = sorted(v for v in values if not math.isinf(v))
    if not finite or bins < 1:
        return []
    low, high = finite[0], finite[-1]
    if high == low:
        return [(low, len(finite))]
    edges = equal_width_edges(low, high, bins)
    counts = bucket_counts(finite, edges)
    return list(zip(edges[:-1], counts))
