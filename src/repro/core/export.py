"""Machine-readable export of analysis results.

Serialises :class:`~repro.core.analyzer.TimingResult`,
:class:`~repro.core.statistics.TimingStatistics` and constraint sets to
plain dictionaries (JSON-compatible), so downstream tools -- the role
the OCT database played for the original -- can consume the analysis
without parsing text reports.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.algorithm2 import TimingConstraints
from repro.core.analyzer import TimingResult
from repro.core.statistics import TimingStatistics


def _finite(value: float) -> Optional[float]:
    """JSON has no infinities; unconstrained values become null."""
    if value is None or not math.isfinite(value):
        return None
    return value


def result_to_dict(result: TimingResult) -> Dict[str, Any]:
    """Serialise a timing result (verdict, slacks, slow paths)."""
    return {
        "format": "repro-timing-result-v1",
        "intended": result.intended,
        "worst_slack": _finite(result.worst_slack),
        "preprocess_seconds": result.preprocess_seconds,
        "analysis_seconds": result.analysis_seconds,
        "stats": dict(result.stats),
        "iterations": {
            "forward": result.algorithm1.iterations.forward,
            "backward": result.algorithm1.iterations.backward,
            "partial_forward": result.algorithm1.iterations.partial_forward,
            "partial_backward": result.algorithm1.iterations.partial_backward,
        },
        "converged": result.algorithm1.converged,
        "capture_slacks": {
            name: _finite(value)
            for name, value in sorted(result.algorithm1.slacks.capture.items())
        },
        "launch_slacks": {
            name: _finite(value)
            for name, value in sorted(result.algorithm1.slacks.launch.items())
        },
        "slow_paths": [
            {
                "launch": path.launch_instance,
                "capture": path.capture_instance,
                "slack": path.slack,
                "arrival": path.arrival,
                "closure": path.closure,
                "cluster": path.cluster,
                "pass": path.pass_index,
                "cells": [
                    step.cell_name for step in reversed(path.steps)
                ],
            }
            for path in result.slow_paths
        ],
    }


def statistics_to_dict(stats: TimingStatistics) -> Dict[str, Any]:
    """Serialise endpoint statistics."""

    def group(g) -> Dict[str, Any]:
        return {
            "endpoints": g.endpoints,
            "violating": g.violating,
            "worst_slack": _finite(g.worst_slack),
            "total_negative_slack": g.total_negative_slack,
        }

    return {
        "format": "repro-timing-stats-v1",
        "overall": group(stats.overall),
        "by_clock": {
            name: group(g) for name, g in sorted(stats.by_clock.items())
        },
        "histogram": [
            {"lower_bound": lower, "count": count}
            for lower, count in stats.histogram
        ],
    }


def constraints_to_dict(
    constraints: TimingConstraints,
) -> Dict[str, Any]:
    """Serialise Algorithm 2's ready/required times (per settling)."""

    def settlings(entries) -> list:
        return [
            {
                "cluster": entry.cluster,
                "pass": entry.pass_index,
                "rise": _finite(entry.value.rise),
                "fall": _finite(entry.value.fall),
            }
            for entry in entries
        ]

    return {
        "format": "repro-timing-constraints-v1",
        "ready": {
            net: settlings(entries)
            for net, entries in sorted(constraints.ready.items())
        },
        "required": {
            net: settlings(entries)
            for net, entries in sorted(constraints.required.items())
        },
    }


def save_result(
    result: TimingResult, path: Union[str, Path]
) -> None:
    """Write a timing result to a JSON file."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result_dict(path: Union[str, Path]) -> Dict[str, Any]:
    """Read back a saved result as plain data."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != "repro-timing-result-v1":
        raise ValueError("not a repro timing result")
    return data
