"""The generic synchronising-element model (paper Sections 4-5).

Every synchroniser cell is expanded into one :class:`GenericInstance` per
pulse of its controlling clock within the overall period ("a synchronising
element that is clocked at a frequency that is a multiple, n, of the
overall clock frequency is represented by n such elements connected in
parallel").  Each instance carries the simplified model's terminal offsets
(Figure 2(b)):

========  ==============================================================
offset    meaning
========  ==============================================================
``O_cc``  closure-control time; fixed at 0 (lower bound).
``O_dc``  input closure caused by closure control; fixed at ``-D_setup``.
``O_ac``  assertion-control arrival; the control-path delay (>= 0).
``O_zc``  output assertion caused by assertion control: ``O_ac + D_cz``.
``O_dz``  input closure required to achieve output assertion at ``O_zd``.
``O_zd``  output assertion caused by input timing.
========  ==============================================================

``O_zc``/``O_ac``/``O_zd`` are offsets from the *ideal output assertion
time* (the pulse's leading edge for transparent elements, the trailing
edge for edge-triggered ones); ``O_cc``/``O_dc``/``O_dz`` are offsets from
the *ideal input closure time* (always the trailing edge).

For transparent latches the Figure 3 relation couples the free pair:
``O_zd = W + O_dz + D_dz`` with ``O_dz <= -D_dz`` and ``O_zd >= 0``, i.e.
one scalar degree of freedom ``w = O_zd in [0, W]`` -- *where inside the
transparency window the element effectively clocks its data*.  Slack
transfer (Algorithm 1) moves ``w``.  Edge-triggered latches have
``O_dz = O_zd = 0`` fixed: no freedom, input and output decoupled.

Primary inputs and outputs are modelled as :class:`GenericInstance` with
:data:`InstanceKind.FIXED_SOURCE` / :data:`InstanceKind.FIXED_SINK`: a
single asserted (or captured) transition at a chosen clock edge plus a
user offset, with no adjustable window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.clocks.edges import Pulse
from repro.clocks.schedule import ClockSchedule
from repro.delay.estimator import SyncTiming
from repro.netlist.cell import Cell
from repro.netlist.kinds import SyncStyle, Unateness


class InstanceKind(enum.Enum):
    """Behavioural category of a generic instance."""

    EDGE_TRIGGERED = "edge_triggered"
    TRANSPARENT = "transparent"
    #: Primary input: asserts only, no capture side, no freedom.
    FIXED_SOURCE = "fixed_source"
    #: Primary output: captures only, no assertion side, no freedom.
    FIXED_SINK = "fixed_sink"


class GenericInstance:
    """One pulse's worth of a synchronising element (or an I/O pad).

    Mutable state is the transparency-window position ``w`` (``O_zd``);
    everything else is fixed at construction.
    """

    __slots__ = (
        "name",
        "cell_name",
        "terminal_in",
        "terminal_out",
        "kind",
        "assertion_edge",
        "closure_edge",
        "clock_period",
        "width",
        "setup",
        "d_to_q",
        "c_to_q",
        "c_to_q_min",
        "hold",
        "control_arrival",
        "control_arrival_min",
        "fixed_offset",
        "w",
    )

    def __init__(
        self,
        name: str,
        cell_name: str,
        kind: InstanceKind,
        assertion_edge: Optional[Fraction],
        closure_edge: Optional[Fraction],
        clock_period: Fraction,
        width: float = 0.0,
        setup: float = 0.0,
        d_to_q: float = 0.0,
        c_to_q: float = 0.0,
        c_to_q_min: float = 0.0,
        hold: float = 0.0,
        control_arrival: float = 0.0,
        control_arrival_min: float = 0.0,
        fixed_offset: float = 0.0,
        terminal_in: Optional[str] = None,
        terminal_out: Optional[str] = None,
    ) -> None:
        if kind is InstanceKind.TRANSPARENT and width <= 0:
            raise ValueError(f"{name}: transparent instance needs a pulse width")
        if control_arrival < 0 or control_arrival_min < 0:
            raise ValueError(f"{name}: control arrival must be >= 0 (O_ac >= 0)")
        self.name = name
        self.cell_name = cell_name
        self.kind = kind
        self.assertion_edge = assertion_edge
        self.closure_edge = closure_edge
        self.clock_period = clock_period
        self.width = width
        self.setup = setup
        self.d_to_q = d_to_q
        self.c_to_q = c_to_q
        self.c_to_q_min = c_to_q_min
        self.hold = hold
        self.control_arrival = control_arrival
        self.control_arrival_min = control_arrival_min
        self.fixed_offset = fixed_offset
        #: full-name of the data-input / data-output terminals in the network
        self.terminal_in = terminal_in
        self.terminal_out = terminal_out
        #: The free offset O_zd; meaningful only for TRANSPARENT instances.
        self.w: float = width if kind is InstanceKind.TRANSPARENT else 0.0

    # ------------------------------------------------------------------
    # offsets (paper, Section 5)
    # ------------------------------------------------------------------
    @property
    def o_zc(self) -> float:
        """Output assertion offset caused by assertion control."""
        return self.control_arrival + self.c_to_q

    @property
    def o_zd(self) -> float:
        """Output assertion offset caused by input timing."""
        return self.w

    @property
    def o_dz(self) -> float:
        """Input closure offset required for output assertion at ``o_zd``.

        Figure 3: ``O_zd = W + O_dz + D_dz``.
        """
        return self.w - self.width - self.d_to_q

    @property
    def o_dc(self) -> float:
        """Input closure offset caused by closure control (``-D_setup``)."""
        return -self.setup

    # ------------------------------------------------------------------
    # effective terminal times (offsets from the ideal edges)
    # ------------------------------------------------------------------
    @property
    def assertion_offset(self) -> float:
        """Offset of actual output assertion from the ideal assertion time.

        "Assertion time at the actual output is given by the maximum of
        the two output assertion times."
        """
        if self.kind is InstanceKind.FIXED_SOURCE:
            return self.fixed_offset
        if self.kind is InstanceKind.FIXED_SINK:
            raise ValueError(f"{self.name} has no output side")
        if self.kind is InstanceKind.EDGE_TRIGGERED:
            # O_zd = 0, and O_zc >= 0, so the maximum is O_zc.
            return self.o_zc
        return max(self.o_zc, self.o_zd)

    @property
    def closure_offset(self) -> float:
        """Offset of actual input closure from the ideal closure time.

        "Closure time at the actual input is given by the minimum of the
        two input closure times."
        """
        if self.kind is InstanceKind.FIXED_SINK:
            return self.fixed_offset
        if self.kind is InstanceKind.FIXED_SOURCE:
            raise ValueError(f"{self.name} has no input side")
        if self.kind is InstanceKind.EDGE_TRIGGERED:
            # O_dz = 0 and O_dc = -setup <= 0, so the minimum is O_dc.
            return self.o_dc
        return min(self.o_dc, self.o_dz)

    # ------------------------------------------------------------------
    # slack-transfer freedom
    # ------------------------------------------------------------------
    @property
    def max_decrease(self) -> float:
        """Largest allowed decrease of the (O_dz, O_zd) pair (``m``)."""
        if self.kind is InstanceKind.TRANSPARENT:
            return self.w
        return 0.0

    @property
    def max_increase(self) -> float:
        """Largest allowed increase of the (O_dz, O_zd) pair."""
        if self.kind is InstanceKind.TRANSPARENT:
            return self.width - self.w
        return 0.0

    def shift_window(self, delta: float) -> None:
        """Move the free pair by ``delta`` (negative = earlier).

        Clamps tiny numerical overshoots; raises on real violations.
        """
        if self.kind is not InstanceKind.TRANSPARENT:
            if abs(delta) > 1e-12:
                raise ValueError(f"{self.name}: window is not adjustable")
            return
        new_w = self.w + delta
        if new_w < -1e-9 or new_w > self.width + 1e-9:
            raise ValueError(
                f"{self.name}: window position {new_w} outside [0, {self.width}]"
            )
        self.w = min(max(new_w, 0.0), self.width)

    def reset_window(self) -> None:
        """Restore the initial window (closure at end of pulse)."""
        if self.kind is InstanceKind.TRANSPARENT:
            self.w = self.width

    # ------------------------------------------------------------------
    @property
    def has_output(self) -> bool:
        return self.kind is not InstanceKind.FIXED_SINK

    @property
    def has_input(self) -> bool:
        return self.kind is not InstanceKind.FIXED_SOURCE

    @property
    def adjustable(self) -> bool:
        return self.kind is InstanceKind.TRANSPARENT

    def __repr__(self) -> str:
        return (
            f"GenericInstance({self.name!r}, {self.kind.value}, "
            f"A={self.assertion_edge}, C={self.closure_edge})"
        )


@dataclass(frozen=True)
class EffectiveWindow:
    """The transparency window of one instance after control-sense
    resolution: ideal assertion at ``leading``, ideal closure at
    ``trailing`` (both within the overall period), pulse width ``width``."""

    leading: Fraction
    trailing: Fraction
    width: Fraction


def effective_windows(
    schedule: ClockSchedule, clock: str, sense: Unateness
) -> Tuple[EffectiveWindow, ...]:
    """Transparency windows of an element on ``clock`` with control sense.

    A control function that *inverts* the clock (negative sense) makes the
    element transparent while the clock is low: the effective windows are
    the complements of the clock pulses -- each runs from one pulse's
    trailing edge to the *next* pulse's leading edge.
    """
    pulses = schedule.pulses(clock)
    period = schedule.overall_period
    windows: List[EffectiveWindow] = []
    if sense is Unateness.POSITIVE:
        for pulse in pulses:
            windows.append(
                EffectiveWindow(
                    pulse.leading.time, pulse.trailing.time, pulse.width
                )
            )
    elif sense is Unateness.NEGATIVE:
        n = len(pulses)
        for index, pulse in enumerate(pulses):
            next_lead = pulses[(index + 1) % n].leading.time
            gap = (next_lead - pulse.trailing.time) % period
            if gap == 0:
                gap = period  # degenerate: complement spans a full period
            windows.append(
                EffectiveWindow(pulse.trailing.time, next_lead, gap)
            )
    else:
        raise ValueError("control sense must be positive or negative")
    return tuple(windows)


def expand_synchroniser(
    cell: Cell,
    schedule: ClockSchedule,
    clock: str,
    sense: Unateness,
    timing: SyncTiming,
    control_arrival: float,
    control_arrival_min: float,
) -> Tuple[GenericInstance, ...]:
    """All generic instances of one synchroniser cell.

    One instance per pulse of the controlling clock within the overall
    period; the instance's ideal assertion/closure times follow the element
    style (transparent: leading/trailing edge of the *effective* window;
    edge-triggered: both at the trailing edge).
    """
    style = cell.sync_style
    if style is None:
        raise ValueError(f"{cell.name!r} is not a synchroniser")
    windows = effective_windows(schedule, clock, sense)
    clock_period = schedule.waveform(clock).period
    instances: List[GenericInstance] = []
    for index, window in enumerate(windows):
        if style is SyncStyle.EDGE_TRIGGERED:
            kind = InstanceKind.EDGE_TRIGGERED
            assertion = window.trailing
            closure = window.trailing
        else:  # TRANSPARENT and TRISTATE share the transparent model
            kind = InstanceKind.TRANSPARENT
            assertion = window.leading
            closure = window.trailing
        instances.append(
            GenericInstance(
                name=f"{cell.name}@{index}",
                cell_name=cell.name,
                kind=kind,
                assertion_edge=assertion,
                closure_edge=closure,
                clock_period=clock_period,
                width=float(window.width),
                setup=timing.setup,
                d_to_q=timing.d_to_q,
                c_to_q=timing.c_to_q,
                c_to_q_min=timing.c_to_q_min,
                hold=timing.hold,
                control_arrival=control_arrival,
                control_arrival_min=control_arrival_min,
                terminal_in=cell.data_input.full_name,
                terminal_out=cell.data_output.full_name,
            )
        )
    return tuple(instances)


def pad_instance(cell: Cell, schedule: ClockSchedule) -> GenericInstance:
    """The fixed instance modelling a primary input or output pad."""
    from repro.netlist.kinds import CellRole

    clock = cell.attrs.get("clock")
    if clock is None:
        raise ValueError(f"pad {cell.name!r} has no 'clock' attribute")
    pulses = schedule.pulses(clock)
    pulse_index = int(cell.attrs.get("pulse_index", 0))
    if not 0 <= pulse_index < len(pulses):
        raise ValueError(
            f"pad {cell.name!r}: pulse_index {pulse_index} out of range "
            f"(clock {clock!r} has {len(pulses)} pulses)"
        )
    pulse: Pulse = pulses[pulse_index]
    edge_kind = cell.attrs.get("edge", "trailing")
    edge_time = (
        pulse.leading.time if edge_kind == "leading" else pulse.trailing.time
    )
    offset = float(cell.attrs.get("offset", 0.0))
    clock_period = schedule.waveform(clock).period
    if cell.role is CellRole.PRIMARY_INPUT:
        return GenericInstance(
            name=f"{cell.name}@pad",
            cell_name=cell.name,
            kind=InstanceKind.FIXED_SOURCE,
            assertion_edge=edge_time,
            closure_edge=None,
            clock_period=clock_period,
            fixed_offset=offset,
            terminal_out=cell.terminal("Z").full_name,
        )
    if cell.role is CellRole.PRIMARY_OUTPUT:
        return GenericInstance(
            name=f"{cell.name}@pad",
            cell_name=cell.name,
            kind=InstanceKind.FIXED_SINK,
            assertion_edge=None,
            closure_edge=edge_time,
            clock_period=clock_period,
            fixed_offset=offset,
            terminal_in=cell.terminal("A").full_name,
        )
    raise ValueError(f"{cell.name!r} is not a pad cell")
