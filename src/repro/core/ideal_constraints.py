"""Ideal path constraints ``D_p`` (paper, Section 4).

For a combinational path from synchronising element output ``x`` to data
input ``y``, the ideal path constraint is "the time that elapses between
the ideal assertion time at x and the very next ideal closure time at y".
Control paths have ``D_p`` identically zero.  Enable paths take the time
from the assertion to the clock edge being enabled/disabled.

These helpers express the definitions directly; the production analysis
embeds the same arithmetic in :mod:`repro.core.breakopen`
(``RequirementArc.ideal_constraint``).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.clocks.schedule import ClockSchedule
from repro.core.sync_elements import GenericInstance


def ideal_data_constraint(
    assertion_edge: Fraction, closure_edge: Fraction, period: Fraction
) -> Fraction:
    """``D_p`` of a data path between two ideal edge times: in ``(0, T]``.

    Coincident edges give exactly one overall period, matching the paper's
    example (b): a trailing-edge flip-flop feeding another on the same
    clock has ``D_p`` equal to exactly one clock period.
    """
    delta = (closure_edge - assertion_edge) % period
    return delta if delta != 0 else period


def ideal_path_constraint(
    launch: GenericInstance,
    capture: GenericInstance,
    period: Fraction,
) -> Fraction:
    """``D_p`` between two generic instances' ideal edges."""
    if launch.assertion_edge is None:
        raise ValueError(f"{launch.name} has no assertion side")
    if capture.closure_edge is None:
        raise ValueError(f"{capture.name} has no closure side")
    return ideal_data_constraint(
        launch.assertion_edge, capture.closure_edge, period
    )


def control_path_constraint() -> Fraction:
    """Control paths have an ideal path constraint of exactly zero."""
    return Fraction(0)


def enable_path_constraint(
    launch: GenericInstance,
    schedule: ClockSchedule,
    controlled_clock: str,
    enabled_edge: str = "trailing",
    pulse_index: int = 0,
) -> Fraction:
    """``D_p`` of an enable path: assertion at the source to the clock
    edge of the controlled element that the enable logic gates.

    "The nature of the operation of the synchronising element, and of the
    enable logic, determines which of the clock edges is to be
    enabled/disabled."
    """
    if launch.assertion_edge is None:
        raise ValueError(f"{launch.name} has no assertion side")
    pulses = schedule.pulses(controlled_clock)
    if not 0 <= pulse_index < len(pulses):
        raise ValueError(f"pulse index {pulse_index} out of range")
    pulse = pulses[pulse_index]
    edge_time = (
        pulse.leading.time if enabled_edge == "leading" else pulse.trailing.time
    )
    return ideal_data_constraint(
        launch.assertion_edge, edge_time, schedule.overall_period
    )


def available_time(
    launch: GenericInstance,
    capture: GenericInstance,
    period: Fraction,
) -> float:
    """Actual time available on a path: ``D_p - O_x + O_y``.

    The path constraint of Section 4 is ``dmax_p < D_p - O_x + O_y``.
    """
    d = ideal_path_constraint(launch, capture, period)
    return float(d) - launch.assertion_offset + capture.closure_offset


def supplementary_bound(
    launch: GenericInstance,
    capture: GenericInstance,
    period: Fraction,
    capture_clock_period: Optional[Fraction] = None,
) -> float:
    """Lower bound of the supplementary path constraint:
    ``dmin_p > D_p - O_x + O_y - T_y``.

    ``T_y`` defaults to the capture instance's controlling clock period.
    """
    t_y = (
        capture_clock_period
        if capture_clock_period is not None
        else capture.clock_period
    )
    return available_time(launch, capture, period) - float(t_y)
