"""Algorithm 2: timing constraint generation (paper, Section 6).

Starting from Algorithm 1's offsets:

* Iteration 1 snatches time **backward** across all synchronising
  elements until no more moves, then records signal *ready times* at all
  cell inputs -- actual times for nodes on too-slow paths, upper bounds
  elsewhere;
* Iteration 2 snatches time **forward** likewise, then records *required
  times* at all cell outputs.

For every combinational node the pair (ready, required) is such that, for
any two nodes on a path, ``required(y) - ready(x)`` bounds the allowed
path delay: exactly the constraints a re-synthesis tool (Singh et al. [1])
needs -- they "indicate the speed-up required to make a slow path just
fast enough, or else bound the degree to which a path may be slowed
down".

Because a node may settle more than once per overall period, ready and
required times are recorded *per analysis pass*: the minimum set of
settling times from Section 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.algorithm1 import Algorithm1Result, run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import ClusterDetail, SlackEngine
from repro.core.transfer import snatch_backward, snatch_forward, sweep
from repro.netlist.cell import Cell
from repro.rftime import RiseFall


@dataclass(frozen=True)
class SettlingTime:
    """One settling event of a node: which cluster pass it belongs to and
    the rise/fall time value on that pass's axis."""

    cluster: str
    pass_index: int
    value: RiseFall


@dataclass
class TimingConstraints:
    """Ready/required times for every combinational node (by net name)."""

    ready: Dict[str, List[SettlingTime]] = field(default_factory=dict)
    required: Dict[str, List[SettlingTime]] = field(default_factory=dict)

    def ready_time(self, net_name: str) -> Optional[float]:
        """Worst (latest) scalar ready time of a net, over its settlings."""
        entries = self.ready.get(net_name)
        if not entries:
            return None
        return max(entry.value.worst for entry in entries)

    def required_time(self, net_name: str) -> Optional[float]:
        """Tightest (earliest) scalar required time of a net."""
        entries = self.required.get(net_name)
        if not entries:
            return None
        return min(entry.value.best for entry in entries)

    def node_slack(self, net_name: str) -> float:
        """Required minus ready, per pass, minimised.

        Matching is by (cluster, pass): a settling time is only compared
        with the requirement of the same pass.
        """
        ready = {
            (e.cluster, e.pass_index): e.value
            for e in self.ready.get(net_name, ())
        }
        slack = math.inf
        for entry in self.required.get(net_name, ()):
            at = ready.get((entry.cluster, entry.pass_index))
            if at is None or not at.is_finite():
                continue
            slack = min(slack, entry.value.minus(at).best)
        return slack

    def settling_count(self, net_name: str) -> int:
        """Number of settling times evaluated for the node."""
        return sum(
            1
            for e in self.ready.get(net_name, ())
            if e.value.is_finite()
        )

    def cell_constraints(self, cell: Cell) -> "CellConstraints":
        """Input ready / output required times for one combinational cell
        (the per-module data handed to re-synthesis)."""
        input_ready = {}
        for terminal in cell.input_terminals:
            if terminal.net is not None:
                value = self.ready_time(terminal.net.name)
                if value is not None:
                    input_ready[terminal.pin] = value
        output_required = {}
        for terminal in cell.output_terminals:
            if terminal.net is not None:
                value = self.required_time(terminal.net.name)
                if value is not None:
                    output_required[terminal.pin] = value
        return CellConstraints(cell.name, input_ready, output_required)


@dataclass(frozen=True)
class CellConstraints:
    """Delay budget of one combinational cell/module."""

    cell_name: str
    input_ready: Dict[str, float]
    output_required: Dict[str, float]

    @property
    def allowed_delay(self) -> float:
        """Largest input-to-output delay the budget permits."""
        if not self.input_ready or not self.output_required:
            return math.inf
        return min(self.output_required.values()) - max(
            self.input_ready.values()
        )


@dataclass
class Algorithm2Result:
    """Outcome of constraint generation."""

    constraints: TimingConstraints
    algorithm1: Algorithm1Result
    backward_snatch_cycles: int = 0
    forward_snatch_cycles: int = 0
    converged: bool = True


def run_algorithm2(
    model: AnalysisModel,
    engine: Optional[SlackEngine] = None,
    algorithm1_result: Optional[Algorithm1Result] = None,
    max_cycles: Optional[int] = None,
) -> Algorithm2Result:
    """Run Algorithm 2 (runs Algorithm 1 first unless a result is given,
    in which case the model's offsets must still be in that result's
    final state)."""
    from repro import obs

    engine = engine or SlackEngine(model)
    if algorithm1_result is None:
        algorithm1_result = run_algorithm1(model, engine)
    instances = model.all_instances()
    cap = max_cycles if max_cycles is not None else max(16, len(instances) + 2)
    converged = True

    # --- Iteration 1: backward snatching, then ready times -------------
    backward_cycles = 0
    with obs.span("alg2.iteration1.snatch_backward", category="alg2"):
        while True:
            slacks = engine.port_slacks()
            moved = sweep(
                instances,
                slacks.capture,
                snatch_backward,
                phase="alg2.snatch_backward",
                cycle=backward_cycles + 1,
            )
            if moved == 0.0:
                break
            backward_cycles += 1
            if backward_cycles >= cap:
                converged = False
                break
    constraints = TimingConstraints()
    with obs.span("alg2.record_ready", category="alg2"):
        _record(engine, model, constraints, record_ready=True)

    # --- Iteration 2: forward snatching, then required times -----------
    forward_cycles = 0
    with obs.span("alg2.iteration2.snatch_forward", category="alg2"):
        while True:
            slacks = engine.port_slacks()
            moved = sweep(
                instances,
                slacks.launch,
                snatch_forward,
                phase="alg2.snatch_forward",
                cycle=forward_cycles + 1,
            )
            if moved == 0.0:
                break
            forward_cycles += 1
            if forward_cycles >= cap:
                converged = False
                break
    with obs.span("alg2.record_required", category="alg2"):
        _record(engine, model, constraints, record_ready=False)

    rec = obs.active()
    if rec is not None:
        rec.counter("alg2.runs")
        rec.counter("alg2.backward_snatch_cycles", backward_cycles)
        rec.counter("alg2.forward_snatch_cycles", forward_cycles)

    return Algorithm2Result(
        constraints=constraints,
        algorithm1=algorithm1_result,
        backward_snatch_cycles=backward_cycles,
        forward_snatch_cycles=forward_cycles,
        converged=converged,
    )


def _record(
    engine: SlackEngine,
    model: AnalysisModel,
    constraints: TimingConstraints,
    record_ready: bool,
) -> None:
    for cluster in model.clusters:
        detail: ClusterDetail = engine.cluster_detail(cluster)
        for pass_detail in detail.passes:
            source = pass_detail.ready if record_ready else pass_detail.required
            sink = constraints.ready if record_ready else constraints.required
            for net_name, value in source.items():
                sink.setdefault(net_name, []).append(
                    SettlingTime(
                        cluster=cluster.name,
                        pass_index=pass_detail.pass_index,
                        value=value,
                    )
                )
