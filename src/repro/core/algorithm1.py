"""Algorithm 1: identification of slow paths (paper, Section 6).

The algorithm iterates slack transfer to a fixed point:

* Iteration 1 -- complete **forward** transfer across all elements until
  no slack moves (or all node slacks are already positive),
* Iteration 2 -- complete **backward** transfer likewise,
* Iteration 3 -- one **partial forward** transfer per complete backward
  cycle performed,
* Iteration 4 -- one **partial backward** transfer per complete forward
  cycle performed,
* final step -- node slacks everywhere.

Iterations 1 and 2 remove surplus time from paths with positive slack;
iterations 3 and 4 return some, so paths that are fast enough end with
strictly positive slack while every node on a too-slow path ends
non-positive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import obs
from repro.core.model import AnalysisModel
from repro.core.slack import PortSlacks, SlackEngine
from repro.core.transfer import (
    complete_backward,
    complete_forward,
    partial_backward,
    partial_forward,
    sweep,
)


@dataclass
class IterationCounts:
    """How many transfer cycles each phase of Algorithm 1 performed."""

    forward: int = 0
    backward: int = 0
    partial_forward: int = 0
    partial_backward: int = 0

    @property
    def total(self) -> int:
        return (
            self.forward
            + self.backward
            + self.partial_forward
            + self.partial_backward
        )


@dataclass
class Algorithm1Result:
    """Outcome of the slow-path identification."""

    #: True when a set of offsets was found under which every path
    #: constraint is satisfied: "the system behaves as intended".
    intended: bool
    #: Final node slacks at the generic-instance boundary terminals.
    slacks: PortSlacks
    iterations: IterationCounts = field(default_factory=IterationCounts)
    #: Whether a fixed-point loop hit the safety cap before converging.
    converged: bool = True

    @property
    def worst_slack(self) -> float:
        return self.slacks.worst()

    def slow_instance_names(self, tolerance: float = 0.0) -> List[str]:
        """Instances whose input or output terminal lies on a slow path."""
        names = {
            name
            for name, slack in self.slacks.capture.items()
            if slack <= tolerance
        }
        names.update(
            name
            for name, slack in self.slacks.launch.items()
            if slack <= tolerance
        )
        return sorted(names)


def run_algorithm1(
    model: AnalysisModel,
    engine: Optional[SlackEngine] = None,
    divisor: float = 2.0,
    max_cycles: Optional[int] = None,
    reset: bool = True,
) -> Algorithm1Result:
    """Run Algorithm 1 on ``model`` (mutates the instances' offsets).

    ``divisor`` is the ``n > 1`` of partial slack transfer.  ``max_cycles``
    caps each fixed-point loop; the paper's bound is one more than the
    number of synchronising elements in a directed path, so the default is
    comfortably above that.
    """
    if reset:
        model.reset_windows()
    engine = engine or SlackEngine(model)
    instances = model.all_instances()
    cap = max_cycles if max_cycles is not None else max(16, len(instances) + 2)
    counts = IterationCounts()
    converged = True
    rec = obs.active()

    # --- Iteration 1: complete forward transfer to a fixed point --------
    with obs.span("alg1.iteration1.forward", category="alg1"):
        slacks = engine.port_slacks()
        while True:
            if slacks.all_positive():
                return _finish(True, slacks, counts, converged, rec)
            moved = sweep(
                instances,
                slacks.capture,
                complete_forward,
                phase="iteration1.forward",
                cycle=counts.forward + 1,
            )
            if moved == 0.0:
                break
            counts.forward += 1
            if counts.forward >= cap:
                converged = False
                break
            slacks = engine.port_slacks()

    # --- Iteration 2: complete backward transfer to a fixed point -------
    with obs.span("alg1.iteration2.backward", category="alg1"):
        slacks = engine.port_slacks()
        while True:
            if slacks.all_positive():
                return _finish(True, slacks, counts, converged, rec)
            moved = sweep(
                instances,
                slacks.launch,
                complete_backward,
                phase="iteration2.backward",
                cycle=counts.backward + 1,
            )
            if moved == 0.0:
                break
            counts.backward += 1
            if counts.backward >= cap:
                converged = False
                break
            slacks = engine.port_slacks()

    # --- Iteration 3: one partial forward per complete backward cycle ---
    with obs.span("alg1.iteration3.partial_forward", category="alg1"):
        for __ in range(counts.backward):
            slacks = engine.port_slacks()
            moved = sweep(
                instances,
                slacks.capture,
                partial_forward,
                phase="iteration3.partial_forward",
                cycle=counts.partial_forward + 1,
                divisor=divisor,
            )
            counts.partial_forward += 1
            if moved == 0.0:
                break

    # --- Iteration 4: one partial backward per complete forward cycle ---
    with obs.span("alg1.iteration4.partial_backward", category="alg1"):
        for __ in range(counts.forward):
            slacks = engine.port_slacks()
            moved = sweep(
                instances,
                slacks.launch,
                partial_backward,
                phase="iteration4.partial_backward",
                cycle=counts.partial_backward + 1,
                divisor=divisor,
            )
            counts.partial_backward += 1
            if moved == 0.0:
                break

    # --- Final step: all node slacks ------------------------------------
    with obs.span("alg1.final_slacks", category="alg1"):
        slacks = engine.port_slacks()
    intended = slacks.all_positive()
    return _finish(intended, slacks, counts, converged, rec)


def _finish(
    intended: bool,
    slacks: PortSlacks,
    counts: IterationCounts,
    converged: bool,
    rec,
) -> Algorithm1Result:
    """Assemble the result and publish the iteration counters.

    The Section 8 bound -- at most one complete-transfer cycle per
    synchronising element on a path, plus one -- becomes an observable
    metric here: ``alg1.forward_cycles`` / ``alg1.backward_cycles``.
    """
    if rec is not None:
        rec.counter("alg1.runs")
        rec.counter("alg1.forward_cycles", counts.forward)
        rec.counter("alg1.backward_cycles", counts.backward)
        rec.counter("alg1.partial_forward_cycles", counts.partial_forward)
        rec.counter("alg1.partial_backward_cycles", counts.partial_backward)
        rec.counter("alg1.iterations_total", counts.total)
        if not converged:
            rec.counter("alg1.nonconverged_runs")
        worst = slacks.worst()
        if worst == worst and worst not in (float("inf"), float("-inf")):
            rec.gauge("alg1.worst_slack", worst)
        rec.event(
            "alg1.done",
            intended=intended,
            iterations=counts.total,
            converged=converged,
        )
    return Algorithm1Result(intended, slacks, counts, converged)
