"""Multi-corner analysis.

The paper's delay estimation produces one set of "worst (largest)
component propagation delays"; real standard-cell flows characterise
several process/voltage/temperature corners and require timing to close
at all of them.  This module runs Algorithm 1 (and optionally the
hold check) per corner and merges the verdicts: the design behaves as
intended only when every corner does.

Corners are expressed as global delay scale factors relative to the
nominal estimation -- the classic derating approach -- plus optional
per-corner estimation parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.clocks.schedule import ClockSchedule
from repro.core.algorithm1 import Algorithm1Result, run_algorithm1
from repro.core.mindelay import HoldViolation, check_hold
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay.estimator import DelayMap, DelayParameters, estimate_delays
from repro.netlist.network import Network


@dataclass(frozen=True)
class Corner:
    """One analysis corner.

    ``max_scale`` derates every maximum delay (slow corner > 1);
    ``min_scale`` derates every minimum delay (fast corner < 1, used by
    the hold check).
    """

    name: str
    max_scale: float = 1.0
    min_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.max_scale <= 0 or self.min_scale <= 0:
            raise ValueError(f"corner {self.name!r}: scales must be positive")


#: The classic three-corner set.
DEFAULT_CORNERS: Tuple[Corner, ...] = (
    Corner("slow", max_scale=1.25, min_scale=1.0),
    Corner("typical", max_scale=1.0, min_scale=1.0),
    Corner("fast", max_scale=0.8, min_scale=0.7),
)


@dataclass
class CornerResult:
    """Outcome at one corner."""

    corner: Corner
    setup: Algorithm1Result
    hold_violations: List[HoldViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.setup.intended and not self.hold_violations


@dataclass
class MultiCornerResult:
    """Merged outcome across all corners."""

    results: Dict[str, CornerResult] = field(default_factory=dict)

    @property
    def intended(self) -> bool:
        return all(result.clean for result in self.results.values())

    @property
    def worst_setup_corner(self) -> Optional[str]:
        finite = {
            name: result.setup.worst_slack
            for name, result in self.results.items()
        }
        if not finite:
            return None
        return min(finite, key=finite.get)

    def summary(self) -> str:
        lines = []
        for name, result in self.results.items():
            verdict = "OK" if result.clean else "FAIL"
            lines.append(
                f"{name:<10} setup slack {result.setup.worst_slack:8.3f}  "
                f"hold violations {len(result.hold_violations):3}  "
                f"[{verdict}]"
            )
        lines.append(
            "all corners clean"
            if self.intended
            else "timing does NOT close at all corners"
        )
        return "\n".join(lines)


def _corner_delays(nominal: DelayMap, corner: Corner) -> DelayMap:
    """Nominal delays derated for a corner (max and min separately)."""
    # globally_scaled scales both max and min identically; apply the
    # asymmetric derate through two scalings and an arc merge.
    scaled_max = nominal.globally_scaled(corner.max_scale)
    if corner.min_scale == corner.max_scale:
        return scaled_max
    scaled_min = nominal.globally_scaled(corner.min_scale)
    # Take max delays from one, min delays from the other.
    return DelayMap(
        scaled_max._arc_max,
        scaled_min._arc_min,
        scaled_max._arc_sense,
        scaled_max._cell_arcs,
        scaled_max._sync,
    )


def analyze_corners(
    network: Network,
    schedule: ClockSchedule,
    delays: Optional[DelayMap] = None,
    corners: Tuple[Corner, ...] = DEFAULT_CORNERS,
    check_hold_too: bool = True,
    delay_params: Optional[DelayParameters] = None,
) -> MultiCornerResult:
    """Run the analysis at every corner and merge the verdicts."""
    nominal = (
        delays if delays is not None else estimate_delays(network, delay_params)
    )
    outcome = MultiCornerResult()
    for corner in corners:
        corner_map = _corner_delays(nominal, corner)
        model = AnalysisModel(network, schedule, corner_map)
        engine = SlackEngine(model)
        setup = run_algorithm1(model, engine)
        holds = check_hold(model, engine) if check_hold_too else []
        outcome.results[corner.name] = CornerResult(
            corner=corner, setup=setup, hold_violations=holds
        )
    return outcome
