"""The :class:`Hummingbird` facade: the public entry point of the library.

Mirrors the structure of the original program: a *pre-processing* phase
(cluster generation and the Section 7 pass-selection algorithm, timed
separately as in Table 1) followed by *analysis* (Algorithm 1) and,
optionally, *constraint generation* (Algorithm 2).

Example
-------
>>> from repro import Hummingbird                      # doctest: +SKIP
>>> hb = Hummingbird(network, schedule)                # doctest: +SKIP
>>> result = hb.analyze()                              # doctest: +SKIP
>>> print(result.summary())                            # doctest: +SKIP
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.clocks.schedule import ClockSchedule
from repro.core.algorithm1 import Algorithm1Result, run_algorithm1
from repro.core.algorithm2 import Algorithm2Result, run_algorithm2
from repro.core.model import AnalysisModel
from repro.core.report import SlowPath, extract_slow_paths, format_slow_paths
from repro.core.slack import SlackEngine
from repro.delay.estimator import DelayMap, DelayParameters, estimate_delays
from repro.netlist.network import Network


@dataclass
class TimingResult:
    """Outcome of one timing analysis."""

    algorithm1: Algorithm1Result
    slow_paths: List[SlowPath]
    preprocess_seconds: float
    analysis_seconds: float
    stats: Dict[str, int] = field(default_factory=dict)
    #: Combined CPU seconds (pre-processing + analysis) for manifests.
    cpu_seconds: float = 0.0
    #: Back-reference to the analyser that produced this result; set by
    #: :meth:`Hummingbird.analyze` and used by the forensics/manifest
    #: accessors below (excluded from comparisons and repr).
    analyzer: Optional["Hummingbird"] = field(
        default=None, repr=False, compare=False
    )

    @property
    def intended(self) -> bool:
        """True when the system behaves as intended (no slow paths)."""
        return self.algorithm1.intended

    @property
    def worst_slack(self) -> float:
        return self.algorithm1.worst_slack

    def summary(self) -> str:
        verdict = (
            "system behaves as intended"
            if self.intended
            else f"{len(self.slow_paths)} slow path(s)"
        )
        worst = self.worst_slack
        # A design with no constrained paths has +inf worst slack; print
        # "n/a" rather than a bare "inf".
        worst_text = "n/a" if math.isinf(worst) else f"{worst:.3f}"
        return (
            f"{self.stats.get('cells', '?')} cells, "
            f"{self.stats.get('nets', '?')} nets | "
            f"pre-processing {self.preprocess_seconds:.3f}s, "
            f"analysis {self.analysis_seconds:.3f}s | "
            f"worst slack {worst_text} | {verdict}"
        )

    def report(self, limit: int = 20) -> str:
        return self.summary() + "\n" + format_slow_paths(self.slow_paths, limit)

    def payload(self) -> Dict[str, object]:
        """Serialisable record of this result (``repro.result/1``).

        This is the document :class:`repro.service.cache.ResultCache`
        stores and the batch/daemon layers return: everything a client
        needs to *consume* an analysis (verdict, worst slack,
        per-endpoint slacks, iteration counts, cost) without the live
        model objects.  Infinities are encoded as ``"inf"``/``"-inf"``
        strings so the payload is strict JSON.
        """

        def _num(value: float) -> object:
            if isinstance(value, float) and math.isinf(value):
                return "inf" if value > 0 else "-inf"
            return value

        iterations = self.algorithm1.iterations
        return {
            "schema": "repro.result/1",
            "intended": self.intended,
            "converged": self.algorithm1.converged,
            "worst_slack": _num(self.worst_slack),
            "summary": self.summary(),
            "slow_paths": len(self.slow_paths),
            "endpoint_slacks": {
                name: _num(value)
                for name, value in sorted(
                    self.algorithm1.slacks.capture.items()
                )
            },
            "stats": {
                key: value
                for key, value in sorted(self.stats.items())
                if isinstance(value, (int, float))
            },
            "iterations": {
                "forward": iterations.forward,
                "backward": iterations.backward,
                "partial_forward": iterations.partial_forward,
                "partial_backward": iterations.partial_backward,
                "total": iterations.total,
            },
            "cost": {
                "preprocess_s": self.preprocess_seconds,
                "analysis_s": self.analysis_seconds,
                "cpu_s": self.cpu_seconds,
            },
        }

    # ------------------------------------------------------------------
    # forensics layer (see docs/reporting.md)
    # ------------------------------------------------------------------
    def _require_analyzer(self) -> "Hummingbird":
        if self.analyzer is None:
            raise ValueError(
                "this TimingResult is detached from its analyzer; "
                "forensics()/manifest() need the result returned by "
                "Hummingbird.analyze()"
            )
        return self.analyzer

    def forensics(self, endpoint: str):
        """Explain one endpoint's slack (``repro.report.PathForensics``).

        Returns an :class:`repro.report.EndpointForensics` with the full
        ``D_p`` / ``O_x`` / ``O_y`` / borrow-chain breakdown.
        """
        return self.path_forensics().explain(endpoint)

    def path_forensics(self):
        """The :class:`repro.report.PathForensics` engine for this run."""
        from repro.report.forensics import PathForensics

        analyzer = self._require_analyzer()
        return PathForensics(
            analyzer.model, analyzer.engine, self.algorithm1.slacks
        )

    def manifest(
        self,
        netlist_path=None,
        clocks_path=None,
        recorder=None,
        label: Optional[str] = None,
    ) -> Dict[str, object]:
        """The run manifest (``repro.manifest/1``) of this analysis."""
        from repro.report.manifest import build_manifest

        return build_manifest(
            self._require_analyzer(),
            self,
            netlist_path=netlist_path,
            clocks_path=clocks_path,
            recorder=recorder,
            label=label,
        )


class Hummingbird:
    """System-level timing analyser for latch-based multi-phase designs.

    Parameters
    ----------
    network:
        The design (cells, nets, synchronisers, pads, clock sources).
    schedule:
        The clock waveforms (harmonically related).
    delays:
        Pre-computed component delays; estimated from the cell library
        when omitted.
    delay_params:
        Estimation knobs (only used when ``delays`` is omitted).
    exhaustive_limit:
        Largest break-set size tried exhaustively in pass selection.
    clusters:
        Precomputed cluster partition of ``network`` (e.g. warmed from
        the cluster cache so reachability BFS is skipped); extracted
        from the network when omitted.
    """

    def __init__(
        self,
        network: Network,
        schedule: ClockSchedule,
        delays: Optional[DelayMap] = None,
        delay_params: Optional[DelayParameters] = None,
        exhaustive_limit: int = 4,
        clusters=None,
    ) -> None:
        self.network = network
        self.schedule = schedule
        # Monotonic wall-clock phase timing (perf_counter, not
        # process_time) so I/O-bound and multi-threaded runs report
        # consistently; `preprocess_seconds` keeps its historical meaning.
        started = time.perf_counter()
        started_cpu = time.process_time()
        with obs.span("analyzer.preprocess", category="analyzer"):
            with obs.span("analyzer.estimate_delays", category="analyzer"):
                self.delays = (
                    delays
                    if delays is not None
                    else estimate_delays(network, delay_params)
                )
            with obs.span("analyzer.build_model", category="analyzer"):
                self.model = AnalysisModel(
                    network,
                    schedule,
                    self.delays,
                    exhaustive_limit,
                    clusters=clusters,
                )
            with obs.span("analyzer.build_engine", category="analyzer"):
                self.engine = SlackEngine(self.model)
        self.preprocess_seconds = time.perf_counter() - started
        self.preprocess_cpu_seconds = time.process_time() - started_cpu
        rec = obs.active()
        if rec is not None:
            stats = self.model.stats()
            rec.gauge("model.clusters", stats.get("clusters", 0))
            rec.gauge("model.total_passes", stats.get("total_passes", 0))
            rec.gauge(
                "model.max_passes_per_cluster",
                stats.get("max_passes_per_cluster", 0),
            )
            rec.gauge(
                "model.generic_instances", stats.get("generic_instances", 0)
            )
        self._last_result: Optional[TimingResult] = None

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def analyze(
        self, slow_path_limit: Optional[int] = 50, tolerance: float = 0.0
    ) -> TimingResult:
        """Run Algorithm 1 and extract the slow paths."""
        started = time.perf_counter()
        started_cpu = time.process_time()
        with obs.span("analyzer.analysis", category="analyzer"):
            outcome = run_algorithm1(self.model, self.engine)
        analysis_seconds = time.perf_counter() - started
        analysis_cpu_seconds = time.process_time() - started_cpu
        with obs.span("analyzer.slow_paths", category="analyzer"):
            slow_paths = (
                []
                if outcome.intended
                else extract_slow_paths(
                    self.model,
                    self.engine,
                    outcome.slacks.capture,
                    tolerance=tolerance,
                    limit=slow_path_limit,
                )
            )
        stats = self.model.stats()
        stats["algorithm1_iterations"] = outcome.iterations.total
        stats["algorithm1_forward_cycles"] = outcome.iterations.forward
        stats["algorithm1_backward_cycles"] = outcome.iterations.backward
        result = TimingResult(
            algorithm1=outcome,
            slow_paths=slow_paths,
            preprocess_seconds=self.preprocess_seconds,
            analysis_seconds=analysis_seconds,
            stats=stats,
            cpu_seconds=self.preprocess_cpu_seconds + analysis_cpu_seconds,
            analyzer=self,
        )
        self._last_result = result
        return result

    def generate_constraints(self) -> Algorithm2Result:
        """Run Algorithm 2 (ready/required times for re-synthesis)."""
        with obs.span("analyzer.constraints", category="analyzer"):
            return run_algorithm2(self.model, self.engine)

    def statistics(self, histogram_bins: int = 8):
        """Aggregate endpoint statistics (WNS/TNS, per-clock, histogram)
        for the last analysis (runs one if needed)."""
        from repro.core.statistics import timing_statistics

        result = self._last_result or self.analyze()
        return timing_statistics(
            self.model, result.algorithm1.slacks, histogram_bins
        )

    def flag_slow_paths(self) -> int:
        """Mark cells on slow paths with ``attrs['slow_path'] = True``
        (the OCT-flag substitute).  Returns the number of flagged cells."""
        result = self._last_result or self.analyze()
        flagged = set()
        for path in result.slow_paths:
            for step in path.steps:
                flagged.add(step.cell_name)
        for name in flagged:
            self.network.cell(name).attrs["slow_path"] = True
        return len(flagged)

    # ------------------------------------------------------------------
    # what-if (interactive mode, Section 8)
    # ------------------------------------------------------------------
    def with_schedule(self, schedule: ClockSchedule) -> "Hummingbird":
        """A new analyser for the same design under different clocks
        (component delays are reused -- they do not depend on clocks)."""
        return Hummingbird(self.network, schedule, delays=self.delays)

    def with_delays(self, delays: DelayMap) -> "Hummingbird":
        """A new analyser with adjusted component delays."""
        return Hummingbird(self.network, self.schedule, delays=delays)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def table_row(self) -> Dict[str, object]:
        """A Table 1 style row for this design."""
        result = self._last_result or self.analyze()
        return {
            "design": self.network.name,
            "cells": result.stats.get("cells"),
            "nets": result.stats.get("nets"),
            "preprocess_s": round(result.preprocess_seconds, 4),
            "analysis_s": round(result.analysis_seconds, 4),
            "worst_slack": round(result.worst_slack, 4)
            if result.worst_slack != float("inf")
            else None,
            "intended": result.intended,
        }
