"""System-level timing analysis: the paper's primary contribution.

Layout (one module per concept of the paper):

* :mod:`repro.core.sync_elements` -- the generic synchronising-element
  model with terminal offsets (Sections 4-5, Figures 2-3),
* :mod:`repro.core.control_paths` -- control-path delays (``O_ac``),
* :mod:`repro.core.clusters` -- maximal combinational networks,
* :mod:`repro.core.ideal_constraints` -- ideal path constraints ``D_p``,
* :mod:`repro.core.breakopen` -- Section 7's minimum analysis-pass
  selection over the clock-edge graph,
* :mod:`repro.core.slack` -- block-method ready/required/slack evaluation,
* :mod:`repro.core.transfer` -- slack transfer and time snatching,
* :mod:`repro.core.algorithm1` -- identification of slow paths,
* :mod:`repro.core.algorithm2` -- timing-constraint generation,
* :mod:`repro.core.mindelay` -- supplementary (minimum-delay) constraints,
* :mod:`repro.core.frequency` -- maximum-frequency search,
* :mod:`repro.core.resynthesis` -- Algorithm 3's analysis-redesign loop,
* :mod:`repro.core.analyzer` -- the :class:`Hummingbird` facade,
* :mod:`repro.core.report` -- slow-path and constraint reports.
"""

from repro.core.analyzer import Hummingbird, TimingResult

__all__ = ["Hummingbird", "TimingResult"]
