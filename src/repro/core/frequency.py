"""Maximum-frequency search.

The original Hummingbird's interactive mode let users change "the shapes
of the clock waveforms to determine the effect on system timing"; the
natural closed-loop version is a binary search for the fastest clock
schedule under which Algorithm 1 reports the system behaves as intended.
All waveforms are scaled uniformly, preserving duty cycles and phase
relationships.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.clocks.schedule import ClockSchedule
from repro.core.algorithm1 import run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay.estimator import DelayMap
from repro.netlist.network import Network


@dataclass(frozen=True)
class FrequencySearchResult:
    """Outcome of the binary search."""

    #: Smallest feasible overall period found (None if even the upper
    #: bound fails).
    min_period: Optional[float]
    #: The feasible schedule at that period.
    schedule: Optional[ClockSchedule]
    evaluations: int

    @property
    def max_frequency(self) -> Optional[float]:
        if self.min_period is None or self.min_period == 0:
            return None
        return 1.0 / self.min_period


def _intended_at(
    network: Network, schedule: ClockSchedule, delays: DelayMap
) -> bool:
    model = AnalysisModel(network, schedule, delays)
    return run_algorithm1(model, SlackEngine(model)).intended


def find_max_frequency(
    network: Network,
    base_schedule: ClockSchedule,
    delays: DelayMap,
    lower_scale: float = 0.01,
    upper_scale: float = 100.0,
    tolerance: float = 1e-3,
    max_evaluations: int = 64,
) -> FrequencySearchResult:
    """Binary-search the uniform schedule scale for the fastest feasible
    clocks.

    ``tolerance`` is relative (the search stops when the bracket is within
    ``tolerance`` of the feasible scale).
    """
    evaluations = 0

    def feasible(scale: float) -> bool:
        nonlocal evaluations
        evaluations += 1
        scaled = base_schedule.scaled(Fraction(scale).limit_denominator(10**6))
        return _intended_at(network, scaled, delays)

    low, high = lower_scale, upper_scale
    if feasible(low):
        high = low
    elif not feasible(high):
        return FrequencySearchResult(None, None, evaluations)
    else:
        while (
            (high - low) > tolerance * high
            and evaluations < max_evaluations
        ):
            mid = (low + high) / 2.0
            if feasible(mid):
                high = mid
            else:
                low = mid

    best = base_schedule.scaled(Fraction(high).limit_denominator(10**6))
    return FrequencySearchResult(
        min_period=float(best.overall_period),
        schedule=best,
        evaluations=evaluations,
    )
