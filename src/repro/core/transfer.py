"""Slack transfer and time snatching (paper, Sections 6).

All operations act on the free ``(O_dz, O_zd)`` pair of a transparent
instance -- "the donation of spare time ... by one combinational logic
path to an adjacent one":

* *forward transfer* moves the window earlier (decreases both offsets),
  donating surplus input-side slack to the paths leaving the element;
* *backward transfer* moves the window later, donating output-side slack
  to the paths entering the element;
* *snatching* performs the same moves when the receiving side is *slow*
  (negative slack), "regardless of whether the adjacent path can spare
  it".

Every operation is clamped by the synchronising element constraints
(``m`` in the paper): an edge-triggered element has no freedom at all.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable

from repro import obs
from repro.core.sync_elements import GenericInstance
from repro.report.provenance import active_trail

#: Transfers smaller than this are treated as "no slack was transferred";
#: it bounds the fixed-point iterations against float dust.
TRANSFER_EPSILON = 1e-9


def complete_forward(instance: GenericInstance, input_slack: float) -> float:
    """Complete forward slack transfer across one element.

    Decreases the offsets by ``min(n_x, m)`` when positive, where ``n_x``
    is the node slack at the element's data input.  Returns the amount
    transferred (0.0 when none).
    """
    if not math.isfinite(input_slack):
        amount = instance.max_decrease
    else:
        amount = min(input_slack, instance.max_decrease)
    if amount <= TRANSFER_EPSILON:
        return 0.0
    instance.shift_window(-amount)
    return amount


def complete_backward(instance: GenericInstance, output_slack: float) -> float:
    """Complete backward slack transfer (increase by ``min(n_y, m)``)."""
    if not math.isfinite(output_slack):
        amount = instance.max_increase
    else:
        amount = min(output_slack, instance.max_increase)
    if amount <= TRANSFER_EPSILON:
        return 0.0
    instance.shift_window(amount)
    return amount


def partial_forward(
    instance: GenericInstance, input_slack: float, divisor: float = 2.0
) -> float:
    """Partial forward transfer: ``min(n_x / divisor, m)``, ``divisor > 1``.

    Used by Algorithm 1's iterations 3-4 to hand some slack back so that
    paths that are fast enough end with strictly positive slacks.
    """
    if divisor <= 1.0:
        raise ValueError("divisor must be > 1")
    if not math.isfinite(input_slack):
        amount = instance.max_decrease
    else:
        amount = min(input_slack / divisor, instance.max_decrease)
    if amount <= TRANSFER_EPSILON:
        return 0.0
    instance.shift_window(-amount)
    return amount


def partial_backward(
    instance: GenericInstance, output_slack: float, divisor: float = 2.0
) -> float:
    """Partial backward transfer: ``min(n_y / divisor, m)``."""
    if divisor <= 1.0:
        raise ValueError("divisor must be > 1")
    if not math.isfinite(output_slack):
        amount = instance.max_increase
    else:
        amount = min(output_slack / divisor, instance.max_increase)
    if amount <= TRANSFER_EPSILON:
        return 0.0
    instance.shift_window(amount)
    return amount


def snatch_forward(instance: GenericInstance, output_slack: float) -> float:
    """Forward time snatching: when the output side is slow (negative
    node slack), pull the window earlier by ``min(-n_y, m)``."""
    if output_slack >= 0 or not math.isfinite(output_slack):
        return 0.0
    amount = min(-output_slack, instance.max_decrease)
    if amount <= TRANSFER_EPSILON:
        return 0.0
    instance.shift_window(-amount)
    return amount


def snatch_backward(instance: GenericInstance, input_slack: float) -> float:
    """Backward time snatching: when the input side is slow, push the
    window later by ``min(-n_x, m)``."""
    if input_slack >= 0 or not math.isfinite(input_slack):
        return 0.0
    amount = min(-input_slack, instance.max_increase)
    if amount <= TRANSFER_EPSILON:
        return 0.0
    instance.shift_window(amount)
    return amount


#: Transfer direction by operator name; backward operations move the
#: window later, so their donor is the *output*-side path.
_BACKWARD_OPS = frozenset(
    {"complete_backward", "partial_backward", "snatch_backward"}
)


def sweep(
    instances: Iterable[GenericInstance],
    slacks: Dict[str, float],
    operation,
    phase: str = "",
    cycle: int = 0,
    **kwargs,
) -> float:
    """Apply ``operation`` across all adjustable instances.

    ``slacks`` supplies the relevant node slack by instance name (input
    slacks for forward/partial-forward/backward-snatch, output slacks
    otherwise).  ``phase``/``cycle`` label the Algorithm 1 iteration for
    the provenance trail.  Returns the total amount moved.

    When recording is enabled, each sweep publishes per-operation
    counters (``transfer.<op>.sweeps`` / ``.transfers`` / ``.moved``) --
    this is where the slack-transfer and time-snatch totals in the
    metrics dump come from.  When a :class:`repro.report.AuditTrail` is
    installed (``repro.report.auditing()``), every individual move is
    additionally recorded as a :class:`repro.report.TransferEvent` with
    donor/recipient path endpoints; with no trail installed the only
    overhead is one global read per sweep.
    """
    total = 0.0
    transfers = 0
    trail = active_trail()
    op_name = operation.__name__
    backward = op_name in _BACKWARD_OPS
    for instance in instances:
        if not instance.adjustable:
            continue
        slack = slacks.get(instance.name, math.inf)
        before = instance.w
        amount = operation(instance, slack, **kwargs)
        if amount != 0.0:
            transfers += 1
            total += amount
            if trail is not None:
                data_in = instance.terminal_in or f"{instance.cell_name}.D"
                data_out = instance.terminal_out or f"{instance.cell_name}.Q"
                # Forward moves donate input-side slack to the paths
                # leaving the element; backward moves donate output-side
                # slack to the paths entering it.
                donor, recipient = (
                    (data_out, data_in) if backward else (data_in, data_out)
                )
                trail.record(
                    phase=phase,
                    cycle=cycle,
                    operation=op_name,
                    instance=instance.name,
                    cell=instance.cell_name,
                    donor=donor,
                    recipient=recipient,
                    amount=amount,
                    window_before=before,
                    window_after=instance.w,
                    driving_slack=slack,
                )
    rec = obs.active()
    if rec is not None:
        rec.counter(f"transfer.{op_name}.sweeps")
        rec.counter(f"transfer.{op_name}.transfers", transfers)
        rec.counter(f"transfer.{op_name}.moved", total)
    return total
