"""Batch scheduler: many designs through the analyzer, in parallel.

The engine runs a *job set* -- (netlist, clocks, config) triples --
through four phases:

1. **Plan** -- each job is digested.  On a *warm* run the parent
   parses nothing: a :class:`SourceMap` persisted next to the result
   cache maps the SHA-256 of the job's **raw source bytes** + config
   (:func:`repro.service.digest.source_digest`) to the content address
   and structural fingerprint observed the last time this exact source
   ran, so planning is pure file I/O + hashing.  Unknown sources fall
   back to the parse path: the design is parsed once in the parent,
   its content digests computed (:mod:`repro.service.digest`) and a
   cheap structural fingerprint extracted -- the clock-domain set
   (:func:`repro.core.domains.clock_domains`) and the cluster profile
   (:func:`repro.core.clusters.extract_clusters`); workers report the
   fingerprint back so the map learns it for next time.  Jobs are
   grouped by clock-domain *partition* and ordered
   largest-cluster-first inside each partition (LPT), so heavy jobs
   start early and jobs that share clocking structure land on the same
   worker wave.
2. **Cache probe** -- each job's content address is looked up in the
   :class:`repro.service.cache.ResultCache`; hits are answered without
   touching a worker (zero Algorithm 1 iterations).
3. **Fan-out** -- misses are submitted to a ``ProcessPoolExecutor``
   (:func:`repro.service.workers.run_job`) with a per-job timeout and a
   bounded retry budget.  A dead worker (``BrokenProcessPool``) poisons
   the whole pool, so the engine collects what finished, rebuilds the
   pool and resubmits the survivors.  Jobs that exhaust their retries
   degrade gracefully to in-process serial execution -- the batch always
   completes.
4. **Store** -- computed results (payload + manifest) are written back
   to the cache and, optionally, to a manifest directory.

Everything is observable: ``service.batch.*`` counters, a
``service.batch.queue_depth`` gauge and a ``service.batch.job_seconds``
histogram (see ``docs/observability.md``).
"""

from __future__ import annotations

import concurrent.futures
import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.obs import live
from repro.obs.accesslog import AccessLog
from repro.obs.hist import LATENCY_BUCKETS
from repro.service.cache import ResultCache
from repro.service.cluster_cache import ClusterCache
from repro.service.digest import (
    analysis_config,
    cache_key,
    canonical_json,
    config_digest,
    network_digest,
    schedule_digest,
    source_digest,
)
from repro.service.workers import job_spec, run_job

try:  # BrokenProcessPool moved in 3.7; guard for exotic builds.
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = RuntimeError  # type: ignore[misc,assignment]

__all__ = [
    "BATCH_SCHEMA",
    "SOURCES_SCHEMA",
    "BatchEngine",
    "BatchJob",
    "BatchReport",
    "JobOutcome",
    "SourceMap",
    "load_jobs",
]

#: Schema identifier of a batch job-set file.
BATCH_SCHEMA = "repro.batch/1"

#: Schema identifier of the persisted source-digest planning map.
SOURCES_SCHEMA = "repro.cache-sources/1"


class SourceMap:
    """``source_digest -> planning facts``: the warm-plan fast path.

    :meth:`BatchEngine.plan` used to parse every design in the parent
    just to digest it -- on a warm run, where every job is answered
    from the cache, that parse was the whole batch cost.  This map
    (persisted as ``sources.json`` next to the result cache) remembers,
    per *raw-source* digest, the content address and structural
    fingerprint (clock-domain partition, LPT weight) observed the last
    time those exact bytes were planned.  A map hit plans a job with
    zero parsing; a miss -- new source bytes, edited file, evicted map
    entry -- falls back to the parse path, so the map can degrade but
    never lie: the source digest covers the netlist bytes, the clock
    bytes and the analysis config, exactly the inputs the parse-derived
    key is a function of.

    Entries are bounded (insertion-ordered, oldest dropped) and the
    file is advisory: a corrupt or missing map is treated as empty.
    """

    def __init__(
        self, path: Union[str, Path], max_entries: int = 4096
    ) -> None:
        self.path = Path(path)
        self.max_entries = max_entries
        self._entries: Optional[Dict[str, Dict[str, object]]] = None
        self._dirty = False

    def _load(self) -> Dict[str, Dict[str, object]]:
        if self._entries is None:
            entries: Dict[str, Dict[str, object]] = {}
            try:
                data = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError):
                data = None
            if (
                isinstance(data, dict)
                and data.get("schema") == SOURCES_SCHEMA
                and isinstance(data.get("sources"), dict)
            ):
                for source, row in data["sources"].items():
                    if (
                        isinstance(row, dict)
                        and isinstance(row.get("key"), str)
                        and isinstance(row.get("partition"), list)
                    ):
                        entries[str(source)] = {
                            "key": row["key"],
                            "partition": [
                                str(d) for d in row["partition"]
                            ],
                            "weight": int(row.get("weight") or 0),
                        }
            self._entries = entries
        return self._entries

    def get(self, source: str) -> Optional[Dict[str, object]]:
        return self._load().get(source)

    def record(
        self,
        source: str,
        key: str,
        partition: Sequence[str],
        weight: int,
    ) -> None:
        entries = self._load()
        existing = entries.pop(source, None)
        if (
            not weight
            and existing is not None
            and existing.get("key") == key
        ):
            # Don't let a weightless probe-hit record (hits are never
            # weighed) clobber a real weight learned from a worker.
            weight = int(existing.get("weight") or 0)
        entries[source] = {
            "key": key,
            "partition": [str(d) for d in partition],
            "weight": int(weight),
        }
        while len(entries) > self.max_entries:
            entries.pop(next(iter(entries)))
        self._dirty = True

    def flush(self) -> None:
        """Persist (atomic rename); advisory, so failures are silent."""
        if not self._dirty or self._entries is None:
            return
        doc = {"schema": SOURCES_SCHEMA, "sources": self._entries}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(".json.tmp")
            tmp.write_text(canonical_json(doc))
            tmp.replace(self.path)
            self._dirty = False
        except OSError:
            pass

    def __len__(self) -> int:
        return len(self._load())


@dataclass(frozen=True)
class BatchJob:
    """One unit of batch work: a design under a clock schedule."""

    name: str
    netlist: str
    clocks: str
    default_clock: Optional[str] = None
    slow_path_limit: Optional[int] = 50
    tolerance: float = 0.0
    #: Fault-injection hooks, forwarded verbatim to the worker spec
    #: (tests/CI only; see :mod:`repro.service.workers`).
    inject: Tuple[Tuple[str, object], ...] = ()

    def spec(self) -> Dict[str, object]:
        return job_spec(
            self.name,
            self.netlist,
            self.clocks,
            default_clock=self.default_clock,
            slow_path_limit=self.slow_path_limit,
            tolerance=self.tolerance,
            **dict(self.inject),
        )


@dataclass
class JobOutcome:
    """What happened to one job."""

    job: BatchJob
    #: ``"cached"`` | ``"computed"`` | ``"failed"``
    status: str
    key: Optional[str] = None
    partition: Optional[Tuple[str, ...]] = None
    payload: Optional[Dict[str, object]] = None
    manifest: Optional[Dict[str, object]] = None
    attempts: int = 0
    seconds: float = 0.0
    worker_pid: Optional[int] = None
    #: True when the job ran in-process after worker retries ran out.
    serial_fallback: bool = False
    error: Optional[str] = None
    #: Worker postmortem for failed jobs (``repro.crash/1``: structured
    #: frames + all-thread worker stacks); ``None`` on success or when
    #: the failure happened before a worker ran (plan errors).
    crash: Optional[Dict[str, object]] = None
    counters: Dict[str, float] = field(default_factory=dict)
    #: Submit -> worker-pickup wall seconds (``None`` for cache hits
    #: and untraced runs; wall-clock, so cross-process skew applies).
    queue_wait_s: Optional[float] = None
    #: Cluster-cache summary from the worker (``None`` when the
    #: cluster cache is disabled or the job was a full-triple hit):
    #: ``{"clusters": n, "hits": h, "recomputed": r, "hit_rate": f}``.
    cluster_cache: Optional[Dict[str, object]] = None
    #: Worker-side ``repro.profile/1`` document (``None`` unless the
    #: engine ran with ``profile_hz`` and the job actually computed).
    profile: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.status in ("cached", "computed")

    @property
    def intended(self) -> Optional[bool]:
        if self.payload is None:
            return None
        return bool(self.payload.get("intended"))


@dataclass
class BatchReport:
    """Aggregate of one :meth:`BatchEngine.run`."""

    outcomes: List[JobOutcome]
    wall_seconds: float
    cache_stats: Dict[str, int]

    @property
    def jobs(self) -> int:
        return len(self.outcomes)

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "computed")

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    @property
    def violations(self) -> int:
        return sum(1 for o in self.outcomes if o.intended is False)

    @property
    def hit_rate(self) -> float:
        return self.cached / self.jobs if self.jobs else 0.0

    @property
    def total_iterations(self) -> int:
        """Algorithm 1 iterations actually *run* by this batch (cache
        hits contribute zero -- the whole point of the cache)."""
        return int(
            sum(
                o.counters.get("alg1.iterations_total", 0)
                for o in self.outcomes
                if o.status == "computed"
            )
        )

    @property
    def cluster_hits(self) -> int:
        """Cluster-level sub-key hits across computed jobs."""
        return int(
            sum(
                (o.cluster_cache or {}).get("hits", 0)
                for o in self.outcomes
            )
        )

    @property
    def cluster_recomputed(self) -> int:
        """Dirty clusters whose artifacts had to be recomputed."""
        return int(
            sum(
                (o.cluster_cache or {}).get("recomputed", 0)
                for o in self.outcomes
            )
        )

    @property
    def cluster_hit_rate(self) -> float:
        total = self.cluster_hits + self.cluster_recomputed
        return self.cluster_hits / total if total else 0.0

    def exit_code(self) -> int:
        """CLI convention: 0 clean, 1 timing violations, 2 failures."""
        if self.failed:
            return 2
        if self.violations:
            return 1
        return 0

    def merged_profile(
        self, *extra: Optional[Dict[str, object]]
    ) -> Optional[Dict[str, object]]:
        """One ``repro.profile/1`` document across every profiled worker.

        ``extra`` documents (e.g. a parent-process profile captured
        around :meth:`BatchEngine.run`) merge in too, so the exported
        speedscope spans the whole batch -- parent and workers side by
        side, one tab per pid.  Returns ``None`` when nothing profiled.
        """
        from repro.obs.profile import merge_profiles

        docs = [o.profile for o in self.outcomes if o.profile]
        docs.extend(d for d in extra if d)
        if not docs:
            return None
        return merge_profiles(docs)

    def to_dict(self) -> Dict[str, object]:
        """The ``repro.batchstats/1`` document (CI artifact)."""
        return {
            "schema": "repro.batchstats/1",
            "jobs": self.jobs,
            "cached": self.cached,
            "computed": self.computed,
            "failed": self.failed,
            "violations": self.violations,
            "hit_rate": round(self.hit_rate, 4),
            "wall_s": round(self.wall_seconds, 6),
            "alg1_iterations_total": self.total_iterations,
            "cache": self.cache_stats,
            "cluster_cache": {
                "hits": self.cluster_hits,
                "recomputed": self.cluster_recomputed,
                "hit_rate": round(self.cluster_hit_rate, 4),
            },
            "outcomes": [
                {
                    "name": o.job.name,
                    "status": o.status,
                    "key": o.key,
                    "partition": list(o.partition or ()),
                    "attempts": o.attempts,
                    "seconds": round(o.seconds, 6),
                    "serial_fallback": o.serial_fallback,
                    "intended": o.intended,
                    "worst_slack": (o.payload or {}).get("worst_slack"),
                    "manifest_digest": _maybe_manifest_digest(o.manifest),
                    "cluster_cache": o.cluster_cache,
                    "error": o.error,
                    "crash": o.crash,
                }
                for o in self.outcomes
            ],
        }

    def render_text(self) -> str:
        lines = []
        for o in self.outcomes:
            verdict = (
                "intended"
                if o.intended
                else ("VIOLATED" if o.intended is False else "-")
            )
            note = " [serial-fallback]" if o.serial_fallback else ""
            err = f" ({o.error})" if o.error else ""
            crash_error = (o.crash or {}).get("error")
            if isinstance(crash_error, dict):
                frames = crash_error.get("frames") or []
                if frames:
                    last = frames[-1]
                    err += (
                        f" @ {last.get('file')}:{last.get('line')} "
                        f"in {last.get('function')}"
                    )
            lines.append(
                f"{o.job.name:<24} {o.status:<9} {o.seconds:>8.3f}s "
                f"attempts={o.attempts} {verdict}{note}{err}"
            )
        lines.append(
            f"batch: {self.jobs} job(s), {self.cached} cached, "
            f"{self.computed} computed, {self.failed} failed | "
            f"hit rate {self.hit_rate:.0%} | "
            f"alg1 iterations {self.total_iterations} | "
            f"wall {self.wall_seconds:.3f}s"
        )
        if self.cluster_hits or self.cluster_recomputed:
            lines.append(
                f"clusters: {self.cluster_hits} cached, "
                f"{self.cluster_recomputed} recomputed | "
                f"cluster hit rate {self.cluster_hit_rate:.0%}"
            )
        return "\n".join(lines)


def _maybe_manifest_digest(manifest):
    if not manifest:
        return None
    from repro.report.manifest import manifest_digest

    return manifest_digest(manifest)


def load_jobs(path: Union[str, Path]) -> List[BatchJob]:
    """Parse a ``repro.batch/1`` job-set file.

    Relative netlist/clock paths are resolved against the job file's
    directory, so a job set is a self-contained artifact.
    """
    path = Path(path)
    data = json.loads(path.read_text())
    if data.get("schema") != BATCH_SCHEMA:
        raise ValueError(
            f"{path}: not a {BATCH_SCHEMA} job set "
            f"(schema={data.get('schema')!r})"
        )
    base = path.parent
    jobs = []
    seen = set()
    for index, entry in enumerate(data.get("jobs", ())):
        name = str(entry.get("name") or f"job_{index}")
        if name in seen:
            raise ValueError(f"{path}: duplicate job name {name!r}")
        seen.add(name)
        for field_name in ("netlist", "clocks"):
            if field_name not in entry:
                raise ValueError(
                    f"{path}: job {name!r} missing {field_name!r}"
                )
        jobs.append(
            BatchJob(
                name=name,
                netlist=str(base / entry["netlist"]),
                clocks=str(base / entry["clocks"]),
                default_clock=entry.get("default_clock"),
                slow_path_limit=entry.get("slow_path_limit", 50),
                tolerance=float(entry.get("tolerance", 0.0)),
            )
        )
    if not jobs:
        raise ValueError(f"{path}: empty job set")
    return jobs


@dataclass
class _Plan:
    """Parent-side planning facts for one job."""

    job: BatchJob
    key: str
    partition: Tuple[str, ...]
    #: Combinational cell count -- the LPT weight.
    weight: int
    #: Planning-time failure (unreadable file, unknown format); the job
    #: is reported as failed without ever reaching a worker.
    error: Optional[str] = None
    #: Parsed network, held only until the job is weighed or answered
    #: from the cache (dropped immediately after -- see
    #: :meth:`BatchEngine.run`).
    network: Optional[object] = field(default=None, repr=False)
    #: Raw-source digest of this job (``None`` when the engine runs
    #: without a cache and therefore without a :class:`SourceMap`).
    source: Optional[str] = None
    #: Weight remembered by the source map (fast-path plans only);
    #: :meth:`weigh` falls back to it when there is no held network.
    cached_weight: Optional[int] = None

    def weigh(self) -> None:
        """Compute the LPT weight from the held network, then drop it.

        Weighing parses the cluster structure, which costs as much as
        the digest itself -- so it is deferred until we know the job
        actually misses the cache.  A fast-path plan (no parsed
        network) falls back to the weight the source map remembered.
        """
        from repro.core.clusters import extract_clusters

        if self.network is not None:
            clusters = extract_clusters(self.network)
            self.weight = sum(len(c.cells) for c in clusters)
            self.network = None
        elif not self.weight and self.cached_weight:
            self.weight = self.cached_weight


class BatchEngine:
    """Schedule a job set over cache + worker pool.

    Parameters
    ----------
    cache:
        Result cache; ``None`` disables caching (every job computes).
    max_workers:
        Process-pool width (default: ``os.cpu_count()`` capped at 8).
    job_timeout:
        Per-job seconds before the job is considered hung and retried;
        ``None`` waits forever.
    retries:
        How many times a crashed/timed-out/failed job is re-dispatched
        to a worker before degrading to in-process serial execution.
    serial:
        Force in-process execution (no worker pool at all).
    access_log:
        Optional :class:`repro.obs.accesslog.AccessLog` (or a path to
        open one); :meth:`run` appends one ``kind="batch"`` JSON line
        per job outcome.
    cluster_cache:
        Optional :class:`repro.service.cluster_cache.ClusterCache` (or
        a directory path to open one).  When set, every *miss* job's
        worker probes the per-cluster sub-key store: clean clusters
        load their artifacts, only dirty clusters recompute.  Workers
        open their own handle on the same directory (atomic writes +
        advisory index make concurrent access safe), so only the root
        path travels in the job spec.
    profile_hz:
        When set, every computed job runs under a worker-side
        :class:`repro.obs.profile.SamplingProfiler` at this rate; the
        per-job ``repro.profile/1`` documents come back on the
        :class:`JobOutcome` rows and merge via
        :meth:`BatchReport.merged_profile`.
    peers:
        Cache-fabric peer URLs (see :mod:`repro.service.fabric`),
        forwarded to every worker so their cluster caches probe the
        fabric too.  The *result* cache tier is the caller's choice:
        pass a :class:`~repro.service.fabric.TieredCache` as ``cache``
        (the CLI does) to make the probe phase fabric-aware.
    peer_timeout_s:
        Per-request timeout workers use against the fabric peers.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        max_workers: Optional[int] = None,
        job_timeout: Optional[float] = None,
        retries: int = 1,
        serial: bool = False,
        access_log: Union[AccessLog, str, Path, None] = None,
        cluster_cache: Union[ClusterCache, str, Path, None] = None,
        profile_hz: Optional[float] = None,
        peers: Optional[Sequence[str]] = None,
        peer_timeout_s: float = 2.0,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if profile_hz is not None and profile_hz <= 0:
            raise ValueError("profile_hz must be > 0")
        self.profile_hz = profile_hz
        self.cache = cache
        self.max_workers = max_workers
        self.job_timeout = job_timeout
        self.retries = retries
        self.serial = serial
        if access_log is None or isinstance(access_log, AccessLog):
            self.access_log: Optional[AccessLog] = access_log
        else:
            self.access_log = AccessLog(access_log)
        if cluster_cache is None or isinstance(
            cluster_cache, ClusterCache
        ):
            self.cluster_cache: Optional[ClusterCache] = cluster_cache
        else:
            self.cluster_cache = ClusterCache(cluster_cache)
        self.peers: Tuple[str, ...] = tuple(peers or ())
        self.peer_timeout_s = float(peer_timeout_s)
        # The warm-plan fast path persists next to the result cache;
        # no cache, no map (and plan() always takes the parse path).
        root = getattr(cache, "root", None)
        self._sources: Optional[SourceMap] = (
            SourceMap(Path(root) / "sources.json")
            if root is not None
            else None
        )

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(
        self, jobs: Sequence[BatchJob], weigh: bool = True
    ) -> List[_Plan]:
        """Digest + fingerprint every job, then order the queue.

        Jobs are grouped by clock-domain partition and sorted
        largest-first within a partition (longest-processing-time
        heuristic), so stragglers start early.  With ``weigh=False``
        the cluster weight is left for :meth:`_Plan.weigh` -- the
        warm-run fast path, where cache hits never need it.

        When the engine has a cache (and therefore a
        :class:`SourceMap`), jobs whose raw-source digest the map
        already knows are planned **without parsing anything** -- the
        planner output (key, partition, queue order) is identical to
        what the parse path would produce, because the map only ever
        stores what the parse path (or a worker) actually observed for
        those exact bytes.
        """
        from repro.core.domains import clock_domains

        plans: List[_Plan] = []
        with obs.span("service.batch.plan", category="service"):
            for job in jobs:
                fast = self._plan_from_source(job, weigh)
                if fast is not None:
                    plans.append(fast)
                    continue
                try:
                    network, schedule = _load_design(job)
                except (OSError, ValueError, KeyError) as exc:
                    obs.counter("service.batch.failures")
                    obs.event(
                        "service.batch.plan_error",
                        job=job.name,
                        error=str(exc),
                    )
                    plans.append(_Plan(job, "", (), 0, error=str(exc)))
                    continue
                obs.counter("service.batch.plan_parsed")
                config = analysis_config(
                    slow_path_limit=job.slow_path_limit,
                    tolerance=job.tolerance,
                )
                key = cache_key(
                    network_digest(network),
                    schedule_digest(schedule),
                    config_digest(config),
                )
                partition = clock_domains(network)
                plan = _Plan(job, key, partition, 0, network=network)
                plan.source = self._source_of(job)
                if weigh:
                    plan.weigh()
                plans.append(plan)
        plans.sort(key=lambda p: (p.partition, -p.weight, p.job.name))
        return plans

    @staticmethod
    def _source_of(job: BatchJob) -> Optional[str]:
        """Raw-bytes digest of one job's inputs (``None`` on I/O error)."""
        try:
            netlist_bytes = Path(job.netlist).read_bytes()
            clocks_bytes = Path(job.clocks).read_bytes()
        except OSError:
            return None
        return source_digest(
            netlist_bytes,
            clocks_bytes,
            job.default_clock,
            analysis_config(
                slow_path_limit=job.slow_path_limit,
                tolerance=job.tolerance,
            ),
        )

    def _plan_from_source(
        self, job: BatchJob, weigh: bool
    ) -> Optional[_Plan]:
        """Plan one job from the source map, or ``None`` to parse."""
        if self._sources is None:
            return None
        source = self._source_of(job)
        if source is None:
            return None  # let the parse path report the I/O error
        entry = self._sources.get(source)
        if entry is None:
            return None
        obs.counter("service.batch.plan_fast")
        weight = int(entry.get("weight") or 0)
        plan = _Plan(
            job,
            str(entry["key"]),
            tuple(entry["partition"]),  # type: ignore[arg-type]
            weight if weigh else 0,
        )
        plan.source = source
        plan.cached_weight = weight
        return plan

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[BatchJob]) -> BatchReport:
        """Run the whole job set; always returns a complete report."""
        started = time.perf_counter()
        with obs.span("service.batch.run", category="service"):
            plans = self.plan(jobs, weigh=False)
            outcomes: Dict[str, JobOutcome] = {}
            misses: List[_Plan] = []
            for plan in plans:
                obs.counter("service.batch.jobs")
                if plan.error is not None:
                    outcomes[plan.job.name] = JobOutcome(
                        job=plan.job,
                        status="failed",
                        key=None,
                        partition=plan.partition,
                        error=plan.error,
                    )
                    continue
                hit = (
                    self.cache.get(plan.key)
                    if self.cache is not None
                    else None
                )
                if hit is not None:
                    plan.network = None  # hits never need the weight
                    self._record_source(plan, plan.weight)
                    outcomes[plan.job.name] = JobOutcome(
                        job=plan.job,
                        status="cached",
                        key=plan.key,
                        partition=plan.partition,
                        payload=hit.get("payload"),  # type: ignore[arg-type]
                        manifest=hit.get("manifest"),  # type: ignore[arg-type]
                    )
                else:
                    misses.append(plan)
            if misses:
                # Weigh only the jobs that actually run, then re-apply
                # the LPT order within each partition.
                for plan in misses:
                    plan.weigh()
                misses.sort(
                    key=lambda p: (p.partition, -p.weight, p.job.name)
                )
                self._execute(misses, outcomes)
        report = BatchReport(
            outcomes=[outcomes[plan.job.name] for plan in plans],
            wall_seconds=time.perf_counter() - started,
            cache_stats=(
                self.cache.stats.to_dict()
                if self.cache is not None
                else {}
            ),
        )
        rec = obs.active()
        if rec is not None:
            rec.gauge("service.batch.hit_rate", report.hit_rate)
        # Persist write-behind recency from the probe phase's hits.
        if self.cache is not None:
            self.cache.flush()
        if self.cluster_cache is not None:
            self.cluster_cache.flush()
        if self._sources is not None:
            self._sources.flush()
        self._log_outcomes(report)
        return report

    def _spec(self, plan: _Plan) -> Dict[str, object]:
        """Build the worker spec, stamping trace context + submit time.

        When a recorder is active, each job gets its own
        ``repro.trace/1`` context (one parent-span id per dispatch) and
        a ``service.batch.submit`` event anchors the Chrome flow arrow
        from the batch run to the worker's ``service.worker.job`` span.
        ``submitted_wall`` lets the worker report queue wait.
        """
        spec = plan.job.spec()
        spec["submitted_wall"] = time.time()
        if self.profile_hz is not None:
            spec["profile"] = {"hz": self.profile_hz}
        if self.cluster_cache is not None:
            spec["cluster_cache"] = {
                "root": str(self.cluster_cache.root),
                "max_entries": self.cluster_cache.max_entries,
            }
            if self.peers:
                spec["cluster_cache"]["peers"] = list(self.peers)
                spec["cluster_cache"]["peer_timeout_s"] = (
                    self.peer_timeout_s
                )
        ctx = live.trace_context()
        if ctx is not None:
            spec["trace"] = ctx
            obs.event(
                "service.batch.submit",
                job=plan.job.name,
                **live.span_args(ctx),
            )
        return spec

    def _log_outcomes(self, report: BatchReport) -> None:
        if self.access_log is None:
            return
        for o in report.outcomes:
            self.access_log.record(
                "batch",
                "job",
                o.job.name,
                "ok" if o.ok else "error",
                o.seconds,
                cache_hit=o.status == "cached",
                job_status=o.status,
                attempts=o.attempts,
                worker_pid=o.worker_pid,
                queue_wait_s=o.queue_wait_s,
                serial_fallback=o.serial_fallback,
                error=o.error,
            )

    def _execute(
        self,
        misses: List[_Plan],
        outcomes: Dict[str, JobOutcome],
    ) -> None:
        attempts = {plan.job.name: 0 for plan in misses}
        pending = list(misses)
        while pending:
            obs.gauge("service.batch.queue_depth", len(pending))
            if self.serial:
                for plan in pending:
                    self._run_serial(
                        plan, attempts, outcomes, fallback=False
                    )
                break
            retry: List[_Plan] = []
            fallback: List[_Plan] = []
            pool = ProcessPoolExecutor(max_workers=self.max_workers)
            broken = False
            try:
                futures = {}
                for plan in pending:
                    attempts[plan.job.name] += 1
                    futures[pool.submit(run_job, self._spec(plan))] = (
                        plan,
                        time.perf_counter(),
                    )
                for future, (plan, submitted) in futures.items():
                    name = plan.job.name
                    try:
                        document = future.result(
                            timeout=self.job_timeout
                        )
                    except concurrent.futures.TimeoutError:
                        obs.counter("service.batch.timeouts")
                        broken = True  # hung worker: rebuild the pool
                        self._reschedule(
                            plan, attempts, retry, fallback, "timeout"
                        )
                        continue
                    except BrokenProcessPool:
                        obs.counter("service.batch.worker_crashes")
                        broken = True
                        self._reschedule(
                            plan, attempts, retry, fallback,
                            "worker crashed",
                        )
                        continue
                    except Exception as exc:  # pragma: no cover
                        self._reschedule(
                            plan, attempts, retry, fallback, str(exc)
                        )
                        continue
                    seconds = time.perf_counter() - submitted
                    if document.get("ok"):
                        self._record_success(
                            plan,
                            document,
                            attempts[name],
                            seconds,
                            outcomes,
                        )
                    else:
                        self._reschedule(
                            plan,
                            attempts,
                            retry,
                            fallback,
                            document.get("error", "worker error"),
                        )
            finally:
                if broken:
                    # Don't wait on a broken/hung pool; reclaim slots.
                    procs = list(
                        (getattr(pool, "_processes", None) or {}).values()
                    )
                    pool.shutdown(wait=False, cancel_futures=True)
                    for proc in procs:
                        try:
                            proc.terminate()
                        except (OSError, ValueError):  # pragma: no cover
                            pass
                else:
                    pool.shutdown(wait=True)
            for plan in fallback:
                self._run_serial(plan, attempts, outcomes)
            if retry:
                obs.counter("service.batch.retries", len(retry))
            pending = retry
        obs.gauge("service.batch.queue_depth", 0)

    def _reschedule(
        self,
        plan: _Plan,
        attempts: Dict[str, int],
        retry: List[_Plan],
        fallback: List[_Plan],
        reason: str,
    ) -> None:
        obs.event(
            "service.batch.job_retry",
            job=plan.job.name,
            attempt=attempts[plan.job.name],
            reason=reason,
        )
        if attempts[plan.job.name] <= self.retries:
            retry.append(plan)
        else:
            fallback.append(plan)

    def _run_serial(
        self,
        plan: _Plan,
        attempts: Dict[str, int],
        outcomes: Dict[str, JobOutcome],
        fallback: bool = True,
    ) -> None:
        """Run the job in this process.

        ``fallback=True`` is the graceful-degradation path (worker
        retries exhausted); ``fallback=False`` is the engine's forced
        ``serial=True`` mode, which is not a degradation and is not
        counted as one.
        """
        if fallback:
            obs.counter("service.batch.serial_fallbacks")
        attempts[plan.job.name] += 1
        started = time.perf_counter()
        document = run_job(self._spec(plan))
        seconds = time.perf_counter() - started
        if document.get("ok"):
            self._record_success(
                plan,
                document,
                attempts[plan.job.name],
                seconds,
                outcomes,
                serial=fallback,
            )
        else:
            obs.counter("service.batch.failures")
            crash = document.get("crash")
            outcomes[plan.job.name] = JobOutcome(
                job=plan.job,
                status="failed",
                key=plan.key,
                partition=plan.partition,
                attempts=attempts[plan.job.name],
                seconds=seconds,
                serial_fallback=fallback,
                error=document.get("error"),  # type: ignore[arg-type]
                crash=crash if isinstance(crash, dict) else None,
            )

    def _record_success(
        self,
        plan: _Plan,
        document: Dict[str, object],
        attempts: int,
        seconds: float,
        outcomes: Dict[str, JobOutcome],
        serial: bool = False,
    ) -> None:
        obs.histogram("service.batch.job_seconds", seconds)
        live.merge_snapshot(obs.active(), document.get("trace"))
        queue_wait = document.get("queue_wait_s")
        if isinstance(queue_wait, (int, float)):
            queue_wait = float(queue_wait)
            obs.histogram(
                "service.batch.queue_wait_seconds",
                queue_wait,
                LATENCY_BUCKETS,
            )
        else:
            queue_wait = None
        payload = document.get("payload")
        manifest = document.get("manifest")
        counters = document.get("counters") or {}
        # Worker-side cluster-cache tallies arrive both as summary
        # (for the outcome row) and as counters inside the worker's
        # obs snapshot, which live.merge_snapshot above already folded
        # into this recorder -- no extra mirroring here or the
        # `batch --metrics` dump would double-count.
        cluster_info = document.get("cluster_cache")
        profile_doc = document.get("profile")
        outcomes[plan.job.name] = JobOutcome(
            job=plan.job,
            status="computed",
            key=plan.key,
            partition=plan.partition,
            payload=payload,  # type: ignore[arg-type]
            manifest=manifest,  # type: ignore[arg-type]
            attempts=attempts,
            seconds=seconds,
            worker_pid=document.get("worker_pid"),  # type: ignore[arg-type]
            serial_fallback=serial,
            counters=dict(counters),  # type: ignore[arg-type]
            queue_wait_s=queue_wait,
            cluster_cache=(
                dict(cluster_info)
                if isinstance(cluster_info, dict)
                else None
            ),
            profile=(
                profile_doc if isinstance(profile_doc, dict) else None
            ),
        )
        if self.cache is not None and isinstance(payload, dict):
            # Sanity: the worker's own digests must agree with the
            # parent's plan (same code, same inputs); if they don't,
            # something raced the input files -- skip the store.
            worker_key = (document.get("digests") or {}).get("key")
            if worker_key in (None, plan.key):
                self.cache.put(
                    plan.key,
                    payload,
                    manifest if isinstance(manifest, dict) else None,
                )
                fingerprint = document.get("fingerprint")
                weight = plan.weight
                if isinstance(fingerprint, dict):
                    reported = fingerprint.get("weight")
                    if isinstance(reported, int) and reported > 0:
                        weight = reported
                self._record_source(plan, weight)
            else:
                obs.counter("service.cache.key_races")

    def _record_source(self, plan: _Plan, weight: int) -> None:
        """Teach the source map this plan's facts (raced files skip)."""
        if self._sources is None or plan.source is None:
            return
        self._sources.record(
            plan.source, plan.key, plan.partition, int(weight or 0)
        )


def _load_design(job: BatchJob):
    """Parse one job's design + schedule in the parent (plan phase)."""
    from pathlib import Path as _Path

    from repro.cells import standard_library
    from repro.clocks.serialize import load_schedule
    from repro.netlist.blif import load_blif
    from repro.netlist.persistence import load_network
    from repro.netlist.verilog import load_verilog

    suffix = _Path(job.netlist).suffix.lower()
    library = standard_library()
    if suffix == ".blif":
        network = load_blif(job.netlist, library, job.default_clock)
    elif suffix == ".v":
        network = load_verilog(job.netlist, library, job.default_clock)
    elif suffix == ".json":
        network = load_network(job.netlist, library)
    else:
        raise ValueError(
            f"unknown netlist format {suffix!r} (use .json, .blif or .v)"
        )
    return network, load_schedule(job.clocks)
