"""``repro-sta doctor`` -- one-shot triage of a running timing daemon.

Same fetch/render split as :mod:`repro.service.top` so the interesting
part is testable without a socket:

* :func:`fetch_doctor` -- one poll over the Unix socket bundling the
  ``health``, ``buildinfo``, ``alerts``, ``flight`` and
  ``crash-report`` ops into a *doctor document* (``repro.doctor/1``),
* :func:`render_doctor` -- a **pure** renderer: document in, triage
  text out,
* :func:`doctor_exit_code` -- the CI contract: ``0`` healthy, ``1``
  when alerts are firing, ``2`` when the daemon has a crash report on
  disk (crash wins when both apply).

The point is a single command an operator (or the CI smoke job) runs
against a misbehaving daemon to answer "what is wrong *right now*":
firing alerts with their messages, the most recent crash postmortem
(error frames plus where it is persisted), and the tail of the flight
recorder for the seconds leading up to the incident.

Every sub-document degrades independently -- a daemon without an alert
engine answers ``ok=False`` for ``alerts`` and the renderer says so
instead of crashing, same contract as ``repro-sta top``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = [
    "DOCTOR_SCHEMA",
    "doctor_exit_code",
    "fetch_doctor",
    "render_doctor",
]

#: Schema identifier stamped on every doctor document.
DOCTOR_SCHEMA = "repro.doctor/1"

#: Flight-recorder events shown in the incident tail by default.
DEFAULT_FLIGHT_TAIL = 20


def fetch_doctor(
    client, flight_last: int = DEFAULT_FLIGHT_TAIL
) -> Dict[str, object]:
    """Poll one triage document from a :class:`DaemonClient`.

    ``ok=False`` sub-documents are kept verbatim (the renderer explains
    the degradation); socket-level errors propagate to the CLI wrapper.
    """
    return {
        "schema": DOCTOR_SCHEMA,
        "ts": time.time(),
        "health": client.health(),
        "buildinfo": client.buildinfo(),
        "alerts": client.alerts(),
        "flight": client.flight(last=flight_last),
        "crash": client.crash_report(),
    }


def doctor_exit_code(doc: Dict[str, object]) -> int:
    """CI verdict for a doctor document (see module docstring)."""
    crash = doc.get("crash") or {}
    if crash.get("ok") and crash.get("crash"):
        return 2
    if _firing(doc):
        return 1
    return 0


def _firing(doc: Dict[str, object]) -> List[Dict[str, object]]:
    alerts = doc.get("alerts") or {}
    if not alerts.get("ok"):
        return []
    return [
        row
        for row in alerts.get("alerts") or []
        if isinstance(row, dict) and row.get("state") == "firing"
    ]


def _fmt_age(now: float, ts: object) -> str:
    try:
        age = max(0.0, now - float(ts))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "?"
    if age < 60.0:
        return f"{age:.0f}s ago"
    if age < 3600.0:
        return f"{age / 60.0:.0f}m ago"
    return f"{age / 3600.0:.1f}h ago"


def _verdict_line(code: int) -> str:
    return {
        0: "verdict: HEALTHY (exit 0)",
        1: "verdict: DEGRADED -- alerts firing (exit 1)",
        2: "verdict: CRASHED -- postmortem on disk (exit 2)",
    }[code]


def _crash_lines(doc: Dict[str, object], now: float) -> List[str]:
    crash_doc = doc.get("crash") or {}
    if not crash_doc.get("ok"):
        return ["crash    : (daemon too old for the crash-report op)"]
    crash = crash_doc.get("crash")
    if not isinstance(crash, dict):
        return ["crash    : none recorded"]
    error = crash.get("error") or {}
    lines = [
        f"crash    : {crash.get('kind', '?')} "
        f"[{error.get('error_type', '?')}] {error.get('error', '')}"
        f" ({_fmt_age(now, crash.get('ts'))})"
    ]
    frames = error.get("frames") or []
    if frames:
        last = frames[-1]
        lines.append(
            f"           at {last.get('file')}:{last.get('line')} "
            f"in {last.get('function')}"
        )
    if crash_doc.get("path"):
        lines.append(f"           report: {crash_doc['path']}")
    return lines


def _flight_lines(
    doc: Dict[str, object], now: float
) -> List[str]:
    flight_doc = doc.get("flight") or {}
    if not flight_doc.get("ok"):
        return ["flight   : (disabled on this daemon)"]
    events = flight_doc.get("events") or []
    header = (
        f"flight   : last {len(events)} of "
        f"{flight_doc.get('total', len(events))} events "
        f"({flight_doc.get('dropped', 0)} dropped)"
    )
    lines = [header]
    for entry in events:
        if not isinstance(entry, dict):
            continue
        kind = str(entry.get("kind", "?"))
        detail = {
            "request": lambda e: (
                f"{e.get('op')} design={e.get('design') or '-'} "
                f"{e.get('status')} {float(e.get('duration_ms') or 0.0):.1f}ms"
            ),
            "span": lambda e: (
                f"{e.get('name')} "
                f"{float(e.get('duration_ms') or 0.0):.1f}ms"
            ),
            "error": lambda e: (
                f"{(e.get('error') or {}).get('error_type')}: "
                f"{(e.get('error') or {}).get('error')}"
            ),
            "stall": lambda e: (
                f"{e.get('op')} {e.get('status')} "
                f"waited {float(e.get('waited_s') or 0.0):.1f}s"
            ),
            "log": lambda e: str(e.get("message", "")),
        }.get(kind, lambda e: "")
        try:
            text = detail(entry)
        except (TypeError, ValueError):
            text = ""
        lines.append(
            f"  {_fmt_age(now, entry.get('ts')):>9}  {kind:<8} {text}"[:100]
        )
    return lines


def render_doctor(
    doc: Dict[str, object], width: int = 72
) -> str:
    """Render one doctor document as plain triage text (pure)."""
    now = float(doc.get("ts") or time.time())
    health = doc.get("health") or {}
    build = doc.get("buildinfo") or {}
    lines: List[str] = []
    rule = "-" * width

    lines.append(
        f"repro doctor | daemon pid {health.get('pid', '?')} | "
        f"up {float(health.get('uptime_s', 0.0) or 0.0):.0f}s | "
        f"version {build.get('version', '?')}"
    )
    lines.append(_verdict_line(doctor_exit_code(doc)))
    lines.append(rule)

    lines.append(
        f"requests : {int(health.get('requests', 0))} total, "
        f"{int(health.get('errors', 0))} errors, "
        f"{int(health.get('in_flight', 0))} in flight"
    )

    alerts_doc = doc.get("alerts") or {}
    if not alerts_doc.get("ok"):
        lines.append("alerts   : (no alert engine on this daemon)")
    else:
        rows = [
            row
            for row in alerts_doc.get("alerts") or []
            if isinstance(row, dict)
        ]
        active = [r for r in rows if r.get("state") in ("firing", "pending")]
        lines.append(
            f"alerts   : {len(active)} active of {len(rows)} rules"
        )
        for row in active:
            ack = " [acked]" if row.get("acked") else ""
            lines.append(
                f"  {row.get('state'):>8}  [{row.get('severity', '?')}] "
                f"{row.get('name')}{ack}: "
                f"{row.get('message') or row.get('description') or ''}"[:100]
            )

    lines.extend(_crash_lines(doc, now))
    lines.append(rule)
    lines.extend(_flight_lines(doc, now))
    return "\n".join(lines)
