"""Worker-side execution of one batch job.

:func:`run_job` is the function the :class:`repro.service.batch.
BatchEngine` submits to its ``ProcessPoolExecutor``.  It must be a
top-level function taking/returning plain picklable data: the *job
spec* in, the *job result document* out.  The same function also runs
in-process for the serial fallback path, so it never assumes it owns
the process.

Job spec (plain dict)::

    {
      "name": "des_chip",
      "netlist": "designs/des.json",        # .json/.blif/.v
      "clocks": "designs/clocks.json",
      "default_clock": null,                # BLIF pads without pragmas
      "slow_path_limit": 50,
      "tolerance": 0.0,
      # cluster-granular sub-key cache (optional; see
      # repro.service.cluster_cache).  With "peers" the worker fronts
      # the store with the cache fabric (repro.service.fabric), so
      # cluster artifacts computed on other hosts are hits here too:
      "cluster_cache": {"root": ".repro-cache/clusters",
                        "max_entries": 4096,
                        "peers": ["http://127.0.0.1:9400"],
                        "peer_timeout_s": 2.0},
      # per-job sampling profiler (optional; ships a repro.profile/1
      # document back under "profile" for the parent to merge):
      "profile": {"hz": 100},
      # fault-injection hooks (tests/CI only):
      "inject_crash_file": null,   # if this file exists: unlink + _exit
      "inject_sleep_s": null,      # sleep before analysing (timeouts)
      "inject_raise": null         # raise ValueError(msg) in the worker
    }

Result document (``ok=True``)::

    {
      "ok": true,
      "payload": {... repro.result/1 ...},
      "manifest": {... repro.manifest/1 ...},
      "digests": {"network": ..., "schedule": ..., "config": ...,
                  "key": ...},
      "worker_pid": 4242,
      "counters": {"alg1.iterations_total": 12, ...},
      # when the spec carried a repro.trace/1 context ("trace" key):
      "trace": {... repro.obs.snapshot/1 ...},
      # when the spec carried "submitted_wall" (parent submit time):
      "queue_wait_s": 0.0123
    }

A spec carrying a ``"trace"`` context (see :mod:`repro.obs.live`) makes
the worker record into a trace-joined recorder and ship its snapshot
back, so the parent can merge worker spans -- load, analyze, store --
into one cross-process Chrome trace.

Failures inside the worker are *reported*, not raised: an ``ok=False``
document with ``error``/``error_type``, structured ``repro.error/1``
frames (``error_doc``) and a full ``repro.crash/1`` postmortem
(``crash``: frames plus all-thread stacks) comes back so the scheduler
can decide between retry and giving up -- and so a failed outcome in
``repro.batchstats/1`` explains itself.  (Crashes -- the worker process
dying -- surface as ``BrokenProcessPool`` on the parent side instead.)
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

__all__ = ["run_job", "job_spec"]

#: Counters copied from the worker recorder into the result document.
REPORTED_COUNTERS = (
    "alg1.runs",
    "alg1.iterations_total",
    "alg1.forward_cycles",
    "alg1.backward_cycles",
    "slack.evaluations",
    "slack.nodes_visited",
    "service.cluster_cache.hits",
    "service.cluster_cache.misses",
    "service.cluster_cache.seeded",
    "service.cluster_cache.recomputed",
    "service.cluster_cache.stores",
    "service.fabric.remote_hits",
    "service.fabric.remote_misses",
    "service.fabric.remote_stores",
    "service.fabric.errors",
    "service.fabric.retries",
    "service.fabric.peer_down",
    "service.fabric.degraded_skips",
    "service.fabric.integrity_failures",
)


def job_spec(
    name: str,
    netlist: str,
    clocks: str,
    default_clock: Optional[str] = None,
    slow_path_limit: Optional[int] = 50,
    tolerance: float = 0.0,
    **extra: object,
) -> Dict[str, object]:
    """Build a well-formed job spec (see module docstring)."""
    spec: Dict[str, object] = {
        "name": name,
        "netlist": str(netlist),
        "clocks": str(clocks),
        "default_clock": default_clock,
        "slow_path_limit": slow_path_limit,
        "tolerance": tolerance,
    }
    spec.update(extra)
    return spec


def _maybe_inject_faults(spec: Dict[str, object]) -> None:
    crash_file = spec.get("inject_crash_file")
    if crash_file and os.path.exists(str(crash_file)):
        # One-shot: remove the flag so the retried job succeeds.  A
        # hard exit (no exception, no atexit) models a worker killed by
        # the OS -- the parent sees BrokenProcessPool.
        try:
            os.unlink(str(crash_file))
        except OSError:
            pass
        os._exit(13)
    sleep_s = spec.get("inject_sleep_s")
    if sleep_s:
        time.sleep(float(sleep_s))
    boom = spec.get("inject_raise")
    if boom:
        # An in-worker exception (as opposed to the hard exit above):
        # exercises the structured-error + crash-report failure path.
        raise ValueError(str(boom))


def run_job(spec: Dict[str, object]) -> Dict[str, object]:
    """Analyse one job spec; returns the result document."""
    from repro import obs
    from repro.cells import standard_library
    from repro.clocks.serialize import load_schedule
    from repro.core.analyzer import Hummingbird
    from repro.netlist.blif import load_blif
    from repro.netlist.persistence import load_network
    from repro.netlist.verilog import load_verilog
    from repro.obs import live
    from repro.service.digest import (
        analysis_config,
        cache_key,
        config_digest,
        network_digest,
        schedule_digest,
    )

    ctx = spec.get("trace")
    traced = isinstance(ctx, dict) and bool(ctx.get("trace_id"))
    submitted_wall = spec.get("submitted_wall")
    queue_wait_s = None
    if isinstance(submitted_wall, (int, float)):
        queue_wait_s = max(0.0, time.time() - float(submitted_wall))
    profile_spec = spec.get("profile")
    profiler = None
    profile_doc = None
    try:
        _maybe_inject_faults(spec)
        with obs.recording(
            live.child_recorder(ctx) if traced else None
        ) as recorder:
            # Per-job sampling profiler (``{"profile": {"hz": 100}}``):
            # the document ships back next to the trace snapshot so the
            # parent can merge a cross-process speedscope profile.
            if isinstance(profile_spec, dict):
                from repro.obs.profile import SamplingProfiler

                profiler = SamplingProfiler(
                    hz=float(profile_spec.get("hz", 100.0) or 100.0),
                    recorder=recorder,
                )
                profiler.start()
            with obs.span(
                "service.worker.job",
                category="service",
                job=str(spec.get("name", "")),
            ):
                suffix = os.path.splitext(str(spec["netlist"]))[1].lower()
                library = standard_library()
                default_clock = spec.get("default_clock")
                if suffix == ".blif":
                    network = load_blif(
                        str(spec["netlist"]), library, default_clock
                    )
                elif suffix == ".v":
                    network = load_verilog(
                        str(spec["netlist"]), library, default_clock
                    )
                elif suffix == ".json":
                    network = load_network(str(spec["netlist"]), library)
                else:
                    raise ValueError(
                        f"unknown netlist format {suffix!r} "
                        "(use .json, .blif or .v)"
                    )
                schedule = load_schedule(str(spec["clocks"]))
                slow_path_limit = spec.get("slow_path_limit", 50)
                tolerance = float(spec.get("tolerance", 0.0) or 0.0)
                config = analysis_config(
                    slow_path_limit=slow_path_limit, tolerance=tolerance
                )
                # Cluster-granular warm-up: when the spec carries a
                # ``cluster_cache`` descriptor, probe the on-disk sub-key
                # store.  Clean clusters load their artifacts (reach maps
                # seeded, BFS skipped); dirty clusters recompute and store.
                # Delays are estimated here with the same defaults the
                # analyzer would use, so the handoff is byte-identical.
                delays = None
                clusters = None
                cluster_info = None
                cc_spec = spec.get("cluster_cache")
                if isinstance(cc_spec, dict) and cc_spec.get("root"):
                    from repro.delay.estimator import estimate_delays
                    from repro.service.cluster_cache import ClusterCache

                    with obs.span(
                        "service.worker.cluster_warm", category="service"
                    ):
                        delays = estimate_delays(network)
                        backend = None
                        peers = cc_spec.get("peers")
                        if peers:
                            # Front the local store with the cache
                            # fabric: cluster artifacts computed on
                            # other hosts become hits here.  Fabric
                            # construction failure (bad peer URL) is a
                            # degradation, not a job failure.
                            from repro.service.cache import ResultCache
                            from repro.service.fabric import (
                                RemoteCache,
                                TieredCache,
                            )

                            try:
                                backend = TieredCache(
                                    ResultCache(
                                        str(cc_spec["root"]),
                                        max_entries=cc_spec.get(
                                            "max_entries", 4096
                                        ),
                                        counter_prefix=(
                                            "service.cluster_cache"
                                        ),
                                    ),
                                    RemoteCache(
                                        [str(p) for p in peers],
                                        timeout_s=float(
                                            cc_spec.get(
                                                "peer_timeout_s", 2.0
                                            )
                                        ),
                                    ),
                                )
                            except ValueError:
                                backend = None
                        cluster_store = ClusterCache(
                            str(cc_spec["root"]),
                            max_entries=cc_spec.get("max_entries", 4096),
                            backend=backend,
                        )
                        warmup = cluster_store.warm(
                            network,
                            schedule,
                            delays,
                            config_digest(config),
                        )
                        clusters = warmup.map.clusters
                        cluster_info = warmup.to_dict()
                analyzer = Hummingbird(
                    network, schedule, delays=delays, clusters=clusters
                )
                result = analyzer.analyze(
                    slow_path_limit=slow_path_limit, tolerance=tolerance
                )
                manifest = result.manifest(
                    netlist_path=str(spec["netlist"]),
                    clocks_path=str(spec["clocks"]),
                    label=str(spec.get("name", network.name)),
                )
                digests = {
                    "network": network_digest(network),
                    "schedule": schedule_digest(schedule),
                    "config": config_digest(config),
                }
                digests["key"] = cache_key(
                    digests["network"], digests["schedule"], digests["config"]
                )
                # Structural fingerprint the parent's SourceMap learns,
                # so the next plan of these exact source bytes parses
                # nothing.  The weight matches _Plan.weigh exactly: the
                # model's clusters ARE extract_clusters(network).
                from repro.core.domains import clock_domains

                fingerprint = {
                    "partition": list(clock_domains(network)),
                    "weight": sum(
                        len(c.cells)
                        for c in analyzer.model.clusters
                    ),
                }
            if profiler is not None:
                profile_doc = profiler.stop()
        document: Dict[str, object] = {
            "ok": True,
            "payload": result.payload(),
            "manifest": manifest,
            "digests": digests,
            "fingerprint": fingerprint,
            "worker_pid": os.getpid(),
            "counters": {
                name: recorder.counters[name]
                for name in REPORTED_COUNTERS
                if recorder.counters.get(name)
            },
        }
        if cluster_info is not None:
            document["cluster_cache"] = cluster_info
        if traced:
            document["trace"] = live.snapshot(recorder)
        if profile_doc is not None:
            document["profile"] = profile_doc
        if queue_wait_s is not None:
            document["queue_wait_s"] = round(queue_wait_s, 6)
        return document
    except Exception as exc:  # noqa: BLE001 -- reported, not raised
        if profiler is not None and profiler.running:
            profiler.stop()
        from repro.obs.flight import CrashHandler, error_document

        # Ship a full worker postmortem -- structured frames plus
        # all-thread stacks -- so the parent can merge it into the
        # batch outcome (``repro.crash/1``, kind=worker_exception).
        crash = CrashHandler().build(
            exc, kind="worker_exception", op=str(spec.get("name", ""))
        )
        return {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "error_doc": error_document(exc),
            "crash": crash,
            "worker_pid": os.getpid(),
        }
