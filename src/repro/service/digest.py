"""Content digests of the analysis inputs.

A timing result is a pure function of three inputs: the *network*, the
*clock schedule* and the *analysis configuration* (latch model, pass
strategy, delay-model knobs, slow-path extraction limits).  Each input
gets its own SHA-256 over a canonical JSON serialisation -- ``sort_keys``
plus compact separators -- so the digests are

* **byte-stable across process restarts** (no ``id()``/hash-seed
  dependence, no floating timestamps), and
* **insensitive to dict ordering** (two configs with the same items in
  different insertion order digest identically).

:func:`cache_key` combines the three into the content address used by
:class:`repro.service.cache.ResultCache`.  The key also folds in
:data:`PAYLOAD_SCHEMA_VERSION` so a change to the cached payload format
invalidates every old entry instead of mis-reading it.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Mapping, Optional

__all__ = [
    "PAYLOAD_SCHEMA_VERSION",
    "analysis_config",
    "cache_key",
    "canonical_json",
    "config_digest",
    "network_digest",
    "schedule_digest",
]

#: Version of the cached-result payload format; bumping it invalidates
#: every existing cache entry (their keys no longer match).
PAYLOAD_SCHEMA_VERSION = 1


def canonical_json(data: object) -> str:
    """Deterministic JSON: sorted keys, compact separators."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def network_digest(network) -> str:
    """SHA-256 of the canonical serialisation of ``network``.

    Uses :func:`repro.netlist.persistence.network_to_dict`, so the
    digest is a function of the design *content* (cells, pins, nets,
    attrs, module definitions) -- not of the bytes of whatever file it
    was parsed from.  Reformatting a netlist JSON file or converting
    between ``.json``/``.blif``/``.v`` representations of the same
    design does not change the digest.
    """
    from repro.netlist.persistence import network_to_dict

    return _sha256(canonical_json(network_to_dict(network)))


def schedule_digest(schedule) -> str:
    """SHA-256 of the canonical serialisation of a clock schedule.

    Times serialise as exact fraction strings (see
    :mod:`repro.clocks.serialize`), so equal schedules digest equally
    regardless of how their Fractions were constructed.
    """
    from repro.clocks.serialize import schedule_to_dict

    return _sha256(canonical_json(schedule_to_dict(schedule)))


def config_digest(config: Mapping[str, object]) -> str:
    """SHA-256 of an analysis-configuration mapping.

    Canonical JSON makes the digest insensitive to key insertion order
    and whitespace; non-string keys are rejected by ``json`` rather
    than silently coerced differently across versions.
    """
    return _sha256(canonical_json(dict(config)))


def analysis_config(
    latch_model: str = "transparent",
    pass_strategy: str = "minimum",
    exhaustive_limit: int = 4,
    slow_path_limit: Optional[int] = 50,
    tolerance: float = 0.0,
    delay_params: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """The canonical configuration mapping for one analysis.

    Everything that changes the *result* of an analysis belongs here;
    anything that only changes how it is reported does not.  The
    returned dict is plain data, suitable for :func:`config_digest` and
    for embedding in cache entries.
    """
    return {
        "latch_model": latch_model,
        "pass_strategy": pass_strategy,
        "exhaustive_limit": exhaustive_limit,
        "slow_path_limit": slow_path_limit,
        "tolerance": tolerance,
        "delay_params": dict(delay_params) if delay_params else None,
    }


def cache_key(
    network_sha: str, schedule_sha: str, config_sha: str
) -> str:
    """The content address of one (network, clocks, config) triple."""
    return _sha256(
        canonical_json(
            {
                "network": network_sha,
                "schedule": schedule_sha,
                "config": config_sha,
                "payload_schema": PAYLOAD_SCHEMA_VERSION,
            }
        )
    )
