"""Content digests of the analysis inputs.

A timing result is a pure function of three inputs: the *network*, the
*clock schedule* and the *analysis configuration* (latch model, pass
strategy, delay-model knobs, slow-path extraction limits).  Each input
gets its own SHA-256 over a canonical JSON serialisation -- ``sort_keys``
plus compact separators -- so the digests are

* **byte-stable across process restarts** (no ``id()``/hash-seed
  dependence, no floating timestamps), and
* **insensitive to dict ordering** (two configs with the same items in
  different insertion order digest identically).

:func:`cache_key` combines the three into the content address used by
:class:`repro.service.cache.ResultCache`.  The key also folds in
:data:`PAYLOAD_SCHEMA_VERSION` so a change to the cached payload format
invalidates every old entry instead of mis-reading it.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Mapping, Optional

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "PAYLOAD_SCHEMA_VERSION",
    "analysis_config",
    "cache_key",
    "canonical_json",
    "cluster_digest",
    "config_digest",
    "network_digest",
    "schedule_digest",
    "source_digest",
]

#: Version of the cached-result payload format; bumping it invalidates
#: every existing cache entry (their keys no longer match).
PAYLOAD_SCHEMA_VERSION = 1

#: Version of the per-cluster artifact format (``repro.clusterart/1``);
#: folded into :func:`cluster_digest` so a format change invalidates
#: every old sub-key instead of mis-reading it.
ARTIFACT_SCHEMA_VERSION = 1


def canonical_json(data: object) -> str:
    """Deterministic JSON: sorted keys, compact separators."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def network_digest(network) -> str:
    """SHA-256 of the canonical serialisation of ``network``.

    Uses :func:`repro.netlist.persistence.network_to_dict`, so the
    digest is a function of the design *content* (cells, pins, nets,
    attrs, module definitions) -- not of the bytes of whatever file it
    was parsed from.  Reformatting a netlist JSON file or converting
    between ``.json``/``.blif``/``.v`` representations of the same
    design does not change the digest.
    """
    from repro.netlist.persistence import network_to_dict

    return _sha256(canonical_json(network_to_dict(network)))


def schedule_digest(schedule) -> str:
    """SHA-256 of the canonical serialisation of a clock schedule.

    Times serialise as exact fraction strings (see
    :mod:`repro.clocks.serialize`), so equal schedules digest equally
    regardless of how their Fractions were constructed.
    """
    from repro.clocks.serialize import schedule_to_dict

    return _sha256(canonical_json(schedule_to_dict(schedule)))


def config_digest(config: Mapping[str, object]) -> str:
    """SHA-256 of an analysis-configuration mapping.

    Canonical JSON makes the digest insensitive to key insertion order
    and whitespace; non-string keys are rejected by ``json`` rather
    than silently coerced differently across versions.
    """
    return _sha256(canonical_json(dict(config)))


def analysis_config(
    latch_model: str = "transparent",
    pass_strategy: str = "minimum",
    exhaustive_limit: int = 4,
    slow_path_limit: Optional[int] = 50,
    tolerance: float = 0.0,
    delay_params: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """The canonical configuration mapping for one analysis.

    Everything that changes the *result* of an analysis belongs here;
    anything that only changes how it is reported does not.  The
    returned dict is plain data, suitable for :func:`config_digest` and
    for embedding in cache entries.
    """
    return {
        "latch_model": latch_model,
        "pass_strategy": pass_strategy,
        "exhaustive_limit": exhaustive_limit,
        "slow_path_limit": slow_path_limit,
        "tolerance": tolerance,
        "delay_params": dict(delay_params) if delay_params else None,
    }


def _fraction_str(value) -> str:
    """Exact string form of a Fraction (mirrors clocks.serialize)."""
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"


def _boundary_clock(cell):
    """(clock name, sense) binding of a boundary cell, best effort.

    Pads carry their clock as an attribute; synchronisers get theirs
    through the control pin, so it has to be *traced*
    (:func:`repro.netlist.validate.trace_control` -- the same
    resolution the analysis model uses, so digest and model agree on
    the binding by construction).  Returns ``(None, None)`` when the
    cell has no resolvable clock; analysis would reject such a network
    anyway, and an unresolved binding merely makes the digest
    conservative.
    """
    clock = cell.attrs.get("clock")
    if clock is not None:
        return str(clock), None
    if cell.is_synchroniser:
        from repro.netlist.validate import ValidationError, trace_control

        try:
            # trace_control walks terminal-to-terminal; the network
            # argument exists only for API symmetry with the validator.
            trace = trace_control(None, cell)
        except (ValidationError, AttributeError):
            return None, None
        return trace.clock, trace.sense.value
    return None, None


def _terminal_binding(terminal, schedule, delays) -> Dict[str, object]:
    """The timing-relevant description of one boundary terminal.

    A cluster's timing answer depends not only on its own gates but on
    the *clock bindings* of the synchronisers at its boundary: which
    clock each boundary cell is on (traced through the control cone for
    synchronisers), the control sense, that clock's exact waveform
    (period, leading and trailing edge as exact rationals -- the pulse
    width), and the synchroniser's timing parameters.  All of it is
    folded into the sub-key so a schedule edit or a
    ``set_pulse_width`` mutation invalidates exactly the clusters whose
    boundary it touches.
    """
    cell = terminal.cell
    record: Dict[str, object] = {
        "terminal": terminal.full_name,
        "role": cell.role.value,
        "net": terminal.net.name if terminal.net is not None else None,
    }
    clock, sense = _boundary_clock(cell)
    record["clock"] = clock
    if sense is not None:
        record["sense"] = sense
    if clock is not None:
        try:
            waveform = schedule.waveform(str(clock))
        except (KeyError, ValueError):
            record["waveform"] = None
        else:
            record["waveform"] = {
                "period": _fraction_str(waveform.period),
                "leading": _fraction_str(waveform.leading),
                "trailing": _fraction_str(waveform.trailing),
            }
    if cell.is_synchroniser:
        try:
            sync = delays.sync_timing(cell)
        except KeyError:
            record["sync"] = None
        else:
            record["sync"] = {
                "setup": sync.setup,
                "d_to_q": sync.d_to_q,
                "c_to_q": sync.c_to_q,
                "hold": sync.hold,
                "c_to_q_min": sync.c_to_q_min,
            }
    return record


def cluster_digest(cluster, schedule, delays, config_sha: str) -> str:
    """The content address of one cluster's timing sub-problem.

    SHA-256 over the canonical serialisation of

    * the cluster's combinational cells -- name, spec, pin-to-net
      connectivity and every timing arc's max/min rise-fall delays and
      unateness (taken from the live :class:`~repro.delay.estimator.DelayMap`,
      so a ``scale_cell`` mutation changes exactly one cluster's digest);
    * its net names (the internal topology);
    * its boundary terminals with their owning cells' clock bindings,
      exact clock waveforms and synchroniser timing parameters;
    * the analysis-configuration digest; and
    * :data:`ARTIFACT_SCHEMA_VERSION`.

    Deliberately *excludes* the cluster's extraction-order name
    (``cluster_3``): the digest is a function of the sub-circuit's
    content, not of how many clusters happen to precede it.
    """
    cells = []
    for cell in cluster.cells:
        arcs = []
        for in_pin, out_pin in delays.arcs_of(cell):
            dmax = delays.arc_delay(cell, in_pin, out_pin)
            dmin = delays.arc_delay_min(cell, in_pin, out_pin)
            sense = delays.arc_unateness(cell, in_pin, out_pin)
            arcs.append(
                [
                    in_pin,
                    out_pin,
                    [dmax.rise, dmax.fall],
                    [dmin.rise, dmin.fall],
                    sense.value,
                ]
            )
        pins = {
            terminal.pin: (
                terminal.net.name if terminal.net is not None else None
            )
            for terminal in cell.terminals()
        }
        cells.append(
            {
                "name": cell.name,
                "spec": getattr(cell.spec, "name", type(cell.spec).__name__),
                "pins": pins,
                "arcs": arcs,
            }
        )
    doc = {
        "artifact_schema": ARTIFACT_SCHEMA_VERSION,
        "config": config_sha,
        "cells": cells,
        "nets": sorted(cluster.net_names),
        "sources": [
            _terminal_binding(t, schedule, delays)
            for t in sorted(cluster.sources, key=lambda t: t.full_name)
        ],
        "captures": [
            _terminal_binding(t, schedule, delays)
            for t in sorted(cluster.captures, key=lambda t: t.full_name)
        ],
    }
    return _sha256(canonical_json(doc))


def source_digest(
    netlist_bytes: bytes,
    clocks_bytes: Optional[bytes],
    default_clock: Optional[str],
    config: Mapping[str, object],
) -> str:
    """The content address of one job's *raw source files* + config.

    Unlike :func:`network_digest`, which requires a parsed network,
    this digests the netlist/clock file **bytes** directly -- cheap
    enough for a batch planner to compute for hundreds of jobs without
    parsing any of them.  It is *stricter* than the semantic digest
    (reformatting a netlist file changes it even though the design is
    unchanged), so it is only ever used as an index into previously
    observed ``(source_digest -> cache_key)`` pairs, never as a cache
    key itself: a source-digest change merely falls back to the parse
    path, it can never alias two different designs.
    """
    doc = {
        "netlist_sha256": hashlib.sha256(netlist_bytes).hexdigest(),
        "clocks_sha256": (
            hashlib.sha256(clocks_bytes).hexdigest()
            if clocks_bytes is not None
            else None
        ),
        "default_clock": default_clock,
        "config": dict(config),
        "payload_schema": PAYLOAD_SCHEMA_VERSION,
    }
    return _sha256(canonical_json(doc))


def cache_key(
    network_sha: str, schedule_sha: str, config_sha: str
) -> str:
    """The content address of one (network, clocks, config) triple."""
    return _sha256(
        canonical_json(
            {
                "network": network_sha,
                "schedule": schedule_sha,
                "config": config_sha,
                "payload_schema": PAYLOAD_SCHEMA_VERSION,
            }
        )
    )
