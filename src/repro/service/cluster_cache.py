"""Cluster-granular result cache (sub-keys of the triple cache).

The triple-keyed :class:`~repro.service.cache.ResultCache` answers "have
we analysed exactly this (network, clocks, config)?" -- a one-gate edit
invalidates the whole design.  This module adds the paper's Section-7
cluster decomposition as the unit of caching: every *cluster* (a maximal
connected combinational network bounded by synchroniser terminals) gets
its own content address (:func:`~repro.service.digest.cluster_digest`)
over its cells, arc delays, internal nets, boundary clock bindings and
the analysis config.  A delay mutation therefore changes exactly one
cluster's digest, and a warm re-run of an edited design

* **hits** on every clean cluster -- its ``repro.clusterart/1`` artifact
  (source-to-capture reachability, ``dmax_p`` / ``dmin_p`` path delays,
  per-capture worst arcs) loads from the cache and its reachability map
  seeds the analysis model before Algorithm 1 seeds windows, skipping
  the per-source BFS;
* **recomputes** only the dirty cluster's artifact.

The *invalidation map* (:class:`ClusterMap`) is built from
:func:`~repro.core.clusters.extract_clusters` partitions: it maps every
combinational cell and net to its owning cluster and every cluster to
its current sub-key, so the daemon's ``mutate`` path can drop one
sub-entry instead of the whole triple.

Storage reuses :class:`ResultCache` (same ``repro.cache/1`` on-disk
entries, atomic writes, advisory index, LRU, integrity quarantine)
under a separate root with the ``service.cluster_cache`` counter
namespace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.core.clusters import (
    ARTIFACT_SCHEMA,
    Cluster,
    cluster_timing_artifact,
    extract_clusters,
)
from repro.service.cache import ResultCache
from repro.service.digest import cluster_digest

__all__ = [
    "ClusterCache",
    "ClusterMap",
    "ClusterWarmup",
    "build_cluster_map",
]

#: Counter namespace of the cluster-level cache.
COUNTER_PREFIX = "service.cluster_cache"


@dataclass(frozen=True)
class ClusterMap:
    """The invalidation map of one design at one delay state.

    Binds each cluster to its content sub-key and each combinational
    cell / net to its owning cluster.  The map is a function of the
    *live* delays: after a mutation the sub-keys change, so callers keep
    the pre-mutation map around to know which old sub-entry to drop
    (see :meth:`ClusterCache.invalidate`).
    """

    clusters: Tuple[Cluster, ...]
    #: cluster name -> cluster_digest sub-key.
    keys: Dict[str, str] = field(default_factory=dict)
    #: combinational cell name -> owning cluster name.
    cell_to_cluster: Dict[str, str] = field(default_factory=dict)
    #: net name -> owning cluster name.
    net_to_cluster: Dict[str, str] = field(default_factory=dict)

    def owner_of_cell(self, cell_name: str) -> Optional[str]:
        """The cluster owning a combinational cell (None if unknown)."""
        return self.cell_to_cluster.get(cell_name)

    def owner_of_net(self, net_name: str) -> Optional[str]:
        return self.net_to_cluster.get(net_name)

    def key_of(self, cluster_name: str) -> Optional[str]:
        return self.keys.get(cluster_name)

    def to_dict(self) -> Dict[str, object]:
        """Summary suitable for stats responses (no full key dump)."""
        return {
            "clusters": len(self.clusters),
            "cells": len(self.cell_to_cluster),
            "nets": len(self.net_to_cluster),
            "keys": dict(self.keys),
        }


def build_cluster_map(
    network,
    schedule,
    delays,
    config_sha: str,
    clusters: Optional[Tuple[Cluster, ...]] = None,
) -> ClusterMap:
    """Build the invalidation map for ``network`` at ``delays``.

    ``clusters`` lets callers reuse an already-extracted partition (the
    analysis model and the batch planner both run
    :func:`extract_clusters`); otherwise the partition is computed here.
    """
    if clusters is None:
        clusters = extract_clusters(network)
    keys: Dict[str, str] = {}
    cell_to_cluster: Dict[str, str] = {}
    net_to_cluster: Dict[str, str] = {}
    for cluster in clusters:
        keys[cluster.name] = cluster_digest(
            cluster, schedule, delays, config_sha
        )
        for cell in cluster.cells:
            cell_to_cluster[cell.name] = cluster.name
        for net_name in cluster.net_names:
            net_to_cluster[net_name] = cluster.name
    return ClusterMap(
        clusters=tuple(clusters),
        keys=keys,
        cell_to_cluster=cell_to_cluster,
        net_to_cluster=net_to_cluster,
    )


@dataclass
class ClusterWarmup:
    """Outcome of one :meth:`ClusterCache.warm` pass."""

    map: ClusterMap
    #: Cluster names whose artifacts loaded from the cache.
    hits: List[str] = field(default_factory=list)
    #: Cluster names whose artifacts had to be recomputed.
    recomputed: List[str] = field(default_factory=list)
    #: cluster name -> repro.clusterart/1 artifact (hits + recomputed).
    artifacts: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def clusters(self) -> int:
        return len(self.map.clusters)

    @property
    def hit_rate(self) -> float:
        return len(self.hits) / self.clusters if self.clusters else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "clusters": self.clusters,
            "hits": len(self.hits),
            "recomputed": len(self.recomputed),
            "hit_rate": self.hit_rate,
        }


class ClusterCache:
    """Per-cluster artifact store with cluster-granular invalidation.

    Parameters
    ----------
    root:
        Cache directory.  By convention the service layers place it
        next to the triple cache (``<cache-dir>/clusters``).
    max_entries:
        LRU bound of the underlying :class:`ResultCache`; clusters are
        much smaller than whole-design results, so the default bound is
        wider.
    backend:
        Pre-built store implementing the :class:`ResultCache` surface
        (e.g. a :class:`repro.service.fabric.TieredCache` fronting the
        cache fabric).  When given, ``root``/``max_entries`` describe
        it rather than build a new local store -- this is how cluster
        artifacts computed on other hosts become hits here.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_entries: Optional[int] = 4096,
        backend: Optional[ResultCache] = None,
    ) -> None:
        self.root = Path(root)
        if backend is not None:
            self._cache = backend
        else:
            self._cache = ResultCache(
                self.root,
                max_entries=max_entries,
                counter_prefix=COUNTER_PREFIX,
            )

    # ------------------------------------------------------------------
    # probing / warming
    # ------------------------------------------------------------------
    def probe(self, key: str) -> Optional[Dict[str, object]]:
        """The artifact stored under one sub-key, or ``None``."""
        entry = self._cache.get(key)
        if entry is None:
            return None
        payload = entry.get("payload")
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != ARTIFACT_SCHEMA
        ):
            # Content addressing makes this near-impossible (the schema
            # version is folded into the digest); treat it as corrupt.
            self._cache.evict(key)
            return None
        return payload

    def store(self, key: str, artifact: Dict[str, object]) -> None:
        self._cache.put(key, artifact)

    def warm(
        self,
        network,
        schedule,
        delays,
        config_sha: str,
        clusters: Optional[Tuple[Cluster, ...]] = None,
    ) -> ClusterWarmup:
        """Probe every cluster of a design; seed hits, fill misses.

        For each cluster: a cache hit seeds the cluster's reachability
        map from the stored artifact (counted as
        ``service.cluster_cache.seeded``); a miss recomputes the
        artifact (``service.cluster_cache.recomputed``) -- which *is*
        the cold BFS plus two path-delay sweeps -- and stores it.
        Either way the cluster object ends up warm, so the analysis
        model built from these clusters never re-runs the BFS.
        """
        cmap = build_cluster_map(
            network, schedule, delays, config_sha, clusters=clusters
        )
        warmup = ClusterWarmup(map=cmap)
        for cluster in cmap.clusters:
            key = cmap.keys[cluster.name]
            artifact = self.probe(key)
            if artifact is not None:
                cluster.seed_reachability(artifact.get("reach", {}))
                warmup.hits.append(cluster.name)
                obs.counter(f"{COUNTER_PREFIX}.seeded")
            else:
                artifact = cluster_timing_artifact(
                    network, cluster, delays
                )
                self.store(key, artifact)
                warmup.recomputed.append(cluster.name)
                obs.counter(f"{COUNTER_PREFIX}.recomputed")
            warmup.artifacts[cluster.name] = artifact
        self.flush()
        obs.gauge(
            f"{COUNTER_PREFIX}.hit_rate", warmup.hit_rate
        )
        return warmup

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(
        self, cmap: ClusterMap, cell_name: str
    ) -> Optional[str]:
        """Drop the sub-entry of the cluster owning ``cell_name``.

        ``cmap`` must be the *pre-mutation* map -- its sub-keys address
        the now-stale artifacts.  Returns the touched cluster's name,
        or ``None`` when the cell is not in any cluster (synchronisers
        and pads have no combinational arcs of their own; scaling one
        changes its ``SyncTiming``, which lives in the *boundary* part
        of every adjacent cluster's digest -- callers fall back to
        :meth:`invalidate_all` in that case).
        """
        owner = cmap.owner_of_cell(cell_name)
        if owner is None:
            return None
        key = cmap.key_of(owner)
        if key is not None:
            self._cache.evict(key)
        obs.counter(f"{COUNTER_PREFIX}.invalidated")
        return owner

    def invalidate_all(self, cmap: ClusterMap) -> int:
        """Drop every sub-entry of the map (clock/schedule mutations)."""
        dropped = 0
        for key in cmap.keys.values():
            if self._cache.evict(key):
                dropped += 1
        obs.counter(
            f"{COUNTER_PREFIX}.invalidated", value=len(cmap.keys)
        )
        return dropped

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def stats(self):
        return self._cache.stats

    @property
    def max_entries(self) -> Optional[int]:
        return self._cache.max_entries

    def flush(self) -> None:
        self._cache.flush()

    def close(self) -> None:
        self._cache.close()

    def __len__(self) -> int:
        return len(self._cache)

    def __bool__(self) -> bool:
        return True
