"""``repro.service`` -- the serving layer around the analyzer.

The paper's program was a one-shot batch tool (read the design, run
Algorithm 1, print the report).  This package turns it into a serving
engine for repeated and concurrent timing queries:

* :mod:`repro.service.digest` -- canonical content digests of the three
  analysis inputs (network, clock schedule, configuration) that form
  the content-addressed cache key,
* :mod:`repro.service.cache` -- :class:`ResultCache`, an on-disk LRU
  store of ``repro.result/1`` payloads + ``repro.manifest/1`` records
  with integrity-checked loads (corrupt entries are evicted, never
  crash),
* :mod:`repro.service.batch` / :mod:`repro.service.workers` --
  :class:`BatchEngine`, a clock-domain-aware scheduler that fans
  cache-miss jobs out over a ``ProcessPoolExecutor`` with per-job
  timeout, bounded retry and graceful degradation to in-process serial
  execution,
* :mod:`repro.service.daemon` -- :class:`TimingDaemon` /
  :class:`DaemonClient`, a long-lived engine behind a JSON-lines Unix
  socket that keeps parsed networks warm and answers
  analyze / what-if / report queries through the incremental engine,
* :mod:`repro.service.httpmon` -- the shared localhost HTTP stack
  (:class:`RouteTable` / :class:`RouteHTTPServer`) and
  :class:`TelemetrySidecar`, the server behind ``repro-sta serve
  --http-port`` exposing ``/healthz`` and ``/metrics``,
* :mod:`repro.service.fabric` -- the distributed cache fabric:
  :class:`CacheServer` (HTTP object store over a :class:`ResultCache`),
  :class:`ShardRouter` (deterministic digest-prefix sharding),
  :class:`RemoteCache` / :class:`TieredCache` (local L1 over the
  fleet's shared L2, with graceful degradation),
* :mod:`repro.service.top` -- frame fetch + pure renderer for the
  ``repro-sta top`` live daemon dashboard,
* :mod:`repro.service.doctor` -- one-shot triage (``repro-sta
  doctor``): firing alerts, latest crash report and the flight-recorder
  tail, with a CI-friendly exit code,
* :mod:`repro.service.collector` -- the fleet observability plane:
  :func:`scrape_peer` / :class:`FleetCollector` scrape every peer's
  sidecar into one ``repro.fleet/1`` view (``GET /fleetz``,
  ``repro-sta fleet``, ``repro-sta doctor --fleet``).

See ``docs/service.md`` for the cache key scheme, batch semantics,
the daemon protocol and the monitoring walkthrough.
"""

from repro.service.batch import (
    BatchEngine,
    BatchJob,
    BatchReport,
    JobOutcome,
    SourceMap,
    load_jobs,
)
from repro.service.cache import CacheStats, ResultCache
from repro.service.cluster_cache import (
    ClusterCache,
    ClusterMap,
    ClusterWarmup,
    build_cluster_map,
)
from repro.service.collector import (
    FleetCollector,
    scrape_fleet,
    scrape_peer,
)
from repro.service.daemon import DaemonClient, TimingDaemon
from repro.service.digest import (
    analysis_config,
    cache_key,
    cluster_digest,
    config_digest,
    network_digest,
    schedule_digest,
)
from repro.service.doctor import (
    doctor_exit_code,
    fetch_doctor,
    render_doctor,
)
from repro.service.fabric import (
    CacheServer,
    RemoteCache,
    ShardRouter,
    TieredCache,
)
from repro.service.httpmon import (
    RouteHTTPServer,
    RouteTable,
    TelemetrySidecar,
)
from repro.service.top import fetch_frame, render_top

__all__ = [
    "BatchEngine",
    "BatchJob",
    "BatchReport",
    "CacheServer",
    "CacheStats",
    "ClusterCache",
    "ClusterMap",
    "ClusterWarmup",
    "RemoteCache",
    "RouteHTTPServer",
    "RouteTable",
    "ShardRouter",
    "SourceMap",
    "TieredCache",
    "build_cluster_map",
    "cluster_digest",
    "DaemonClient",
    "FleetCollector",
    "scrape_fleet",
    "scrape_peer",
    "JobOutcome",
    "ResultCache",
    "TelemetrySidecar",
    "TimingDaemon",
    "fetch_frame",
    "render_top",
    "doctor_exit_code",
    "fetch_doctor",
    "render_doctor",
    "analysis_config",
    "cache_key",
    "config_digest",
    "load_jobs",
    "network_digest",
    "schedule_digest",
]
