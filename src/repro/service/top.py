"""``repro-sta top`` -- a live dashboard for a running timing daemon.

Split in two so the interesting part is testable without a terminal:

* :func:`fetch_frame` -- one poll over the Unix socket: the ``health``,
  ``stats`` and ``metrics`` ops plus a wall timestamp, bundled into a
  plain *frame* dict,
* :func:`render_top` -- a **pure** renderer: frame (+ the previous
  frame for rates) in, multi-line text out.  No ANSI, no sleeping, no
  sockets -- the CLI wrapper (:mod:`repro.cli`) owns the
  clear-screen/redraw loop.

The renderer derives everything from daemon telemetry:

* request throughput (``requests`` delta between frames / elapsed),
* p50/p95 request, handle and queue-wait latency from the
  ``service.daemon.*_seconds`` histogram buckets
  (:func:`repro.obs.hist.quantile_from_counts` -- same linear
  interpolation Prometheus' ``histogram_quantile`` uses),
* cache hit rate, per-design warm/in-flight table, worker liveness,
* trend sparklines from the daemon's metrics ring buffer (the
  ``history`` op / ``GET /metrics/history``): request rate and p95
  latency over the retained window,
* alert banners from the in-daemon alert engine (the ``alerts`` op):
  pending/firing rules render at the top of the frame, and a daemon
  restart (new pid or uptime going backwards) gets an explicit
  "daemon restarted (uptime reset)" notice instead of silently
  negative deltas -- rates and trends *rebase* across the reset: the
  post-restart counter value is itself the delta since the restart,
  so the dashboard shows the true restart-window rate instead of a
  misleading zero.

``repro-sta top --json`` skips the renderer entirely and emits
:func:`json_frame` -- one machine-readable JSON object per refresh with
the raw sub-documents plus the derived rate/quantiles, so scripts and
CI consume the same data the human dashboard shows without scraping.

A daemon started with ``telemetry=False`` still renders: the latency
block degrades to ``telemetry disabled``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.obs.hist import quantile_from_counts

__all__ = ["fetch_frame", "json_frame", "render_top", "sparkline"]

#: Eight-level bar glyphs, lowest to highest.
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

#: Histograms rendered in the latency block, in display order.
_LATENCY_ROWS = (
    ("request", "service.daemon.request_seconds"),
    ("handle", "service.daemon.handle_seconds"),
    ("queue-wait", "service.daemon.queue_wait_seconds"),
    # Locked analyze/mutate/report path only; the gap between this row
    # and queue-wait is the traffic the snapshot read path absorbed.
    ("lock-wait", "service.daemon.lock_wait_seconds"),
)


def fetch_frame(client) -> Dict[str, object]:
    """Poll one dashboard frame from a :class:`DaemonClient`.

    Never raises on an ``ok=False`` op response (e.g. ``metrics`` with
    telemetry disabled) -- the degraded sub-document is kept so the
    renderer can say why a block is empty.  Socket-level errors *do*
    propagate; the CLI loop reports them and retries.
    """
    return {
        "ts": time.time(),
        "health": client.health(),
        "stats": client.stats(),
        "metrics": client.metrics(),
        # Ring-buffer trends for the sparkline block; ok=False on old
        # daemons / telemetry-off, which the renderer degrades around.
        "history": client.history(last=60),
        # Alert-engine rows for the banner block; same degradation
        # contract (ok=False on daemons without an alert engine).
        "alerts": client.alerts(),
    }


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """Render ``values`` as a fixed-width unicode sparkline.

    The newest ``width`` values are kept; the scale is min..max of the
    rendered window (a flat series renders as all-low bars).  Empty
    input yields ``width`` spaces so columns stay aligned.
    """
    values = [float(v) for v in values][-width:]
    if not values:
        return " " * width
    low = min(values)
    high = max(values)
    span = high - low
    chars = []
    for value in values:
        if span <= 0.0:
            chars.append(_SPARK_GLYPHS[0])
            continue
        level = int((value - low) / span * (len(_SPARK_GLYPHS) - 1))
        chars.append(_SPARK_GLYPHS[level])
    return "".join(chars).rjust(width)


def _history_series(
    frame: Dict[str, object],
) -> Optional[Dict[str, List[float]]]:
    """Derived trend series from the frame's history sub-document.

    * ``rate``: per-interval deltas of ``service.daemon.requests``
      (rebased across daemon restarts: a backwards step means the
      counter reset, so the new absolute value *is* the delta since
      the restart),
    * ``p95``: ``service.daemon.request_seconds`` p95 per snapshot.

    Returns ``None`` when the daemon served no usable history.
    """
    history = frame.get("history") or {}
    if not history.get("ok"):
        return None
    points = history.get("points") or []
    if len(points) < 2:
        return None
    requests = [
        float((p.get("counters") or {}).get("service.daemon.requests", 0.0))
        for p in points
    ]
    p95 = [
        float(
            ((p.get("histograms") or {}).get(
                "service.daemon.request_seconds"
            ) or {}).get("p95", 0.0)
        )
        for p in points
    ]
    rate = [
        later - earlier if later >= earlier else later
        for earlier, later in zip(requests, requests[1:])
    ]
    return {"rate": rate, "p95": p95[1:]}


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _fmt_uptime(seconds: float) -> str:
    seconds = max(0.0, float(seconds))
    minutes, secs = divmod(int(seconds), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    if minutes:
        return f"{minutes}m{secs:02d}s"
    return f"{seconds:.1f}s"


def _quantiles(histogram: Dict[str, object]) -> Dict[str, float]:
    bounds = list(histogram.get("bounds") or ())
    counts = list(histogram.get("counts") or ())
    if not bounds or len(counts) != len(bounds) + 1:
        return {}
    # The observed max clamps quantiles landing in the +Inf overflow
    # bucket, so p50/p95 stay finite even when every sample exceeded
    # the last bound (e.g. all requests slower than 60s).
    overflow = (
        float(histogram["max"]) if histogram.get("count") else None
    ) if "max" in histogram else None
    return {
        "p50": quantile_from_counts(bounds, counts, 0.50, overflow=overflow),
        "p95": quantile_from_counts(bounds, counts, 0.95, overflow=overflow),
        "count": float(histogram.get("count", 0)),
        "mean": (
            float(histogram.get("sum", 0.0)) / float(histogram["count"])
            if histogram.get("count")
            else 0.0
        ),
        "max": float(histogram.get("max", 0.0)),
    }


def _rate(
    frame: Dict[str, object], previous: Optional[Dict[str, object]]
) -> Optional[float]:
    """Requests per second between two frames (``None`` on frame 1).

    A backwards count means the daemon restarted mid-window; the new
    absolute count is then the delta since the restart (rebase), so a
    restarted-but-busy daemon shows its real rate, not a stale zero.
    """
    if not previous:
        return None
    try:
        dt = float(frame["ts"]) - float(previous["ts"])
        now = int(frame["health"]["requests"])
        dreq = now - int(previous["health"]["requests"])
    except (KeyError, TypeError, ValueError):
        return None
    if dt <= 0.0:
        return None
    if dreq < 0:
        dreq = now
    return max(0.0, dreq / dt)


def _restarted(
    frame: Dict[str, object], previous: Optional[Dict[str, object]]
) -> bool:
    """Did the daemon restart between ``previous`` and ``frame``?

    A new pid or an uptime that went *backwards* both mean the process
    we were watching is gone; counters reset to zero, so naive deltas
    would go negative (the rate/trend helpers already clamp at zero --
    this just lets the renderer say *why*).
    """
    if not previous:
        return False
    try:
        old_health = previous.get("health") or {}
        new_health = frame.get("health") or {}
        if "pid" in old_health and "pid" in new_health:
            if int(old_health["pid"]) != int(new_health["pid"]):
                return True
        return float(new_health.get("uptime_s", 0.0)) < float(
            old_health.get("uptime_s", 0.0)
        )
    except (TypeError, ValueError):
        return False


def _alert_rows(frame: Dict[str, object]) -> List[Dict[str, object]]:
    """Pending/firing alert rows from the frame (empty when healthy)."""
    doc = frame.get("alerts") or {}
    if not doc.get("ok"):
        return []
    return [
        row
        for row in doc.get("alerts") or []
        if isinstance(row, dict) and row.get("state") in ("firing", "pending")
    ]


def render_top(
    frame: Dict[str, object],
    previous: Optional[Dict[str, object]] = None,
    width: int = 72,
) -> str:
    """Render one dashboard frame as plain text (pure function)."""
    health = frame.get("health") or {}
    stats = frame.get("stats") or {}
    metrics_doc = frame.get("metrics") or {}
    lines: List[str] = []
    rule = "-" * width

    clock = time.strftime("%H:%M:%S", time.localtime(frame.get("ts", 0)))
    lines.append(
        f"repro top | daemon pid {health.get('pid', '?')} | "
        f"up {_fmt_uptime(health.get('uptime_s', 0.0))} | {clock}"
    )
    lines.append(rule)

    # -- self-diagnosis banners ----------------------------------------
    if _restarted(frame, previous):
        lines.append("!! daemon restarted (uptime reset) -- rates rebased")
    for row in _alert_rows(frame):
        marker = "!!" if row.get("state") == "firing" else "??"
        ack = " [acked]" if row.get("acked") else ""
        message = str(row.get("message") or row.get("description") or "")
        lines.append(
            f"{marker} alert {row.get('state')} "
            f"[{row.get('severity', '?')}] {row.get('name')}{ack}: "
            f"{message}"[:width]
        )

    rate = _rate(frame, previous)
    rate_text = f"{rate:6.2f} req/s" if rate is not None else "  --  req/s"
    lines.append(
        f"requests {int(health.get('requests', 0)):>7}   "
        f"{rate_text}   errors {int(health.get('errors', 0)):>4}   "
        f"in-flight {int(health.get('in_flight', 0)):>3}   "
        f"designs {int(health.get('designs_loaded', 0)):>3}"
    )

    # -- latency (histogram quantiles from the service recorder) -------
    if metrics_doc.get("ok"):
        histograms = (metrics_doc.get("metrics") or {}).get(
            "histograms"
        ) or {}
        lines.append(rule)
        lines.append(
            f"{'latency':<12}{'count':>7}{'p50':>10}{'p95':>10}"
            f"{'mean':>10}{'max':>10}"
        )
        for label, name in _LATENCY_ROWS:
            q = _quantiles(histograms.get(name) or {})
            if not q:
                lines.append(f"{label:<12}{'-':>7}")
                continue
            lines.append(
                f"{label:<12}{int(q['count']):>7}"
                f"{_fmt_seconds(q['p50']):>10}"
                f"{_fmt_seconds(q['p95']):>10}"
                f"{_fmt_seconds(q['mean']):>10}"
                f"{_fmt_seconds(q['max']):>10}"
            )
        counters = (metrics_doc.get("metrics") or {}).get("counters") or {}
        lines.append(
            f"warm hits {int(counters.get('service.daemon.incremental_hits', 0))}"
            f" | snap hits {int(counters.get('service.daemon.snapshot_hits', 0))}"
            f" | mutations {int(counters.get('service.daemon.mutations', 0))}"
            f" | slow {int(counters.get('service.daemon.slow_requests', 0))}"
            f" | http {int(counters.get('service.daemon.http_requests', 0))}"
        )
    else:
        lines.append(rule)
        lines.append("latency: telemetry disabled on this daemon")

    # -- trends (metrics ring buffer) ----------------------------------
    series = _history_series(frame)
    if series is not None:
        interval = float(
            (frame.get("history") or {}).get("interval_s") or 0.0
        )
        window = (
            f"~{interval * len(series['rate']):.0f}s window"
            if interval
            else "history window"
        )
        lines.append(rule)
        lines.append(
            f"trend  req/s  {sparkline(series['rate'])}   ({window})"
        )
        lines.append(
            f"trend  p95    {sparkline(series['p95'])}   "
            f"(now {_fmt_seconds(series['p95'][-1] if series['p95'] else None)})"
        )

    # -- result cache --------------------------------------------------
    cache = stats.get("cache")
    lines.append(rule)
    if isinstance(cache, dict):
        lookups = int(cache.get("hits", 0)) + int(cache.get("misses", 0))
        hit_rate = (
            int(cache.get("hits", 0)) / lookups if lookups else 0.0
        )
        lines.append(
            f"cache    hits {int(cache.get('hits', 0)):>6}   "
            f"misses {int(cache.get('misses', 0)):>6}   "
            f"hit rate {hit_rate:6.1%}   "
            f"entries {int(cache.get('entries', 0)):>5}"
        )
    else:
        lines.append("cache    (no result cache attached)")

    # -- per-design table ----------------------------------------------
    designs = stats.get("designs") or {}
    lines.append(rule)
    if designs:
        lines.append(
            f"{'design':<24}{'warm':>6}{'analyses':>10}{'mutations':>11}"
            f"{'in-flight':>11}"
        )
        for name in sorted(designs):
            d = designs[name] or {}
            lines.append(
                f"{name[:24]:<24}"
                f"{('yes' if d.get('warm') else 'no'):>6}"
                f"{int(d.get('analyses', 0)):>10}"
                f"{int(d.get('mutations', 0)):>11}"
                f"{int(d.get('in_flight', 0)):>11}"
            )
    else:
        lines.append("no designs loaded yet")

    last_error = health.get("last_error")
    if isinstance(last_error, dict) and last_error.get("error"):
        lines.append(rule)
        lines.append(
            f"last error [{last_error.get('op', '?')}]: "
            f"{str(last_error.get('error'))[: width - 20]}"
        )
    return "\n".join(lines)


def json_frame(
    frame: Dict[str, object],
    previous: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One machine-readable dashboard frame (``repro.topframe/1``).

    The raw ``health``/``stats``/``metrics``/``history`` sub-documents
    pass through untouched; the ``derived`` block adds what the text
    renderer computes -- request rate vs the previous frame and the
    latency quantiles -- so consumers need no bucket arithmetic.  Pure,
    like :func:`render_top`.
    """
    metrics_doc = frame.get("metrics") or {}
    histograms = (metrics_doc.get("metrics") or {}).get("histograms") or {}
    latency = {}
    for label, name in _LATENCY_ROWS:
        q = _quantiles(histograms.get(name) or {})
        if q:
            latency[label] = {
                key: round(value, 6) for key, value in q.items()
            }
    rate = _rate(frame, previous)
    active = _alert_rows(frame)
    return {
        "schema": "repro.topframe/1",
        "ts": frame.get("ts"),
        "health": frame.get("health"),
        "stats": frame.get("stats"),
        "metrics": frame.get("metrics"),
        "history": frame.get("history"),
        "alerts": frame.get("alerts"),
        "derived": {
            "rate_rps": round(rate, 4) if rate is not None else None,
            "latency": latency,
            "trends": _history_series(frame),
            "restarted": _restarted(frame, previous),
            "alerts_firing": sum(
                1 for row in active if row.get("state") == "firing"
            ),
        },
    }
