"""Localhost HTTP telemetry sidecar for the timing daemon.

``repro-sta serve --http-port 8080`` attaches a
:class:`TelemetrySidecar` to the daemon: a tiny threading HTTP server
bound to **127.0.0.1 only** (telemetry is not an external API) with two
routes wired by :class:`repro.service.daemon.TimingDaemon`:

* ``GET /healthz`` -- liveness JSON (uptime, in-flight requests,
  designs loaded, last error),
* ``GET /metrics`` -- Prometheus exposition text straight from the
  daemon's always-on service recorder,
* ``GET /metrics/history`` -- ring-buffer snapshots
  (``repro.metrics.history/1``; ``?last=N`` trims),
* ``GET /profile`` -- the in-daemon sampling profiler's current
  ``repro.profile/1`` document, and
* ``GET /buildz`` -- build/runtime identity (version, pid, uptime,
  config summary),

so a running daemon is scrapeable with ``curl`` or a Prometheus
``scrape_config`` without touching the Unix socket or a log file.
Everything is standard library (``http.server``); requests never block
the JSON-lines serving path.

HTTP hygiene: ``HEAD`` answers with the same headers as ``GET`` and no
body, any other method gets ``405`` with ``Allow: GET, HEAD``, and
unknown paths get a JSON 404 body listing the known routes -- so probes
from load balancers and monitoring agents behave predictably.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs

__all__ = ["TelemetrySidecar"]

#: A route renders ``(query_params) -> (content_type, body_text)``.
#: ``query_params`` holds the last value of each query-string key.
Route = Callable[[Dict[str, str]], Tuple[str, str]]


class TelemetrySidecar:
    """Serve read-only telemetry routes over localhost HTTP.

    Parameters
    ----------
    routes:
        Mapping of exact path -> callable taking the parsed query
        params and returning ``(content_type, body)``.  A route raising
        :class:`ValueError` answers 400 (bad client input), anything
        else 500; unknown paths answer 404 listing the routes.
    port:
        TCP port on 127.0.0.1 (``0`` picks an ephemeral port; read the
        bound address back from :attr:`address`).
    on_request:
        Optional hook called with the request path (used by the daemon
        to count ``service.daemon.http_requests``).
    """

    def __init__(
        self,
        routes: Dict[str, Route],
        port: int = 0,
        host: str = "127.0.0.1",
        on_request: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.routes = dict(routes)
        self.host = host
        self.port = int(port)
        self.on_request = on_request
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The bound ``(host, port)``, or ``None`` before :meth:`start`."""
        if self._server is None:
            return None
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> Tuple[str, int]:
        """Bind and serve in a daemon thread; returns the address."""
        if self._server is not None:
            raise RuntimeError("sidecar already started")
        sidecar = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def _serve(self, head_only: bool) -> None:
                path, __, query = self.path.partition("?")
                params = {
                    key: values[-1]
                    for key, values in parse_qs(query).items()
                }
                if sidecar.on_request is not None:
                    try:
                        sidecar.on_request(path)
                    except Exception:  # noqa: BLE001 -- hook must not 500
                        pass
                route = sidecar.routes.get(path)
                if route is None:
                    body = json.dumps(
                        {
                            "ok": False,
                            "error": f"unknown path {path!r}",
                            "routes": sorted(sidecar.routes),
                        },
                        sort_keys=True,
                    )
                    self._reply(
                        404, "application/json", body + "\n", head_only
                    )
                    return
                try:
                    content_type, body = route(params)
                except ValueError as exc:  # bad client input, e.g. ?last=x
                    self._reply(400, "text/plain", f"{exc}\n", head_only)
                    return
                except Exception as exc:  # noqa: BLE001 -- report, don't die
                    self._reply(500, "text/plain", f"{exc}\n", head_only)
                    return
                self._reply(200, content_type, body, head_only)

            def do_GET(self) -> None:  # noqa: N802 -- http.server API
                self._serve(head_only=False)

            def do_HEAD(self) -> None:  # noqa: N802 -- http.server API
                self._serve(head_only=True)

            def _method_not_allowed(self) -> None:
                body = json.dumps(
                    {
                        "ok": False,
                        "error": f"method {self.command} not allowed",
                        "allow": ["GET", "HEAD"],
                    },
                    sort_keys=True,
                )
                payload = (body + "\n").encode("utf-8")
                self.send_response(405)
                self.send_header("Allow", "GET, HEAD")
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            do_POST = _method_not_allowed  # noqa: N815 -- http.server API
            do_PUT = _method_not_allowed  # noqa: N815
            do_DELETE = _method_not_allowed  # noqa: N815
            do_PATCH = _method_not_allowed  # noqa: N815
            do_OPTIONS = _method_not_allowed  # noqa: N815

            def _reply(
                self,
                status: int,
                content_type: str,
                body: str,
                head_only: bool = False,
            ) -> None:
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                if not head_only:
                    self.wfile.write(payload)

            def log_message(self, *args) -> None:  # silence stderr
                return

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        self._thread.start()
        address = self.address
        assert address is not None
        return address

    def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetrySidecar":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
