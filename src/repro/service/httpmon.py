"""Localhost HTTP serving stack: route table, server, telemetry sidecar.

Two HTTP services share this module:

* :class:`TelemetrySidecar` -- the read-only telemetry endpoint behind
  ``repro-sta serve --http-port`` (``GET /healthz``, ``/metrics``,
  ``/metrics/history``, ``/profile``, ``/buildz``, ``/alertz``,
  ``/crashz``, ``/flightz``),
* :class:`repro.service.fabric.CacheServer` -- the cache-fabric object
  store (``GET/PUT/HEAD /objects/<key>``).

Both are built from the same two pieces so the HTTP hygiene rules are
implemented (and tested) exactly once:

* :class:`RouteTable` -- maps ``(method, path)`` to a handler.  Exact
  paths and ``/prefix/<operand>`` patterns are supported; dispatch
  resolves the *path first* (unknown paths answer a JSON 404 listing
  every known route), then the method (unsupported methods answer 405
  with an accurate ``Allow`` header).  ``HEAD`` is served by the ``GET``
  handler with the body stripped; a handler raising :class:`ValueError`
  answers 400 (bad client input), anything else 500.
* :class:`RouteHTTPServer` -- a threading HTTP server bound to
  **127.0.0.1 only** (neither telemetry nor the cache fabric is an
  external API) that feeds requests through one :class:`RouteTable`.

Everything is standard library (``http.server``); requests never block
the daemon's JSON-lines serving path.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs

__all__ = [
    "HttpRequest",
    "RouteHTTPServer",
    "RouteTable",
    "TelemetrySidecar",
]

#: A telemetry route renders ``(query_params) -> (content_type, body)``.
#: ``query_params`` holds the last value of each query-string key.
Route = Callable[[Dict[str, str]], Tuple[str, str]]

#: Request bodies above this size are refused with 413 (the fabric's
#: PUT bodies are whole cache entries; anything bigger is a bug).
MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class HttpRequest:
    """One dispatched request as seen by a route handler."""

    method: str
    path: str
    #: For ``/prefix/<operand>`` routes: the path tail after the
    #: prefix (``""`` for exact routes).
    operand: str
    #: Last value of each query-string key.
    params: Dict[str, str]
    body: bytes = b""


#: A generic handler renders ``(status, content_type, body)``.
Handler = Callable[[HttpRequest], Tuple[int, str, Union[str, bytes]]]

#: One dispatched response: status, content type, body, extra headers.
_Response = Tuple[int, str, bytes, Dict[str, str]]


class RouteTable:
    """Method-aware route dispatch shared by every HTTP service here.

    Routes are registered per ``(method, pattern)``.  A pattern ending
    in ``/<name>`` is a *prefix* route: ``/objects/<key>`` matches
    ``/objects/abc123`` with ``request.operand == "abc123"``.  All
    dispatch-policy behavior (404 listing routes, 405 with ``Allow``,
    HEAD-from-GET, ValueError -> 400, Exception -> 500) lives in
    :meth:`dispatch` so the sidecar and the cache server cannot drift
    apart.
    """

    def __init__(self) -> None:
        #: exact path -> {method: handler}
        self._exact: Dict[str, Dict[str, Handler]] = {}
        #: (prefix, display pattern) -> {method: handler}
        self._prefix: List[Tuple[str, str, Dict[str, Handler]]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        method = method.upper()
        if pattern.endswith(">") and "<" in pattern:
            prefix = pattern[: pattern.rindex("<")]
            for known_prefix, known_pattern, methods in self._prefix:
                if known_prefix == prefix:
                    methods[method] = handler
                    return
            self._prefix.append((prefix, pattern, {method: handler}))
            # Longest prefix wins when patterns nest.
            self._prefix.sort(key=lambda row: -len(row[0]))
        else:
            self._exact.setdefault(pattern, {})[method] = handler

    def add_simple(self, pattern: str, route: Route) -> None:
        """Register a legacy GET-only telemetry route."""

        def handler(request: HttpRequest) -> Tuple[int, str, str]:
            content_type, body = route(request.params)
            return 200, content_type, body

        self.add("GET", pattern, handler)

    def patterns(self) -> List[str]:
        """Every registered route pattern (the 404 listing)."""
        return sorted(
            set(self._exact) | {row[1] for row in self._prefix}
        )

    def _resolve(
        self, path: str
    ) -> Optional[Tuple[str, Dict[str, Handler]]]:
        methods = self._exact.get(path)
        if methods is not None:
            return "", methods
        for prefix, __, prefix_methods in self._prefix:
            if path.startswith(prefix) and len(path) > len(prefix):
                return path[len(prefix):], prefix_methods
        return None

    @staticmethod
    def _allowed(methods: Dict[str, Handler]) -> List[str]:
        allowed = set(methods)
        if "GET" in allowed:
            allowed.add("HEAD")
        return sorted(allowed)

    def dispatch(
        self,
        method: str,
        path: str,
        params: Dict[str, str],
        body: bytes = b"",
    ) -> _Response:
        """Route one request; returns ``(status, ctype, body, headers)``."""
        resolved = self._resolve(path)
        if resolved is None:
            doc = json.dumps(
                {
                    "ok": False,
                    "error": f"unknown path {path!r}",
                    "routes": self.patterns(),
                },
                sort_keys=True,
            )
            return 404, "application/json", (doc + "\n").encode(), {}
        operand, methods = resolved
        method = method.upper()
        handler = methods.get(method)
        if handler is None and method == "HEAD":
            handler = methods.get("GET")
        if handler is None:
            allowed = self._allowed(methods)
            doc = json.dumps(
                {
                    "ok": False,
                    "error": f"method {method} not allowed",
                    "allow": allowed,
                },
                sort_keys=True,
            )
            return (
                405,
                "application/json",
                (doc + "\n").encode(),
                {"Allow": ", ".join(allowed)},
            )
        request = HttpRequest(
            method=method,
            path=path,
            operand=operand,
            params=params,
            body=body,
        )
        try:
            status, content_type, payload = handler(request)
        except ValueError as exc:  # bad client input, e.g. ?last=x
            return 400, "text/plain", f"{exc}\n".encode(), {}
        except Exception as exc:  # noqa: BLE001 -- report, don't die
            return 500, "text/plain", f"{exc}\n".encode(), {}
        if isinstance(payload, str):
            payload = payload.encode("utf-8")
        return status, content_type, payload, {}


class RouteHTTPServer:
    """Serve one :class:`RouteTable` over localhost HTTP.

    Parameters
    ----------
    table:
        The route table (may keep being populated until :meth:`start`).
    port:
        TCP port on 127.0.0.1 (``0`` picks an ephemeral port; read the
        bound address back from :attr:`address`).
    on_request:
        Optional hook called with the request path (used by the daemon
        to count ``service.daemon.http_requests``).  Exceptions are
        swallowed -- a metrics hook must never 500 a request.
    """

    def __init__(
        self,
        table: Optional[RouteTable] = None,
        port: int = 0,
        host: str = "127.0.0.1",
        on_request: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.table = table if table is not None else RouteTable()
        self.host = host
        self.port = int(port)
        self.on_request = on_request
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The bound ``(host, port)``, or ``None`` before :meth:`start`."""
        if self._server is None:
            return None
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> Tuple[str, int]:
        """Bind and serve in a daemon thread; returns the address."""
        if self._server is not None:
            raise RuntimeError("server already started")
        owner = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def _serve(self, method: str) -> None:
                path, __, query = self.path.partition("?")
                params = {
                    key: values[-1]
                    for key, values in parse_qs(query).items()
                }
                if owner.on_request is not None:
                    try:
                        owner.on_request(path)
                    except Exception:  # noqa: BLE001 -- hook must not 500
                        pass
                body = b""
                length = int(self.headers.get("Content-Length") or 0)
                if length > MAX_BODY_BYTES:
                    self._reply(
                        413, "text/plain", b"request body too large\n", {}
                    )
                    return
                if length > 0:
                    body = self.rfile.read(length)
                status, content_type, payload, headers = (
                    owner.table.dispatch(method, path, params, body)
                )
                self._reply(
                    status,
                    content_type,
                    payload,
                    headers,
                    head_only=(method == "HEAD"),
                )

            def do_GET(self) -> None:  # noqa: N802 -- http.server API
                self._serve("GET")

            def do_HEAD(self) -> None:  # noqa: N802
                self._serve("HEAD")

            def do_PUT(self) -> None:  # noqa: N802
                self._serve("PUT")

            def do_POST(self) -> None:  # noqa: N802
                self._serve("POST")

            def do_DELETE(self) -> None:  # noqa: N802
                self._serve("DELETE")

            def do_PATCH(self) -> None:  # noqa: N802
                self._serve("PATCH")

            def do_OPTIONS(self) -> None:  # noqa: N802
                self._serve("OPTIONS")

            def _reply(
                self,
                status: int,
                content_type: str,
                payload: bytes,
                headers: Dict[str, str],
                head_only: bool = False,
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                for name, value in headers.items():
                    self.send_header(name, value)
                self.end_headers()
                if not head_only:
                    self.wfile.write(payload)

            def log_message(self, *args) -> None:  # silence stderr
                return

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        self._thread.start()
        address = self.address
        assert address is not None
        return address

    def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "RouteHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class TelemetrySidecar(RouteHTTPServer):
    """Serve read-only telemetry routes over localhost HTTP.

    Parameters
    ----------
    routes:
        Mapping of exact path -> callable taking the parsed query
        params and returning ``(content_type, body)``.  A route raising
        :class:`ValueError` answers 400 (bad client input), anything
        else 500; unknown paths answer 404 listing the routes.
    port:
        TCP port on 127.0.0.1 (``0`` picks an ephemeral port; read the
        bound address back from :attr:`address`).
    on_request:
        Optional hook called with the request path (used by the daemon
        to count ``service.daemon.http_requests``).
    handlers:
        Mapping of pattern -> full :data:`Handler` for GET routes that
        need the dispatch-level :class:`HttpRequest` (e.g. the operand
        of a ``/traces/<id>`` prefix route, which the simple ``routes``
        signature cannot see).
    """

    def __init__(
        self,
        routes: Dict[str, Route],
        port: int = 0,
        host: str = "127.0.0.1",
        on_request: Optional[Callable[[str], None]] = None,
        handlers: Optional[Dict[str, Handler]] = None,
    ) -> None:
        super().__init__(
            table=RouteTable(),
            port=port,
            host=host,
            on_request=on_request,
        )
        self.routes = dict(routes)
        self.handlers = dict(handlers or {})

    def start(self) -> Tuple[str, int]:
        # Rebuild the table from ``self.routes`` at start so routes
        # added after construction (tests do this) are honored.
        self.table = RouteTable()
        for path, route in self.routes.items():
            self.table.add_simple(path, route)
        for pattern, handler in self.handlers.items():
            self.table.add("GET", pattern, handler)
        return super().start()

    def __enter__(self) -> "TelemetrySidecar":
        self.start()
        return self
