"""Distributed cache fabric: N daemons, one warm cache.

The content addresses of :mod:`repro.service.digest` are
host-independent -- a (network, clocks, config) triple digests to the
same key on every machine, and a cluster's sub-key is a function of the
sub-circuit's content alone.  This module exploits that to share warm
results *across* hosts:

* :class:`CacheServer` -- an HTTP object store exposing one
  :class:`~repro.service.cache.ResultCache` over the shared
  :class:`~repro.service.httpmon.RouteTable` stack.  ``GET``/``PUT``/
  ``HEAD`` by digest, ``repro.fabric/1`` envelopes, integrity verified
  on both ends, and **lease-based eviction**: a client naming itself in
  ``?lease=<owner>`` holds a TTL lease on the entry, and the server's
  LRU never evicts a leased entry out from under a peer that recently
  used it.
* :class:`ShardRouter` -- deterministic digest-prefix sharding over a
  static peer list (see the class docstring for the hash scheme).
* :class:`RemoteCache` -- the HTTP client side: per-request timeout,
  bounded retry with backoff, and graceful degradation (an unreachable
  peer is marked unhealthy and skipped until a periodic re-probe
  succeeds -- a dead peer costs recomputation, never a failed job).
* :class:`TieredCache` -- local L1 :class:`ResultCache` in front of a
  remote L2 :class:`RemoteCache`, implementing the ``ResultCache``
  probe/store surface so the daemon, the batch engine and the cluster
  cache all gain the fabric without call-site rewrites.  Remote hits
  are written through to L1.

Everything observable lands under ``service.fabric.*`` (see
``docs/observability.md``): remote hit/miss/store counters, a
round-trip latency histogram, a ``degraded`` gauge (number of
unhealthy peers) feeding the ``fabric.peer_down`` default alert rule.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.obs.hist import LATENCY_BUCKETS
from repro.service.cache import (
    CACHE_SCHEMA,
    CacheStats,
    ResultCache,
    _payload_sha,
)
from repro.service.httpmon import HttpRequest, RouteHTTPServer, RouteTable

__all__ = [
    "FABRIC_SCHEMA",
    "CacheServer",
    "FabricStats",
    "RemoteCache",
    "ShardRouter",
    "TieredCache",
]

#: Schema identifier of one fabric wire envelope.
FABRIC_SCHEMA = "repro.fabric/1"

#: Counter namespace of the fabric client side.
COUNTER_PREFIX = "service.fabric"

#: Number of digest-prefix buckets the key space is divided into.
SHARD_BUCKETS = 16


def _default_owner() -> str:
    """Lease owner identity: stable per process, unique per host."""
    return f"{socket.gethostname()}:{os.getpid()}"


class ShardRouter:
    """Deterministic digest-prefix sharding over a static peer list.

    Hash scheme (documented; stable across processes and Python hash
    seeds):

    1. A key's **bucket** is its first hex nibble:
       ``bucket = int(key[0], 16)`` -- 16 buckets over the SHA-256 key
       space, uniformly filled because the digests are uniform.
    2. Each bucket is assigned to a peer by **rendezvous (highest
       random weight) hashing**: the owner of bucket ``b`` is the peer
       maximising ``sha256(f"{b:x}|{peer_url}")``.

    Rendezvous hashing gives minimal movement on peer-set change:
    removing one peer reassigns exactly the buckets that peer owned
    (every other bucket keeps its argmax); adding a peer steals only
    the buckets it now wins.  The mapping is a pure function of the
    peer-URL set, so every client with the same ``--peers`` list routes
    identically without coordination.
    """

    def __init__(self, peers: Sequence[str]) -> None:
        # Dedupe while preserving order; normalise trailing slashes so
        # "http://h:1/" and "http://h:1" are one peer.
        cleaned = []
        for peer in peers:
            url = str(peer).rstrip("/")
            if url and url not in cleaned:
                cleaned.append(url)
        if not cleaned:
            raise ValueError("ShardRouter needs at least one peer")
        self.peers: Tuple[str, ...] = tuple(cleaned)
        self._owners: Tuple[str, ...] = tuple(
            self._rendezvous(bucket) for bucket in range(SHARD_BUCKETS)
        )

    def _rendezvous(self, bucket: int) -> str:
        def weight(peer: str) -> str:
            seed = f"{bucket:x}|{peer}".encode("utf-8")
            return hashlib.sha256(seed).hexdigest()

        return max(self.peers, key=weight)

    @staticmethod
    def bucket_of(key: str) -> int:
        """The digest-prefix bucket of one key (first hex nibble)."""
        try:
            return int(key[0], 16)
        except (IndexError, ValueError):
            raise ValueError(f"malformed cache key {key!r}") from None

    def peer_for(self, key: str) -> str:
        """The peer URL owning ``key``."""
        return self._owners[self.bucket_of(key)]

    def mapping(self) -> Dict[int, str]:
        """bucket -> owning peer URL (for tests and ``/fabricz``)."""
        return dict(enumerate(self._owners))


class CacheServer(RouteHTTPServer):
    """HTTP object store: one :class:`ResultCache` on the wire.

    Routes (``repro.fabric/1`` envelopes)::

        GET    /objects/<key>[?lease=<owner>&ttl=<s>]  -> envelope|404
        HEAD   /objects/<key>                          -> 200|404
        PUT    /objects/<key>[?lease=<owner>&ttl=<s>]  <- envelope
        DELETE /leases/<key>?owner=<owner>             release a lease
        GET    /healthz                                liveness JSON
        GET    /fabricz                                store/lease stats

    Integrity: a ``PUT`` body's entry must carry a ``payload_sha256``
    matching the recomputed digest of its payload+manifest, or the
    request is rejected with 400 (counted as
    ``service.fabric.server.integrity_rejects``) -- a corrupt client
    can never poison the shared store.  ``GET`` responses are verified
    again client-side (:class:`RemoteCache`), so a corrupt *server*
    cannot poison a client either.

    Leases: ``?lease=<owner>`` on GET/PUT grants ``owner`` a TTL lease
    on the entry.  The store's LRU eviction (capacity ``max_entries``)
    skips leased keys via :class:`ResultCache`'s ``protect`` hook, so
    an entry a peer recently read or wrote is never evicted out from
    under it; the capacity bound is advisory while leases pin entries
    over it.  Leases expire by wall clock; ``DELETE /leases/<key>``
    releases one early.
    """

    def __init__(
        self,
        root: Union[str, Path],
        port: int = 0,
        host: str = "127.0.0.1",
        max_entries: Optional[int] = 4096,
        lease_ttl_s: float = 600.0,
    ) -> None:
        super().__init__(table=RouteTable(), port=port, host=host)
        self.cache = ResultCache(
            root,
            max_entries=max_entries,
            counter_prefix="service.fabric.server",
            protect=self.leased,
        )
        self.lease_ttl_s = float(lease_ttl_s)
        self.started_at = time.time()
        self.requests = 0
        #: key -> {owner: lease expiry (epoch seconds)}
        self._leases: Dict[str, Dict[str, float]] = {}
        self._lock = threading.Lock()
        self.table.add("GET", "/objects/<key>", self._get_object)
        self.table.add("HEAD", "/objects/<key>", self._head_object)
        self.table.add("PUT", "/objects/<key>", self._put_object)
        self.table.add("DELETE", "/leases/<key>", self._release_lease)
        self.table.add("GET", "/healthz", self._healthz)
        self.table.add("GET", "/fabricz", self._fabricz)

    # ------------------------------------------------------------------
    # leases
    # ------------------------------------------------------------------
    def leased(self, key: str) -> bool:
        """True while any unexpired lease pins ``key`` (protect hook)."""
        now = time.time()
        with self._lock:
            holders = self._leases.get(key)
            if not holders:
                return False
            live = {
                owner: expiry
                for owner, expiry in holders.items()
                if expiry > now
            }
            if live:
                self._leases[key] = live
                return True
            del self._leases[key]
            return False

    def lease_count(self) -> int:
        """Number of keys currently pinned by an unexpired lease."""
        now = time.time()
        with self._lock:
            return sum(
                1
                for holders in self._leases.values()
                if any(expiry > now for expiry in holders.values())
            )

    def _grant(self, key: str, params: Dict[str, str]) -> None:
        owner = params.get("lease")
        if not owner:
            return
        try:
            ttl = float(params.get("ttl", self.lease_ttl_s))
        except ValueError:
            raise ValueError(
                f"?ttl must be a number, got {params['ttl']!r}"
            ) from None
        ttl = min(max(ttl, 0.0), self.lease_ttl_s)
        with self._lock:
            self._leases.setdefault(key, {})[owner] = time.time() + ttl
        obs.counter("service.fabric.server.lease_grants")

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def _get_object(
        self, request: HttpRequest
    ) -> Tuple[int, str, str]:
        self.requests += 1
        obs.counter("service.fabric.server.gets")
        key = request.operand
        entry = self.cache.get(key)  # raises ValueError on a bad key
        if entry is None:
            doc = json.dumps(
                {"ok": False, "error": f"unknown key {key!r}"},
                sort_keys=True,
            )
            return 404, "application/json", doc + "\n"
        self._grant(key, request.params)
        envelope = {"schema": FABRIC_SCHEMA, "key": key, "entry": entry}
        return (
            200,
            "application/json",
            json.dumps(envelope, sort_keys=True) + "\n",
        )

    def _head_object(
        self, request: HttpRequest
    ) -> Tuple[int, str, str]:
        self.requests += 1
        obs.counter("service.fabric.server.heads")
        # Cheap existence probe: no entry read, no integrity check, no
        # recency bump -- HEAD must stay O(1).
        present = request.operand in self.cache
        status = 200 if present else 404
        return (
            status,
            "application/json",
            json.dumps({"ok": present}, sort_keys=True) + "\n",
        )

    def _put_object(
        self, request: HttpRequest
    ) -> Tuple[int, str, str]:
        self.requests += 1
        obs.counter("service.fabric.server.puts")
        key = request.operand
        self.cache._entry_path(key)  # key hygiene: ValueError -> 400
        try:
            envelope = json.loads(request.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise ValueError("request body is not valid JSON") from None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema") != FABRIC_SCHEMA
        ):
            raise ValueError(
                f"request body is not a {FABRIC_SCHEMA} envelope"
            )
        entry = envelope.get("entry")
        if not isinstance(entry, dict) or not self._verify(key, entry):
            obs.counter("service.fabric.server.integrity_rejects")
            raise ValueError(
                "entry failed integrity verification "
                "(key/schema/payload_sha256 mismatch)"
            )
        manifest = entry.get("manifest")
        self.cache.put(
            key,
            entry["payload"],
            manifest if isinstance(manifest, dict) else None,
        )
        self._grant(key, request.params)
        doc = json.dumps({"ok": True, "key": key}, sort_keys=True)
        return 200, "application/json", doc + "\n"

    @staticmethod
    def _verify(key: str, entry: Dict[str, object]) -> bool:
        if entry.get("schema") != CACHE_SCHEMA or entry.get("key") != key:
            return False
        expected = entry.get("payload_sha256")
        actual = _payload_sha(entry.get("payload"), entry.get("manifest"))
        return expected == actual

    def _release_lease(
        self, request: HttpRequest
    ) -> Tuple[int, str, str]:
        key = request.operand
        owner = request.params.get("owner")
        if not owner:
            raise ValueError("?owner=<owner> is required")
        with self._lock:
            holders = self._leases.get(key) or {}
            released = holders.pop(owner, None) is not None
            if not holders:
                self._leases.pop(key, None)
        doc = json.dumps(
            {"ok": True, "released": released}, sort_keys=True
        )
        return 200, "application/json", doc + "\n"

    def _healthz(self, request: HttpRequest) -> Tuple[int, str, str]:
        doc = json.dumps(
            {
                "ok": True,
                "schema": FABRIC_SCHEMA,
                "pid": os.getpid(),
                "uptime_s": round(time.time() - self.started_at, 3),
                "objects": self.cache.stats.entries,
            },
            sort_keys=True,
        )
        return 200, "application/json", doc + "\n"

    def _fabricz(self, request: HttpRequest) -> Tuple[int, str, str]:
        doc = json.dumps(
            {
                "ok": True,
                "schema": FABRIC_SCHEMA,
                "requests": self.requests,
                "leases": self.lease_count(),
                "lease_ttl_s": self.lease_ttl_s,
                "max_entries": self.cache.max_entries,
                "store": self.cache.stats.to_dict(),
            },
            sort_keys=True,
        )
        return 200, "application/json", doc + "\n"

    def stop(self) -> None:
        super().stop()
        self.cache.close()


@dataclass
class FabricStats:
    """In-process counters of one :class:`RemoteCache`."""

    remote_hits: int = 0
    remote_misses: int = 0
    remote_stores: int = 0
    store_errors: int = 0
    errors: int = 0
    retries: int = 0
    integrity_failures: int = 0
    #: Requests short-circuited because the owning peer was unhealthy.
    degraded_skips: int = 0
    #: Healthy -> down transitions observed.
    peer_down_events: int = 0
    #: Peer-set rebuilds from a changed ``peers_file``.
    peer_set_reloads: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.remote_hits,
            "misses": self.remote_misses,
            "stores": self.remote_stores,
            "store_errors": self.store_errors,
            "errors": self.errors,
            "retries": self.retries,
            "integrity_failures": self.integrity_failures,
            "degraded_skips": self.degraded_skips,
            "peer_down_events": self.peer_down_events,
            "peer_set_reloads": self.peer_set_reloads,
        }

    @property
    def lookups(self) -> int:
        return self.remote_hits + self.remote_misses

    @property
    def hit_rate(self) -> float:
        return self.remote_hits / self.lookups if self.lookups else 0.0


@dataclass
class _PeerState:
    url: str
    healthy: bool = True
    down_since: Optional[float] = None
    #: Earliest wall time the next re-probe may touch this peer.
    next_probe: float = 0.0
    consecutive_failures: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class RemoteCache:
    """HTTP client of the cache fabric (the remote L2).

    Parameters
    ----------
    peers:
        Static list of :class:`CacheServer` base URLs; keys shard over
        them via :class:`ShardRouter`.
    timeout_s:
        Per-request socket timeout.  The fabric is an optimisation
        layer: it must fail *fast* and let the caller recompute.
    retries:
        Extra attempts per request after the first (with backoff).
    backoff_s:
        Sleep between attempts, doubled each retry.
    reprobe_s:
        How long an unhealthy peer is skipped before one request is
        allowed through to re-probe it.
    lease_owner:
        Identity sent as ``?lease=`` so the server pins entries this
        host uses (default ``hostname:pid``).
    on_peer_down / on_peer_up:
        Optional hooks called with the peer URL on health transitions
        (the daemon fires/clears the ``fabric.peer_down`` alert here).
        Exceptions are swallowed.
    peers_file:
        Optional path the peer set was loaded from.  When set,
        :meth:`maybe_reload_peers` re-reads it on mtime change and
        rebuilds the shard router in place (counted as
        ``service.fabric.peer_set_reloads``) -- dynamic membership
        without a daemon restart.
    """

    def __init__(
        self,
        peers: Sequence[str],
        timeout_s: float = 2.0,
        retries: int = 1,
        backoff_s: float = 0.05,
        reprobe_s: float = 5.0,
        lease_owner: Optional[str] = None,
        on_peer_down: Optional[Callable[[str], None]] = None,
        on_peer_up: Optional[Callable[[str], None]] = None,
        peers_file: Union[None, str, "os.PathLike[str]"] = None,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.router = ShardRouter(peers)
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.reprobe_s = float(reprobe_s)
        self.lease_owner = lease_owner or _default_owner()
        self.on_peer_down = on_peer_down
        self.on_peer_up = on_peer_up
        self.stats = FabricStats()
        self._states = {
            url: _PeerState(url) for url in self.router.peers
        }
        self.peers_file = (
            Path(peers_file) if peers_file is not None else None
        )
        self._peers_mtime = self._peers_file_mtime()
        self._reload_lock = threading.Lock()

    # ------------------------------------------------------------------
    # dynamic membership
    # ------------------------------------------------------------------
    def _peers_file_mtime(self) -> Optional[float]:
        if self.peers_file is None:
            return None
        try:
            return self.peers_file.stat().st_mtime
        except OSError:
            return None

    def maybe_reload_peers(self) -> bool:
        """Re-read ``peers_file`` when its mtime changed; True on a
        peer-set change.

        Rendezvous hashing makes the swap cheap: only the buckets whose
        argmax changed move, so a new peer starts receiving exactly the
        buckets it now wins.  Health state for retained peers is
        preserved (a peer that was down stays down until it re-probes);
        an unreadable or empty file leaves the current set untouched.
        Never raises -- the daemon calls this from its history tick.
        """
        if self.peers_file is None:
            return False
        mtime = self._peers_file_mtime()
        if mtime is None or mtime == self._peers_mtime:
            return False
        with self._reload_lock:
            if mtime == self._peers_mtime:
                return False
            self._peers_mtime = mtime
            try:
                from repro.obs.fleet import load_peers

                peers = load_peers(self.peers_file)
                if not peers:
                    return False
                router = ShardRouter(peers)
            except Exception:  # noqa: BLE001 -- keep the old set
                return False
            if router.peers == self.router.peers:
                return False
            states = {
                url: self._states.get(url) or _PeerState(url)
                for url in router.peers
            }
            self.router = router
            self._states = states
        self.stats.peer_set_reloads += 1
        obs.counter(f"{COUNTER_PREFIX}.peer_set_reloads")
        obs.event(
            f"{COUNTER_PREFIX}.peer_set_reload",
            peers=list(router.peers),
        )
        self._sync_degraded_gauge()
        return True

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    @property
    def peers(self) -> Tuple[str, ...]:
        return self.router.peers

    def down_peers(self) -> List[str]:
        """URLs of peers currently marked unhealthy."""
        return [
            state.url
            for state in self._states.values()
            if not state.healthy
        ]

    @property
    def degraded(self) -> bool:
        """True while at least one peer is marked unhealthy."""
        return any(not s.healthy for s in self._states.values())

    def _sync_degraded_gauge(self) -> None:
        obs.gauge(
            f"{COUNTER_PREFIX}.degraded", float(len(self.down_peers()))
        )

    def _mark_down(self, state: _PeerState) -> None:
        with state.lock:
            transition = state.healthy
            state.healthy = False
            if transition:
                state.down_since = time.time()
            state.consecutive_failures += 1
            state.next_probe = time.time() + self.reprobe_s
        if transition:
            self.stats.peer_down_events += 1
            obs.counter(f"{COUNTER_PREFIX}.peer_down")
            obs.event(
                f"{COUNTER_PREFIX}.peer_down",
                peer=state.url,
            )
            self._sync_degraded_gauge()
            if self.on_peer_down is not None:
                try:
                    self.on_peer_down(state.url)
                except Exception:  # noqa: BLE001 -- hook must not break I/O
                    pass

    def _mark_up(self, state: _PeerState) -> None:
        with state.lock:
            transition = not state.healthy
            state.healthy = True
            state.down_since = None
            state.consecutive_failures = 0
        if transition:
            obs.counter(f"{COUNTER_PREFIX}.peer_up")
            obs.event(f"{COUNTER_PREFIX}.peer_up", peer=state.url)
            self._sync_degraded_gauge()
            if self.on_peer_up is not None:
                try:
                    self.on_peer_up(state.url)
                except Exception:  # noqa: BLE001
                    pass

    def _usable(self, state: _PeerState) -> bool:
        """Healthy, or unhealthy but due for a re-probe request."""
        with state.lock:
            if state.healthy:
                return True
            if time.time() >= state.next_probe:
                # Let exactly this request through; push the window so
                # concurrent callers keep degrading instead of queueing
                # up on a dead socket.
                state.next_probe = time.time() + self.reprobe_s
                return True
        self.stats.degraded_skips += 1
        obs.counter(f"{COUNTER_PREFIX}.degraded_skips")
        return False

    def probe_peers(
        self, timeout_s: Optional[float] = None
    ) -> List[str]:
        """Actively health-check every peer; returns the down list.

        ``GET /healthz`` with a short timeout against each peer,
        updating health state on the way.  The daemon calls this on its
        metrics-history cadence so a dead peer is noticed (and the
        ``fabric.peer_down`` alert fires) even while no cache traffic
        flows.
        """
        timeout = timeout_s if timeout_s is not None else self.timeout_s
        for state in self._states.values():
            try:
                request = urllib.request.Request(
                    f"{state.url}/healthz", method="GET"
                )
                with urllib.request.urlopen(
                    request, timeout=timeout
                ) as response:
                    ok = response.status == 200
            except Exception:  # noqa: BLE001 -- any failure means down
                ok = False
            if ok:
                self._mark_up(state)
            else:
                self._mark_down(state)
        self._sync_degraded_gauge()
        return self.down_peers()

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        state: _PeerState,
        method: str,
        path: str,
        body: Optional[bytes] = None,
    ) -> Tuple[Optional[int], Optional[bytes]]:
        """One request with bounded retry; ``(status, body)`` or
        ``(None, None)`` after marking the peer down."""
        attempt = 0
        while True:
            started = time.perf_counter()
            try:
                request = urllib.request.Request(
                    f"{state.url}{path}",
                    data=body,
                    method=method,
                    headers=(
                        {"Content-Type": "application/json"}
                        if body is not None
                        else {}
                    ),
                )
                with urllib.request.urlopen(
                    request, timeout=self.timeout_s
                ) as response:
                    payload = response.read()
                    status = response.status
            except urllib.error.HTTPError as exc:
                # The server answered: the peer is alive.  4xx/5xx is a
                # per-request verdict (404 = miss), not a health event.
                obs.histogram(
                    f"{COUNTER_PREFIX}.round_trip_seconds",
                    time.perf_counter() - started,
                    LATENCY_BUCKETS,
                )
                self._mark_up(state)
                try:
                    detail = exc.read()
                except Exception:  # noqa: BLE001
                    detail = b""
                return exc.code, detail
            except (OSError, urllib.error.URLError):
                attempt += 1
                if attempt <= self.retries:
                    self.stats.retries += 1
                    obs.counter(f"{COUNTER_PREFIX}.retries")
                    time.sleep(self.backoff_s * (2 ** (attempt - 1)))
                    continue
                self.stats.errors += 1
                obs.counter(f"{COUNTER_PREFIX}.errors")
                self._mark_down(state)
                return None, None
            obs.histogram(
                f"{COUNTER_PREFIX}.round_trip_seconds",
                time.perf_counter() - started,
                LATENCY_BUCKETS,
            )
            self._mark_up(state)
            return status, payload

    # ------------------------------------------------------------------
    # ResultCache-shaped remote operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The remote entry under ``key``, verified, or ``None``."""
        state = self._states[self.router.peer_for(key)]
        if not self._usable(state):
            return None
        status, payload = self._request(
            state,
            "GET",
            f"/objects/{key}?lease={self.lease_owner}",
        )
        if status != 200 or payload is None:
            if status is not None:
                self.stats.remote_misses += 1
                obs.counter(f"{COUNTER_PREFIX}.remote_misses")
            return None
        try:
            envelope = json.loads(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            envelope = None
        entry = (
            envelope.get("entry")
            if isinstance(envelope, dict)
            and envelope.get("schema") == FABRIC_SCHEMA
            else None
        )
        if not isinstance(entry, dict) or not CacheServer._verify(
            key, entry
        ):
            # A corrupt/lying peer is a miss, never a crash.
            self.stats.integrity_failures += 1
            obs.counter(f"{COUNTER_PREFIX}.integrity_failures")
            self.stats.remote_misses += 1
            obs.counter(f"{COUNTER_PREFIX}.remote_misses")
            return None
        self.stats.remote_hits += 1
        obs.counter(f"{COUNTER_PREFIX}.remote_hits")
        return entry

    def head(self, key: str) -> bool:
        """Cheap remote existence probe (no entry transfer)."""
        state = self._states[self.router.peer_for(key)]
        if not self._usable(state):
            return False
        status, __ = self._request(state, "HEAD", f"/objects/{key}")
        return status == 200

    def put(
        self,
        key: str,
        payload: Dict[str, object],
        manifest: Optional[Dict[str, object]] = None,
    ) -> bool:
        """Store an entry on the owning peer; False on degradation."""
        state = self._states[self.router.peer_for(key)]
        if not self._usable(state):
            return False
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "stored_at": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime()
            ),
            "payload_sha256": _payload_sha(payload, manifest),
            "payload": payload,
            "manifest": manifest,
        }
        envelope = {"schema": FABRIC_SCHEMA, "key": key, "entry": entry}
        body = json.dumps(
            envelope, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        status, __ = self._request(
            state,
            "PUT",
            f"/objects/{key}?lease={self.lease_owner}",
            body=body,
        )
        if status == 200:
            self.stats.remote_stores += 1
            obs.counter(f"{COUNTER_PREFIX}.remote_stores")
            return True
        if status is not None:
            # Alive peer refused the entry (integrity reject, bad key).
            self.stats.store_errors += 1
            obs.counter(f"{COUNTER_PREFIX}.store_errors")
        return False

    def release(self, key: str) -> None:
        """Release this client's lease on ``key`` (best effort)."""
        state = self._states[self.router.peer_for(key)]
        if not self._usable(state):
            return
        self._request(
            state,
            "DELETE",
            f"/leases/{key}?owner={self.lease_owner}",
        )


class _TieredStats:
    """Combined stats view: local L1 counters + remote L2 sub-dict."""

    def __init__(self, local: CacheStats, remote: FabricStats) -> None:
        self._local = local
        self._remote = remote

    def __getattr__(self, name: str):
        return getattr(self._local, name)

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = dict(self._local.to_dict())
        doc["remote"] = self._remote.to_dict()
        doc["remote_hit_rate"] = round(self._remote.hit_rate, 4)
        return doc


class TieredCache:
    """Local L1 in front of the remote fabric L2.

    Implements the :class:`ResultCache` probe/store surface (``get`` /
    ``put`` / ``evict`` / ``flush`` / ``close`` / ``stats`` /
    ``__contains__`` / ``__len__``) so every existing call site -- the
    daemon, the batch engine, the cluster cache -- gains the fabric by
    substitution, not rewrite.

    Semantics:

    * ``get`` -- L1 first (free); on miss, the owning peer.  A remote
      hit is **written through to L1** so the next probe is local.
    * ``put`` -- written to L1 and pushed to the owning peer (best
      effort; a down peer degrades to local-only silently).
    * ``evict``/``clear`` -- local only.  Entries are content-addressed,
      so a remote copy is never *wrong* for its key; remote capacity is
      the server's LRU's problem, not the mutating client's.
    * degradation -- every remote failure path inside
      :class:`RemoteCache` returns miss/False, so the tier never
      raises on peer death; the job recomputes instead.
    """

    def __init__(self, local: ResultCache, remote: RemoteCache) -> None:
        self.local = local
        self.remote = remote
        self.stats = _TieredStats(local.stats, remote.stats)

    # -- ResultCache surface -------------------------------------------
    @property
    def root(self) -> Path:
        return self.local.root

    @property
    def max_entries(self) -> Optional[int]:
        return self.local.max_entries

    def get(self, key: str) -> Optional[Dict[str, object]]:
        entry = self.local.get(key)
        if entry is not None:
            return entry
        entry = self.remote.get(key)
        if entry is not None:
            payload = entry.get("payload")
            manifest = entry.get("manifest")
            if isinstance(payload, dict):
                # Write-through: the next probe for this key is an L1
                # hit (and survives the peer dying).
                self.local.put(
                    key,
                    payload,
                    manifest if isinstance(manifest, dict) else None,
                )
        return entry

    def put(
        self,
        key: str,
        payload: Dict[str, object],
        manifest: Optional[Dict[str, object]] = None,
    ) -> Path:
        path = self.local.put(key, payload, manifest)
        self.remote.put(key, payload, manifest)
        return path

    def evict(self, key: str) -> bool:
        return self.local.evict(key)

    def clear(self) -> int:
        return self.local.clear()

    def flush(self) -> None:
        self.local.flush()

    def close(self) -> None:
        self.local.close()

    def __enter__(self) -> "TieredCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.local)

    def __bool__(self) -> bool:
        return True

    def __contains__(self, key: str) -> bool:
        return key in self.local or self.remote.head(key)
