"""Content-addressed on-disk result cache.

Entries are keyed by :func:`repro.service.digest.cache_key` -- a SHA-256
over the (network digest, clock-schedule digest, config digest) triple
-- and live under ``<root>/objects/<key[:2]>/<key>.json``.  Each entry
is one JSON document::

    {
      "schema": "repro.cache/1",
      "key": "<sha256>",
      "stored_at": "2026-08-06T12:00:00",
      "payload_sha256": "<sha256 of canonical(payload+manifest)>",
      "payload": {... repro.result/1 ...},
      "manifest": {... repro.manifest/1 ...}     # optional
    }

Robustness rules (the cache must *never* take the analysis down):

* loads verify ``payload_sha256`` over the canonical serialisation of
  the payload+manifest; a mismatch, JSON error, truncated file or bad
  schema **evicts** the entry and counts ``service.cache.corrupt`` --
  it never raises;
* writes are atomic (temp file + ``os.replace``) so a crashed writer
  leaves either the old entry or the new one, not a torn file;
* the LRU index (``<root>/index.json``) is advisory: if it is missing
  or corrupt it is rebuilt by scanning the object store.

Eviction is LRU by last *use* (hits refresh recency), bounded by
``max_entries``.  All mutations bump :mod:`repro.obs` counters
(``service.cache.hits`` / ``.misses`` / ``.stores`` / ``.evictions`` /
``.corrupt``) so batch runs and the daemon can report hit rates.

Hot-path contract (regression-tested): a ``get`` **hit** performs no
``objects/`` directory iteration and no index-file write.  The entry
count is maintained incrementally from index mutations, and recency
bumps are *write-behind*: hits mark the in-memory index dirty and the
index file is flushed on the next ``put`` / ``evict`` / ``clear`` /
``flush`` / ``close``.  Because the index is advisory (``_load_index``
rebuilds it from the object store on corruption or loss), deferring
recency persistence costs at most some LRU precision after a crash,
never correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro import obs
from repro.service.digest import canonical_json

__all__ = ["CACHE_SCHEMA", "CacheStats", "ResultCache"]

#: Schema identifier of one on-disk cache entry.
CACHE_SCHEMA = "repro.cache/1"

#: Schema identifier of the advisory LRU index.
INDEX_SCHEMA = "repro.cache-index/1"


@dataclass
class CacheStats:
    """In-process counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0
    #: Entries on disk after the most recent mutation.
    entries: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "entries": self.entries,
        }

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def _payload_sha(payload: object, manifest: object) -> str:
    doc = canonical_json({"payload": payload, "manifest": manifest})
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk LRU cache of analysis results.

    Parameters
    ----------
    root:
        Cache directory (created on first use).
    max_entries:
        LRU bound; ``None`` disables eviction.
    counter_prefix:
        Namespace for :mod:`repro.obs` counters.  The triple-keyed
        result cache uses the default ``service.cache``; the
        cluster-granular sub-key cache reuses this class under
        ``service.cluster_cache``.
    protect:
        Optional predicate ``key -> bool``; keys it answers True for
        are skipped by LRU eviction (the cache-fabric
        :class:`~repro.service.fabric.CacheServer` protects leased
        entries this way).  Protected keys can push the store over
        ``max_entries``; the bound is advisory under protection
        pressure.  Explicit :meth:`evict` / :meth:`clear` ignore it.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_entries: Optional[int] = 256,
        counter_prefix: str = "service.cache",
        protect: Optional[Callable[[str], bool]] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.root = Path(root)
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._objects = self.root / "objects"
        self._index_path = self.root / "index.json"
        self._index: Optional[Dict[str, float]] = None
        self._prefix = counter_prefix
        self._protect = protect
        #: True when the in-memory index has recency updates that have
        #: not been written to ``index.json`` yet (write-behind).
        self._dirty = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The entry stored under ``key`` or ``None``.

        Returns the full entry document (``payload`` / ``manifest``
        accessible as items).  Integrity failures evict and miss.
        """
        path = self._entry_path(key)
        try:
            raw = path.read_text()
        except OSError:
            self._miss(key)
            return None
        try:
            entry = json.loads(raw)
        except (json.JSONDecodeError, ValueError):
            self._quarantine(key, path, "json-error")
            return None
        if not self._verify(key, entry):
            self._quarantine(key, path, "digest-mismatch")
            return None
        self.stats.hits += 1
        obs.counter(f"{self._prefix}.hits")
        # Write-behind recency: bump the in-memory clock only.  The
        # index file is advisory, so persisting the bump can wait for
        # the next put/evict/flush without risking correctness.
        index = self._load_index()
        index[key] = self._next_seq(index)
        self._dirty = True
        return entry

    def put(
        self,
        key: str,
        payload: Dict[str, object],
        manifest: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Store ``payload`` (+ optional manifest) under ``key``."""
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "stored_at": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime()
            ),
            "payload_sha256": _payload_sha(payload, manifest),
            "payload": payload,
            "manifest": manifest,
        }
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            path,
            json.dumps(entry, sort_keys=True, separators=(",", ":")),
        )
        self.stats.stores += 1
        obs.counter(f"{self._prefix}.stores")
        index = self._load_index()
        index[key] = self._next_seq(index)
        self._evict_lru(index)
        self._save_index(index)
        return path

    def evict(self, key: str) -> bool:
        """Drop one entry; returns True when something was removed."""
        removed = self._remove_entry(key)
        index = self._load_index()
        dropped = index.pop(key, None) is not None
        if removed:
            self.stats.evictions += 1
            obs.counter(f"{self._prefix}.evictions")
        if removed or dropped or self._dirty:
            self._save_index(index)
        return removed

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        count = 0
        for path in self._iter_entries():
            try:
                path.unlink()
                count += 1
            except OSError:
                pass
        self._index = {}
        self._save_index(self._index)
        return count

    def flush(self) -> None:
        """Persist any write-behind recency updates to ``index.json``."""
        if self._dirty and self._index is not None:
            self._save_index(self._index)

    def close(self) -> None:
        """Flush pending index updates (alias kept for symmetry)."""
        self.flush()

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return sum(1 for __ in self._iter_entries())

    def __bool__(self) -> bool:
        """A cache object is always truthy, even when empty.

        Without this, ``__len__`` makes an *empty* cache falsy and
        ``if cache:`` guards silently skip the probe that would have
        counted the first miss.  Callers should still prefer explicit
        ``is not None`` checks.
        """
        return True

    def __contains__(self, key: str) -> bool:
        return self._entry_path(key).exists()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        if not key or any(ch in key for ch in "/\\."):
            raise ValueError(f"malformed cache key {key!r}")
        return self._objects / key[:2] / f"{key}.json"

    def _iter_entries(self):
        if not self._objects.is_dir():
            return
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            yield from sorted(shard.glob("*.json"))

    def _verify(self, key: str, entry: object) -> bool:
        if not isinstance(entry, dict):
            return False
        if entry.get("schema") != CACHE_SCHEMA or entry.get("key") != key:
            return False
        expected = entry.get("payload_sha256")
        actual = _payload_sha(entry.get("payload"), entry.get("manifest"))
        return expected == actual

    def _miss(self, key: str) -> None:
        self.stats.misses += 1
        obs.counter(f"{self._prefix}.misses")

    def _quarantine(self, key: str, path: Path, reason: str) -> None:
        """Evict a corrupt entry and account for it as a miss."""
        self.stats.corrupt += 1
        obs.counter(f"{self._prefix}.corrupt")
        obs.event(f"{self._prefix}.corrupt_entry", key=key, reason=reason)
        try:
            path.unlink()
        except OSError:
            pass
        index = self._load_index()
        if index.pop(key, None) is not None:
            self._save_index(index)
        self._miss(key)

    def _remove_entry(self, key: str) -> bool:
        try:
            self._entry_path(key).unlink()
            return True
        except OSError:
            return False

    def _evict_lru(self, index: Dict[str, float]) -> None:
        if self.max_entries is None:
            return
        # Trust the index outright: stat-ing every entry per put turned
        # eviction into an O(N) filesystem scan.  If the index names a
        # file that is already gone, ``_remove_entry``'s OSError path
        # reconciles it -- the stale index row is dropped without
        # counting an eviction.
        overflow = len(index) - self.max_entries
        if overflow <= 0:
            return
        for key in sorted(index, key=lambda k: index.get(k, 0.0)):
            if overflow <= 0:
                break
            if self._protect is not None and self._protect(key):
                obs.counter(f"{self._prefix}.eviction_blocked")
                continue
            if self._remove_entry(key):
                self.stats.evictions += 1
                obs.counter(f"{self._prefix}.evictions")
            index.pop(key, None)
            overflow -= 1

    # -- index ---------------------------------------------------------
    @staticmethod
    def _next_seq(index: Dict[str, float]) -> float:
        """Monotone logical recency clock (immune to timestamp ties)."""
        return max(index.values(), default=0.0) + 1.0

    def _load_index(self) -> Dict[str, float]:
        if self._index is not None:
            return self._index
        try:
            data = json.loads(self._index_path.read_text())
            if data.get("schema") != INDEX_SCHEMA:
                raise ValueError("bad index schema")
            entries = data["entries"]
            if not isinstance(entries, dict):
                raise ValueError("bad index entries")
            self._index = {
                str(key): float(value) for key, value in entries.items()
            }
        except (OSError, ValueError, KeyError, TypeError):
            # Advisory only: rebuild from the object store.
            self._index = {
                path.stem: path.stat().st_mtime
                for path in self._iter_entries()
            }
        self.stats.entries = len(self._index)
        return self._index

    def _save_index(self, index: Dict[str, float]) -> None:
        self._index = index
        # Maintained incrementally: the index is the entry count.  The
        # previous full ``objects/`` walk here made every get/put O(N).
        self.stats.entries = len(index)
        self._dirty = False
        self.root.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self._index_path,
            json.dumps(
                {"schema": INDEX_SCHEMA, "entries": index},
                sort_keys=True,
                separators=(",", ":"),
            ),
        )

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
