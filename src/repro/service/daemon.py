"""The timing daemon: a long-lived engine behind a Unix socket.

``repro-sta serve --socket /tmp/repro.sock`` starts a
:class:`TimingDaemon`; clients (``repro-sta query``, the
:class:`DaemonClient` helper, or ten lines of any language) speak a
**JSON-lines protocol**: one request object per line in, one response
object per line out, over a ``SOCK_STREAM`` Unix-domain socket.  A
connection may issue any number of requests.

The daemon keeps one :class:`repro.core.incremental.IncrementalAnalyzer`
warm per loaded design, so the expensive work -- parsing the netlist,
estimating delays, extracting clusters and break-open plans -- happens
once.  ``analyze`` answers from the warm engine (cold only on first
load), ``mutate`` applies delay/clock edits through the incremental
engine (cheap delay swap when outside control cones, tracked rebuild
otherwise) and the next ``analyze`` warm-starts Algorithm 1 from the
previous fixed point.  An optional :class:`repro.service.cache.
ResultCache` short-circuits repeated cold loads across daemon restarts.

Requests (see ``docs/service.md`` for the full protocol)::

    {"op": "ping"}
    {"op": "analyze", "netlist": "p.json", "clocks": "c.json"}
    {"op": "mutate",  "netlist": "p.json", "clocks": "c.json",
     "action": "scale_cell", "cell": "s0_i1", "factor": 1.5}
    {"op": "report",  "netlist": "p.json", "clocks": "c.json",
     "endpoint": "s1_l"}
    {"op": "stats"}
    {"op": "health"}
    {"op": "metrics"}
    {"op": "history", "last": 60}
    {"op": "profile", "action": "start", "hz": 100}
    {"op": "buildinfo"}
    {"op": "shutdown"}

Responses always carry ``"ok"``; errors come back as
``{"ok": false, "error": ..., "error_type": ...}`` -- a malformed
request never takes the daemon down.

**Service telemetry** (PR 4; see ``docs/observability.md``): the daemon
keeps an always-on, low-overhead *service recorder* feeding the
``health``/``metrics`` ops and the optional localhost HTTP sidecar
(``--http-port``: ``GET /healthz``, ``GET /metrics``).  A request that
carries a ``repro.trace/1`` context (any :class:`DaemonClient` call made
while the client records) is handled under a per-request recorder whose
snapshot ships back in the response and merges into the client trace --
one Chrome trace across both processes.  With ``--access-log`` every
request appends one ``repro.accesslog/1`` JSON line (op, design, warm
vs rebuild, queue-wait vs handle time, status, duration); requests
slower than the threshold attach their full span tree.

**Self-diagnosis** (PR 7): an :class:`repro.obs.alerts.AlertEngine`
evaluates declarative rules against the metrics history on every
snapshot (``alerts`` op, ``GET /alertz``); an always-on
:class:`repro.obs.flight.FlightRecorder` keeps a ring of recent
requests, root spans and errors (``flight`` op, ``GET /flightz``); a
:class:`repro.obs.flight.StallWatchdog` flags requests in flight past
``stall_timeout_s`` (firing the ``daemon.stalled`` alert with the stuck
thread's stack); and a :class:`repro.obs.flight.CrashHandler` dumps
``repro.crash/1`` reports -- structured frames, all-thread stacks, the
flight ring, active alerts, buildinfo -- for unexpected handler
exceptions (``crash-report`` op, ``GET /crashz``, ``repro-sta doctor``).

**Concurrency** (PR 10; see docs/service.md "Concurrency model"):
request dispatch runs on a bounded thread pool (``--workers``) with
per-connection pipelining, analysis results publish as immutable
copy-on-write :class:`AnalysisSnapshot` objects versioned by a
per-design mutation epoch -- a repeat ``analyze`` with no intervening
mutation answers lock-free straight from the snapshot (``"engine":
"snapshot"``) -- and traced requests bind their per-request recorder
thread-locally, so they no longer serialise daemon-wide.
"""

from __future__ import annotations

import json
import math
import os
import socket
import socketserver
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from repro import obs
from repro.obs import live
from repro.obs.accesslog import AccessLog
from repro.obs.alerts import AlertEngine, AlertRule, load_rules
from repro.obs.flight import (
    CrashHandler,
    FlightRecorder,
    StallWatchdog,
    error_document,
)
from repro.obs.hist import LATENCY_BUCKETS
from repro.obs.profile import SamplingProfiler
from repro.obs.tracestore import TailSampler, TraceStore
from repro.obs.tsdb import MetricsHistory
from repro.service.cache import ResultCache
from repro.service.cluster_cache import ClusterCache, ClusterMap
from repro.service.digest import (
    analysis_config,
    cache_key,
    config_digest,
    network_digest,
    schedule_digest,
)

__all__ = ["DaemonClient", "TimingDaemon", "PROTOCOL_VERSION"]

#: Bumped when the request/response shapes change incompatibly.
PROTOCOL_VERSION = 1

#: Exception types that mean "bad request", not "daemon bug": they get
#: a structured error response but no crash report.  Anything outside
#: this set dumps a ``repro.crash/1`` postmortem.
_EXPECTED_ERRORS = (ValueError, KeyError, TypeError, OSError)


def _json_num(value) -> object:
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


class AnalysisSnapshot:
    """An immutable published analysis result for one design.

    ``responses`` maps an analysis-parameter key (``slow_path_limit``,
    ``tolerance``, ``label``) to the *pristine* response dict built by
    the locked analyze path.  Instances are never mutated after
    publication: a new analysis under the design lock builds a fresh
    ``responses`` dict (copy-on-write) and installs a brand-new
    ``AnalysisSnapshot`` on the state with one reference assignment --
    atomic under the GIL, so lock-free readers either see the old
    snapshot or the new one, never a half-written dict.

    ``epoch`` is the design's mutation epoch at publication time; a
    reader only trusts the snapshot while ``snap.epoch ==
    state.epoch``.  The epoch is bumped (under the design lock) *before*
    a mutation touches the engine, so a reader racing a mutation fails
    the check and falls back to queueing on the lock.
    """

    __slots__ = ("epoch", "responses")

    def __init__(self, epoch: int, responses: Dict[tuple, Dict[str, object]]):
        self.epoch = epoch
        self.responses = responses


class _DesignState:
    """One warm design: parsed network + incremental engine."""

    def __init__(self, netlist: str, clocks: str, default_clock=None):
        from repro.cells import standard_library
        from repro.clocks.serialize import load_schedule
        from repro.core.incremental import IncrementalAnalyzer
        from repro.netlist.blif import load_blif
        from repro.netlist.persistence import load_network
        from repro.netlist.verilog import load_verilog
        from pathlib import Path

        self.netlist = netlist
        self.clocks = clocks
        suffix = Path(netlist).suffix.lower()
        library = standard_library()
        if suffix == ".blif":
            self.network = load_blif(netlist, library, default_clock)
        elif suffix == ".v":
            self.network = load_verilog(netlist, library, default_clock)
        elif suffix == ".json":
            self.network = load_network(netlist, library)
        else:
            raise ValueError(
                f"unknown netlist format {suffix!r} "
                "(use .json, .blif or .v)"
            )
        self.schedule = load_schedule(clocks)
        self.analyzer = IncrementalAnalyzer(self.network, self.schedule)
        self.lock = threading.Lock()
        self.mutations = 0
        self.analyses = 0
        #: Cluster invalidation map at the *current* delay state
        #: (``None`` until the cluster cache first touches this design).
        #: Kept one step behind a mutation on purpose: its sub-keys
        #: address the pre-mutation artifacts that must be dropped.
        self.cluster_map: Optional[ClusterMap] = None
        #: Requests currently queued on / holding this design's lock.
        self.in_flight = 0
        #: Has the *current* engine answered at least once?  Reset on a
        #: full rebuild (clock edits), kept across delay mutations.
        self.served = False
        #: Mutation epoch: bumped under the design lock before every
        #: mutation touches the engine.  Monotonic; read lock-free.
        self.epoch = 0
        #: Last published :class:`AnalysisSnapshot` (``None`` until the
        #: first analyze).  Replaced wholesale, never mutated in place.
        self.snapshot: Optional[AnalysisSnapshot] = None
        #: Analyzes answered from the snapshot without the lock.
        self.snapshot_hits = 0

    @property
    def warm(self) -> bool:
        """Served by the live incremental engine (model reuse)?

        This is *engine* warmth -- the design is parsed and its analysis
        model built -- not fixed-point warmth: a delay mutation drops
        the cached fixed point (see
        :meth:`repro.core.incremental.IncrementalAnalyzer.scale_cell`)
        yet the next answer still comes from the incremental engine.
        """
        return self.served

    def content_key(self, slow_path_limit, tolerance) -> str:
        config = analysis_config(
            slow_path_limit=slow_path_limit, tolerance=tolerance
        )
        return cache_key(
            network_digest(self.network),
            schedule_digest(self.schedule),
            config_digest(config),
        )


class TimingDaemon:
    """Long-lived analyze/what-if/report engine on a Unix socket.

    Parameters
    ----------
    socket_path:
        Unix-domain socket to listen on.
    cache:
        Optional :class:`ResultCache` short-circuiting cold loads.
    slow_path_limit:
        Default ``analyze`` slow-path limit.
    telemetry:
        Keep an always-on service :class:`repro.obs.Recorder` feeding
        the ``health``/``metrics`` ops and the HTTP sidecar (default
        on; ``False`` strips the daemon back to PR-3 behaviour).
    http_port:
        When not ``None``, serve ``/healthz`` and ``/metrics`` over
        localhost HTTP on this port (``0`` picks an ephemeral port;
        see :attr:`http_address`).
    access_log:
        Path or :class:`repro.obs.AccessLog`; one ``repro.accesslog/1``
        JSON line per request.
    slow_threshold_s:
        Requests at least this slow log their full span tree (traced
        requests only -- the span detail comes from the per-request
        recorder).
    cluster_cache:
        Optional :class:`repro.service.cluster_cache.ClusterCache` (or
        a directory path).  Analyses keep per-cluster artifacts in it;
        a ``scale_cell`` mutation then drops exactly the touched
        cluster's sub-entry instead of invalidating the whole
        (network, clocks, config) triple.
    alert_rules:
        ``None`` for the built-in :data:`repro.obs.alerts.DEFAULT_RULES`,
        a path to a TOML/JSON rule file (extends/overrides the
        defaults), or an explicit rule sequence.
    flight_capacity:
        Events kept in the always-on flight ring (0 disables it).
    crash_dir:
        Directory ``repro.crash/1`` reports are written to (``None``
        keeps the last report in memory only).
    stall_timeout_s:
        Requests in flight longer than this fire the ``daemon.stalled``
        alert with the stuck thread's stack (``None`` disables the
        watchdog).
    debug_ops:
        Enable the fault-injection ops ``fail`` and ``sleep`` (CI's
        self-diagnosis smoke uses them; also enabled by the
        ``REPRO_DEBUG_OPS=1`` environment variable).
    install_crash_hooks:
        Chain ``sys.excepthook``/``threading.excepthook`` and enable
        :mod:`faulthandler` process-wide (``repro-sta serve`` turns
        this on; embedded/test daemons leave the process hooks alone --
        request-handler crashes are reported either way).
    workers:
        Size of the bounded request-dispatch thread pool.  Connections
        pipeline onto it (responses still stream back in request
        order), so one slow cold analysis no longer head-of-line-blocks
        requests for unrelated designs on other connections.  ``0``
        dispatches inline on the connection thread (PR-3 behaviour).
    snapshot_reads:
        Enable the lock-free analyze read path: repeat ``analyze``
        requests with no intervening mutation answer straight from the
        design's published :class:`AnalysisSnapshot` without taking the
        per-design lock.  ``False`` forces every analyze through the
        lock (the measured baseline for the concurrency bench).
    """

    def __init__(
        self,
        socket_path: Union[str, "os.PathLike[str]"],
        cache: Optional[ResultCache] = None,
        slow_path_limit: Optional[int] = 50,
        telemetry: bool = True,
        http_port: Optional[int] = None,
        access_log: Union[None, str, "os.PathLike[str]", AccessLog] = None,
        slow_threshold_s: float = 1.0,
        cluster_cache: Union[ClusterCache, str, None] = None,
        history_interval_s: float = 5.0,
        history_capacity: int = 720,
        alert_rules: Union[
            None, str, "os.PathLike[str]", Sequence[AlertRule]
        ] = None,
        flight_capacity: int = 256,
        crash_dir: Union[None, str, "os.PathLike[str]"] = None,
        stall_timeout_s: Optional[float] = 30.0,
        debug_ops: bool = False,
        install_crash_hooks: bool = False,
        cache_server=None,
        trace_dir: Union[None, str, "os.PathLike[str]"] = None,
        trace_max_bytes: int = 64 * 1024 * 1024,
        trace_sample: float = 0.05,
        collector=None,
        workers: int = 8,
        snapshot_reads: bool = True,
    ) -> None:
        self.socket_path = str(socket_path)
        self.cache = cache
        #: Cache-fabric object store co-hosted with this daemon
        #: (``serve --cache-listen``); started/stopped with the daemon.
        self.cache_server = cache_server
        #: Tail-sampled on-disk trace ring (``serve --trace-dir``);
        #: every request mints a trace id, the sampler keeps errored,
        #: p95-slow and a deterministic fraction of the rest, and the
        #: kept ids surface as exemplars on the ``/metrics`` latency
        #: histogram (see docs/observability.md, "Fleet observability").
        self.trace_store: Optional[TraceStore] = (
            TraceStore(
                trace_dir,
                max_bytes=trace_max_bytes,
                sampler=TailSampler(sample_rate=trace_sample),
            )
            if trace_dir is not None
            else None
        )
        #: Embedded fleet collector (``serve --collect``): its
        #: ``/fleetz``-family routes merge into this daemon's sidecar
        #: and its scrape loop starts/stops with the daemon.
        self.collector = collector
        #: Fabric client when ``cache`` is a
        #: :class:`repro.service.fabric.TieredCache` -- probed on the
        #: history cadence so the ``service.fabric.degraded`` gauge
        #: (and the ``fabric.peer_down`` alert) track peer health even
        #: while no cache traffic flows.
        self._fabric = getattr(cache, "remote", None)
        self._fabric_probe_at = 0.0
        #: Seconds between active peer health probes (and the probe's
        #: per-peer timeout is capped well under the history interval).
        self.fabric_probe_interval_s = max(
            5.0, float(history_interval_s)
        )
        if cluster_cache is None or isinstance(
            cluster_cache, ClusterCache
        ):
            self.cluster_cache: Optional[ClusterCache] = cluster_cache
        else:
            self.cluster_cache = ClusterCache(cluster_cache)
        self.slow_path_limit = slow_path_limit
        self.started_at = time.time()
        self.requests = 0
        self.errors = 0
        self.in_flight = 0
        self.last_error: Optional[Dict[str, object]] = None
        #: Always-on service recorder (``None`` with telemetry off).
        self.recorder: Optional[obs.Recorder] = (
            obs.Recorder(max_spans=10_000, max_events=2_000)
            if telemetry
            else None
        )
        #: Always-on metrics ring buffer (requires the service recorder).
        self.history: Optional[MetricsHistory] = (
            MetricsHistory(
                capacity=history_capacity, interval_s=history_interval_s
            )
            if telemetry
            else None
        )
        #: Always-on flight ring of recent requests/spans/errors
        #: (``None`` with telemetry off or ``flight_capacity=0``).
        self.flight: Optional[FlightRecorder] = (
            FlightRecorder(capacity=flight_capacity)
            if telemetry and flight_capacity > 0
            else None
        )
        if self.flight is not None and self.recorder is not None:
            self.flight.subscribe_spans(self.recorder)
        #: Declarative alerting over the metrics history (``None`` with
        #: telemetry off).
        if telemetry:
            if alert_rules is None:
                rules: Optional[Iterable[AlertRule]] = None
            elif isinstance(alert_rules, (str, os.PathLike)):
                rules = load_rules(alert_rules)
            else:
                rules = tuple(alert_rules)
            self.alerts: Optional[AlertEngine] = AlertEngine(
                rules, on_transition=self._on_alert_transition
            )
        else:
            self.alerts = None
        #: Crash forensics: builds/persists ``repro.crash/1`` reports.
        #: Always constructed -- a stripped-down daemon still deserves a
        #: postmortem (the report simply embeds no flight ring/alerts).
        self.crash = CrashHandler(
            crash_dir=crash_dir,
            flight=self.flight,
            alerts=(
                (lambda: self.alerts.active())
                if self.alerts is not None
                else None
            ),
            buildinfo=self._buildinfo,
        )
        self._install_crash_hooks = bool(install_crash_hooks)
        #: Stall watchdog (``None`` with telemetry off or no deadline).
        self.watchdog: Optional[StallWatchdog] = (
            StallWatchdog(
                deadline_s=stall_timeout_s,
                on_stall=self._on_stall,
                on_clear=self._on_stall_clear,
                on_all_clear=self._on_all_stalls_clear,
            )
            if telemetry and stall_timeout_s is not None
            else None
        )
        self.debug_ops = bool(debug_ops) or (
            os.environ.get("REPRO_DEBUG_OPS") == "1"
        )
        #: In-daemon sampling profiler; started/stopped by the
        #: ``profile`` op (one at a time -- it samples every thread).
        self._profiler: Optional[SamplingProfiler] = None
        self._last_profile: Optional[Dict[str, object]] = None
        self._profiler_lock = threading.Lock()
        self.http_port = http_port
        self._sidecar = None
        if isinstance(access_log, AccessLog):
            # Adopt the caller's threshold -- it owns the log.
            self.access_log: Optional[AccessLog] = access_log
            self.slow_threshold_s = access_log.slow_threshold_s
        elif access_log is not None:
            self.access_log = AccessLog(
                access_log, slow_threshold_s=slow_threshold_s
            )
            self.slow_threshold_s = float(slow_threshold_s)
        else:
            self.access_log = None
            self.slow_threshold_s = float(slow_threshold_s)
        self._designs: Dict[Tuple[str, str], _DesignState] = {}
        self._designs_lock = threading.Lock()
        self._state_lock = threading.Lock()  # requests/errors/in_flight
        self._local = threading.local()
        #: Request-dispatch pool size (``0`` dispatches inline on the
        #: connection thread, PR-3 style).  Connections pipeline: the
        #: reader submits every parsed line to the pool and a writer
        #: thread streams responses back in request order.
        self.workers = max(0, int(workers))
        #: Lock-free snapshot read path enabled?  ``False`` forces every
        #: analyze through the per-design lock (the locked baseline the
        #: ``snapshot_read_concurrency`` bench compares against).
        self.snapshot_reads = bool(snapshot_reads)
        self._pool = None
        self._server: Optional[socketserver.ThreadingUnixStreamServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # telemetry plumbing
    # ------------------------------------------------------------------
    def _counter(self, name: str, value: float = 1.0) -> None:
        """Count into the service recorder *and* any ambient recorder."""
        if self.recorder is not None:
            self.recorder.counter(name, value)
        obs.counter(name, value)

    def _gauge(self, name: str, value: float) -> None:
        if self.recorder is not None:
            self.recorder.gauge(name, value)
        obs.gauge(name, value)

    def _histogram(
        self,
        name: str,
        value: float,
        exemplar: Optional[Dict[str, object]] = None,
    ) -> None:
        if self.recorder is not None:
            self.recorder.histogram(
                name, value, LATENCY_BUCKETS, exemplar=exemplar
            )
        obs.histogram(name, value, LATENCY_BUCKETS, exemplar=exemplar)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _make_server(self) -> socketserver.ThreadingUnixStreamServer:
        if os.path.exists(self.socket_path):
            # A previous daemon may have crashed without unlinking.
            os.unlink(self.socket_path)
        daemon = self

        class Handler(socketserver.StreamRequestHandler):
            def _write(self, response: Dict[str, object]) -> bool:
                """One response line out; ``False`` ends the session."""
                self.wfile.write(
                    json.dumps(
                        response, sort_keys=True,
                        separators=(",", ":"),
                    ).encode("utf-8")
                    + b"\n"
                )
                self.wfile.flush()
                if response.get("__shutdown__"):
                    # Shut the server down from a helper thread so
                    # this handler can finish its response first.
                    threading.Thread(
                        target=daemon.stop, daemon=True
                    ).start()
                    return False
                return True

            def _handle_inline(self) -> None:  # workers=0: PR-3 loop
                while True:
                    line = self.rfile.readline()
                    if not line:
                        return
                    line = line.strip()
                    if not line:
                        continue
                    if not self._write(daemon.handle_line(line)):
                        return

            def handle(self) -> None:  # one connection, many requests
                pool = daemon._pool
                if pool is None:
                    self._handle_inline()
                    return
                # Pipelined dispatch: the connection thread reads and
                # submits, a writer thread streams completed responses
                # back in request order.  The bounded queue is the
                # back-pressure: a client blasting requests faster than
                # the pool drains them stalls in ``put``, not in RAM.
                import queue as queue_mod

                pending: "queue_mod.Queue" = queue_mod.Queue(
                    maxsize=max(2, daemon.workers * 2)
                )
                done = threading.Event()

                def write_loop() -> None:
                    while True:
                        future = pending.get()
                        if future is None:
                            return
                        if done.is_set():
                            continue  # drain without writing
                        try:
                            if not self._write(future.result()):
                                done.set()
                        except Exception:  # noqa: BLE001 -- peer gone
                            done.set()

                writer = threading.Thread(target=write_loop, daemon=True)
                writer.start()
                try:
                    while not done.is_set():
                        line = self.rfile.readline()
                        if not line:
                            break
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            pending.put(pool.submit(daemon.handle_line, line))
                        except RuntimeError:
                            # Pool shut down mid-session (daemon stop).
                            break
                finally:
                    pending.put(None)
                    writer.join()

        server = socketserver.ThreadingUnixStreamServer(
            self.socket_path, Handler
        )
        server.daemon_threads = True
        return server

    #: Declarative sidecar route table: path -> bound-method name.
    #: ``_start_sidecar`` builds the live dict from this, and the
    #: sidecar's JSON 404 lists exactly these paths -- adding a route is
    #: one line here, with no ``do_GET`` if/else chain to grow.
    HTTP_ROUTES: Tuple[Tuple[str, str], ...] = (
        ("/healthz", "_http_healthz"),
        ("/metrics", "_http_metrics"),
        ("/metrics/history", "_http_history"),
        ("/profile", "_http_profile"),
        ("/buildz", "_http_buildz"),
        ("/alertz", "_http_alertz"),
        ("/crashz", "_http_crashz"),
        ("/flightz", "_http_flightz"),
        ("/fabricz", "_http_fabricz"),
        ("/traces", "_http_traces"),
    )

    def _start_sidecar(self) -> None:
        if self.http_port is None or self._sidecar is not None:
            return
        from repro.service.httpmon import TelemetrySidecar

        routes = {
            path: getattr(self, attr) for path, attr in self.HTTP_ROUTES
        }
        if self.collector is not None:
            # ``serve --collect``: the fleet routes ride the daemon's
            # own sidecar instead of a separate collector port.
            routes.update(self.collector.embedded_routes())
        self._sidecar = TelemetrySidecar(
            routes=routes,
            port=self.http_port,
            on_request=lambda path: self._counter(
                "service.daemon.http_requests"
            ),
            handlers={"/traces/<id>": self._http_trace_show},
        )
        self._sidecar.start()

    def _start_history(self) -> None:
        if self.history is not None and self.recorder is not None:
            if not self.history.running:
                # Gauges sync just before each snapshot (so every point
                # carries them) and the alert engine evaluates just
                # after (so alerting shares the history cadence).
                self.history.start(
                    self.recorder,
                    before_point=self._history_tick,
                    on_point=self._evaluate_alerts,
                )

    def _history_tick(self) -> None:
        """Per-snapshot work: probe the fabric, then refresh gauges.

        Runs on the history thread just before each metrics point, so
        the ``service.fabric.degraded`` value the alert engine sees was
        measured in the same tick it evaluates.
        """
        self._probe_fabric()
        self._sync_gauges()

    def _probe_fabric(self) -> None:
        if self._fabric is None:
            return
        try:
            # Dynamic membership: pick up peers-file edits on the same
            # cadence as the health probes (cheap mtime check).
            self._fabric.maybe_reload_peers()
        except Exception:  # noqa: BLE001 -- telemetry must not die
            pass
        now = time.monotonic()
        if now - self._fabric_probe_at < self.fabric_probe_interval_s:
            return
        self._fabric_probe_at = now
        try:
            # Short per-peer timeout: N dead peers must not eat the
            # history interval.
            self._fabric.probe_peers(timeout_s=0.5)
        except Exception:  # noqa: BLE001 -- telemetry must not die
            pass

    def _start_self_diagnosis(self) -> None:
        if self.watchdog is not None and not self.watchdog.running:
            self.watchdog.start()
        if self._install_crash_hooks:
            self.crash.install()
        if self.flight is not None:
            self.flight.record_log(
                "daemon started",
                pid=os.getpid(),
                socket=self.socket_path,
            )

    def _evaluate_alerts(self, point: Dict[str, object]) -> None:
        if self.alerts is not None and self.history is not None:
            self.alerts.evaluate(self.history)

    # ------------------------------------------------------------------
    # self-diagnosis hooks (alert transitions, stalls)
    # ------------------------------------------------------------------
    def _on_alert_transition(
        self, rule, old: str, new: str, row: Dict[str, object]
    ) -> None:
        self._counter("service.alerts.transitions")
        if new == "firing":
            self._counter("service.alerts.fired")
        if self.flight is not None:
            self.flight.record(
                "log",
                message=f"alert {rule.name}: {old} -> {new}",
                alert=rule.name,
                state=new,
                severity=rule.severity,
            )

    def _on_stall(self, info: Dict[str, object]) -> None:
        waited = float(info.get("waited_s") or 0.0)
        self._counter("service.daemon.stalls")
        if self.flight is not None:
            self.flight.record(
                "stall",
                op=info.get("op"),
                design=info.get("design"),
                status="stalled",
                waited_s=round(waited, 3),
                thread_id=info.get("thread_id"),
                stack=info.get("stack"),
            )
        if self.alerts is not None:
            self.alerts.fire(
                "daemon.stalled",
                message=(
                    f"op {info.get('op') or '?'} in flight "
                    f"{waited:.1f}s (deadline "
                    f"{self.watchdog.deadline_s:g}s)"
                    if self.watchdog is not None
                    else f"op {info.get('op') or '?'} stalled"
                ),
                value=round(waited, 3),
            )

    def _on_stall_clear(self, info: Dict[str, object]) -> None:
        if self.flight is not None:
            self.flight.record(
                "stall",
                op=info.get("op"),
                design=info.get("design"),
                status="resolved",
                waited_s=round(float(info.get("waited_s") or 0.0), 3),
            )

    def _on_all_stalls_clear(self) -> None:
        if self.alerts is not None:
            self.alerts.clear("daemon.stalled")

    @property
    def http_address(self) -> Optional[Tuple[str, int]]:
        """``(host, port)`` of the live HTTP sidecar, or ``None``."""
        return self._sidecar.address if self._sidecar else None

    def _http_healthz(self, params: Dict[str, str]) -> Tuple[str, str]:
        body = json.dumps(
            {"ok": True, "status": "ok", **self._snapshot()},
            sort_keys=True,
        )
        return "application/json", body + "\n"

    def _http_metrics(self, params: Dict[str, str]) -> Tuple[str, str]:
        from repro.obs.metrics import render_prometheus

        if self.recorder is None:
            raise RuntimeError("telemetry disabled (no service recorder)")
        self._sync_gauges()
        return (
            "text/plain; version=0.0.4",
            render_prometheus(self.recorder),
        )

    def _http_history(self, params: Dict[str, str]) -> Tuple[str, str]:
        if self.history is None:
            raise RuntimeError("telemetry disabled (no metrics history)")
        last = None
        if "last" in params:
            try:
                last = int(params["last"])
            except ValueError:
                raise ValueError(
                    f"?last must be an integer, got {params['last']!r}"
                ) from None
        body = json.dumps({"ok": True, **self.history.to_dict(last=last)})
        return "application/json", body + "\n"

    def _http_profile(self, params: Dict[str, str]) -> Tuple[str, str]:
        doc = self._profile_document()
        if doc is None:
            raise RuntimeError(
                "profiler has not run (start it with the 'profile' op "
                "or repro-sta serve --profile)"
            )
        body = json.dumps({"ok": True, "profile": doc})
        return "application/json", body + "\n"

    def _http_buildz(self, params: Dict[str, str]) -> Tuple[str, str]:
        body = json.dumps(
            {"ok": True, **self._buildinfo()}, sort_keys=True
        )
        return "application/json", body + "\n"

    def _http_alertz(self, params: Dict[str, str]) -> Tuple[str, str]:
        if self.alerts is None:
            raise RuntimeError("telemetry disabled (no alert engine)")
        body = json.dumps(
            {"ok": True, **self.alerts.to_dict()}, sort_keys=True
        )
        return "application/json", body + "\n"

    def _http_crashz(self, params: Dict[str, str]) -> Tuple[str, str]:
        latest = self.crash.latest()
        path = self.crash.latest_path()
        body = json.dumps(
            {
                "ok": True,
                "crash": latest,
                "path": str(path) if path is not None else None,
                "reports_written": self.crash.reports_written,
            },
            sort_keys=True,
            default=str,
        )
        return "application/json", body + "\n"

    def _http_flightz(self, params: Dict[str, str]) -> Tuple[str, str]:
        if self.flight is None:
            raise RuntimeError("flight recorder disabled on this daemon")
        last = None
        if "last" in params:
            try:
                last = int(params["last"])
            except ValueError:
                raise ValueError(
                    f"?last must be an integer, got {params['last']!r}"
                ) from None
        body = json.dumps(
            {"ok": True, **self.flight.to_dict(last=last)},
            sort_keys=True,
            default=str,
        )
        return "application/json", body + "\n"

    def _http_fabricz(self, params: Dict[str, str]) -> Tuple[str, str]:
        """Fabric client view from the daemon's sidecar (the cache
        server's own ``/fabricz`` shows the server side)."""
        if self._fabric is None:
            raise RuntimeError("no cache fabric on this daemon")
        doc: Dict[str, object] = {
            "ok": True,
            "peers": list(self._fabric.peers),
            "down": self._fabric.down_peers(),
            "degraded": self._fabric.degraded,
            "stats": self._fabric.stats.to_dict(),
            "hit_rate": self._fabric.stats.hit_rate,
            "peers_file": (
                str(self._fabric.peers_file)
                if getattr(self._fabric, "peers_file", None) is not None
                else None
            ),
        }
        if self.cache_server is not None:
            doc["cache_server"] = (
                list(self.cache_server.address)
                if self.cache_server.address is not None
                else None
            )
        return "application/json", json.dumps(doc, sort_keys=True) + "\n"

    def _http_traces(self, params: Dict[str, str]) -> Tuple[str, str]:
        if self.trace_store is None:
            raise RuntimeError(
                "trace store disabled (start with --trace-dir)"
            )
        last = 50
        if "last" in params:
            try:
                last = int(params["last"])
            except ValueError:
                raise ValueError(
                    f"?last must be an integer, got {params['last']!r}"
                ) from None
        body = json.dumps(
            {
                "ok": True,
                "traces": self.trace_store.list(last=last),
                "stats": self.trace_store.stats(),
            }
        )
        return "application/json", body + "\n"

    def _http_trace_show(self, request) -> Tuple[int, str, str]:
        """``GET /traces/<id>`` -- full ``Handler`` signature so the
        trace id arrives as the route operand."""
        if self.trace_store is None:
            return (
                500,
                "application/json",
                json.dumps(
                    {
                        "ok": False,
                        "error": (
                            "trace store disabled (start with --trace-dir)"
                        ),
                    }
                )
                + "\n",
            )
        trace_id = str(request.operand or "").strip()
        document = self.trace_store.get(trace_id)
        if document is None:
            return (
                404,
                "application/json",
                json.dumps(
                    {
                        "ok": False,
                        "error": f"no stored trace {trace_id!r}",
                    }
                )
                + "\n",
            )
        body = json.dumps({"ok": True, "trace": document})
        return 200, "application/json", body + "\n"

    def _buildinfo(self) -> Dict[str, object]:
        """Build/runtime identity served by ``GET /buildz``."""
        import sys

        from repro import __version__

        return {
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "python": sys.version.split()[0],
            "uptime_s": round(time.time() - self.started_at, 3),
            "config": {
                "socket": self.socket_path,
                "telemetry": self.recorder is not None,
                "result_cache": self.cache is not None,
                "cluster_cache": self.cluster_cache is not None,
                "access_log": self.access_log is not None,
                "slow_path_limit": self.slow_path_limit,
                "slow_threshold_s": self.slow_threshold_s,
                "history_interval_s": (
                    self.history.interval_s if self.history else None
                ),
                "history_capacity": (
                    self.history.capacity if self.history else None
                ),
                "alert_rules": (
                    len(self.alerts.rules) if self.alerts else 0
                ),
                "flight_capacity": (
                    self.flight.capacity if self.flight else 0
                ),
                "crash_dir": (
                    str(self.crash.crash_dir)
                    if self.crash.crash_dir is not None
                    else None
                ),
                "stall_timeout_s": (
                    self.watchdog.deadline_s if self.watchdog else None
                ),
                "debug_ops": self.debug_ops,
                "workers": self.workers,
                "snapshot_reads": self.snapshot_reads,
                "cache_peers": (
                    list(self._fabric.peers)
                    if self._fabric is not None
                    else []
                ),
                "cache_server": (
                    list(self.cache_server.address)
                    if self.cache_server is not None
                    and self.cache_server.address is not None
                    else None
                ),
                "trace_dir": (
                    str(self.trace_store.root)
                    if self.trace_store is not None
                    else None
                ),
                "trace_max_bytes": (
                    self.trace_store.max_bytes
                    if self.trace_store is not None
                    else None
                ),
                "trace_sample": (
                    self.trace_store.sampler.sample_rate
                    if self.trace_store is not None
                    else None
                ),
                "collector": self.collector is not None,
            },
        }

    def _profile_document(self) -> Optional[Dict[str, object]]:
        """The live profiler's snapshot, else the last stopped profile."""
        with self._profiler_lock:
            if self._profiler is not None:
                return self._profiler.result()
            return self._last_profile

    def _sync_gauges(self) -> None:
        """Refresh point-in-time gauges before a metrics export."""
        if self.recorder is None:
            return
        with self._designs_lock:
            designs_loaded = len(self._designs)
            epoch_sum = sum(s.epoch for s in self._designs.values())
        self.recorder.gauge("service.daemon.in_flight", self.in_flight)
        self.recorder.gauge("service.daemon.designs", designs_loaded)
        self.recorder.gauge("service.daemon.epoch", epoch_sum)
        self.recorder.gauge("service.daemon.workers", self.workers)
        self.recorder.gauge(
            "service.daemon.uptime_seconds",
            time.time() - self.started_at,
        )
        if self.history is not None:
            self.recorder.gauge(
                "service.tsdb.points", len(self.history)
            )
            self.recorder.gauge(
                "service.tsdb.snapshots", self.history.snapshots
            )
        if self.watchdog is not None:
            self.recorder.gauge(
                "service.daemon.stalled", self.watchdog.stalled_count()
            )
        if self.flight is not None:
            self.recorder.gauge(
                "service.flight.events", len(self.flight)
            )
            self.recorder.gauge(
                "service.flight.dropped", self.flight.dropped
            )
        if self.alerts is not None:
            self.recorder.gauge(
                "service.alerts.firing", self.alerts.firing_count()
            )
        if self.trace_store is not None:
            store_stats = self.trace_store.stats()
            self.recorder.gauge(
                "service.tracestore.traces",
                float(store_stats["traces"]),
            )
            self.recorder.gauge(
                "service.tracestore.bytes",
                float(store_stats["bytes"]),
            )
        if self._fabric is not None:
            self.recorder.gauge(
                "service.fabric.degraded",
                float(len(self._fabric.down_peers())),
            )
            self.recorder.gauge(
                "service.fabric.peers", float(len(self._fabric.peers))
            )
            self.recorder.gauge(
                "service.fabric.remote_hit_rate",
                self._fabric.stats.hit_rate,
            )
        with self._profiler_lock:
            profiler = self._profiler
        if profiler is not None:
            # Cumulative, so the profiler.dropped_ticks burn-rate rule
            # can take window deltas like any counter.
            self.recorder.gauge(
                "service.daemon.profiler_samples", profiler.samples
            )
            self.recorder.gauge(
                "service.daemon.profiler_dropped_ticks",
                profiler.dropped_ticks,
            )

    def _start_pool(self) -> None:
        if self.workers > 0 and self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-daemon",
            )

    def start(self) -> None:
        """Serve in a background thread (returns once listening)."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        self._server = self._make_server()
        self._start_pool()
        self._start_cache_server()
        self._start_sidecar()
        self._start_collector()
        self._start_history()
        self._start_self_diagnosis()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop`/shutdown op."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        self._server = self._make_server()
        self._start_pool()
        self._start_cache_server()
        self._start_sidecar()
        self._start_collector()
        self._start_history()
        self._start_self_diagnosis()
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._cleanup()

    def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._cleanup()

    def _start_cache_server(self) -> None:
        if self.cache_server is not None and (
            self.cache_server.address is None
        ):
            self.cache_server.start()

    def _start_collector(self) -> None:
        if self.collector is not None and (
            getattr(self.collector, "_thread", None) is None
        ):
            self.collector.start()

    def _cleanup(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            # In-flight requests finish and their writer threads flush;
            # new submissions fail fast with RuntimeError.
            pool.shutdown(wait=True)
        sidecar, self._sidecar = self._sidecar, None
        if sidecar is not None:
            sidecar.stop()
        collector, self.collector = self.collector, None
        if collector is not None:
            collector.stop()
        server, self.cache_server = self.cache_server, None
        if server is not None:
            server.stop()
        if self.history is not None:
            self.history.stop()
        if self.watchdog is not None:
            self.watchdog.stop()
        self.crash.uninstall()
        with self._profiler_lock:
            profiler, self._profiler = self._profiler, None
        if profiler is not None:
            self._last_profile = profiler.stop()
        if self.access_log is not None:
            self.access_log.close()
        # Persist write-behind LRU recency (advisory -- safe to lose).
        if self.cache is not None:
            self.cache.flush()
        if self.cluster_cache is not None:
            self.cluster_cache.flush()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    def __enter__(self) -> "TimingDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle_line(self, line: bytes) -> Dict[str, object]:
        """Parse one request line and answer it (never raises).

        Requests are timestamped **on arrival**; handlers that queue on
        a per-design lock report arrival -> lock-acquired as
        ``service.daemon.queue_wait_seconds`` and the remainder as
        ``service.daemon.handle_seconds`` -- the split the ROADMAP's
        daemon-concurrency work needs.  A request carrying a
        ``repro.trace/1`` context runs under a per-request recorder
        bound to this thread only (:func:`repro.obs.bound`), so traced
        requests run fully concurrently, and ships the recorder
        snapshot back under ``"trace"``.
        """
        arrival = time.perf_counter()
        local = self._local
        local.queue_wait = None
        local.design = None
        local.engine = None
        with self._state_lock:
            self.requests += 1
            self.in_flight += 1
        self._counter("service.daemon.requests")
        request: Dict[str, object] = {}
        op = ""
        status = "ok"
        error: Optional[str] = None
        error_type: Optional[str] = None
        req_rec: Optional[obs.Recorder] = None
        snapshot_doc: Optional[Dict[str, object]] = None
        local.wd_token = None
        try:
            parsed = json.loads(line.decode("utf-8"))
            if not isinstance(parsed, dict):
                raise ValueError("request must be a JSON object")
            request = parsed
            op = str(request.get("op", ""))
            # ``crash-report`` and friends spell ops with hyphens on the
            # wire; handler names cannot.
            handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
            if handler is None or op.startswith("_"):
                raise ValueError(f"unknown op {op!r}")
            if self.watchdog is not None:
                local.wd_token = self.watchdog.track(op=op)
            ctx = request.get("trace")
            if isinstance(ctx, dict) and ctx.get("trace_id"):
                req_rec = live.child_recorder(ctx)
                # Thread-local binding: concurrent traced requests each
                # see only their own recorder -- no daemon-wide lock.
                with obs.bound(req_rec):
                    with req_rec.span(
                        "service.daemon.request",
                        category="service",
                        op=op,
                    ):
                        response = handler(request)
                snapshot_doc = live.snapshot(req_rec)
                response["trace"] = snapshot_doc
            else:
                response = handler(request)
        except Exception as exc:  # noqa: BLE001 -- protocol boundary
            status = "error"
            error_doc = error_document(exc)
            error = str(exc)
            error_type = type(exc).__name__
            self._counter("service.daemon.errors")
            with self._state_lock:
                self.errors += 1
                self.last_error = {
                    "error": error,
                    "error_type": error_type,
                    "op": op or None,
                    "ts": round(time.time(), 3),
                    "frames": error_doc["frames"],
                }
            if self.flight is not None:
                self.flight.record(
                    "error",
                    op=op or None,
                    design=getattr(local, "design", None),
                    error=error_doc,
                )
            if not isinstance(exc, _EXPECTED_ERRORS):
                # A bad request (unknown op, missing file, wrong type)
                # is business as usual; anything else is a bug worth a
                # full postmortem.
                try:
                    self.crash.report(
                        exc, kind="handler_exception", op=op or None
                    )
                    self._counter("service.daemon.crash_reports")
                except Exception:  # noqa: BLE001 -- never mask response
                    pass
            response = {
                "ok": False,
                "error": error,
                "error_type": error_type,
                "error_doc": error_doc,
            }
        finally:
            with self._state_lock:
                self.in_flight -= 1
            token = getattr(local, "wd_token", None)
            if token is not None and self.watchdog is not None:
                self.watchdog.untrack(token)
        if "id" in request:
            response.setdefault("id", request["id"])
        duration = time.perf_counter() - arrival
        queue_wait = getattr(local, "queue_wait", None)
        handle_s = (
            duration - queue_wait if queue_wait is not None else duration
        )
        if snapshot_doc is None and req_rec is not None:
            # A traced request that raised never reached the success
            # path's snapshot; take it now so the failed access-log
            # line still carries the spans leading up to the error.
            try:
                snapshot_doc = live.snapshot(req_rec)
            except Exception:  # noqa: BLE001 -- forensics only
                snapshot_doc = None
        # Tail sampling: every request gets a trace id (the client's
        # when traced, freshly minted otherwise); the store keeps the
        # errored/slow/sampled ones, and only *kept* ids become
        # exemplars on the latency histogram -- an exemplar in
        # ``/metrics`` is always retrievable via ``traces show``.
        exemplar: Optional[Dict[str, object]] = None
        if self.trace_store is not None:
            trace_id = (
                req_rec.trace_id if req_rec is not None
                else live.new_trace_id()
            )
            kept = self.trace_store.offer(
                trace_id,
                status=status,
                duration_s=duration,
                op=op or None,
                design=getattr(local, "design", None),
                error=(
                    {"error": error, "error_type": error_type}
                    if error is not None
                    else None
                ),
                snapshot=snapshot_doc,
            )
            if kept is not None:
                exemplar = {"trace_id": trace_id, "ts": time.time()}
        self._histogram(
            "service.daemon.request_seconds", duration, exemplar=exemplar
        )
        self._histogram("service.daemon.handle_seconds", handle_s)
        if duration >= self.slow_threshold_s:
            self._counter("service.daemon.slow_requests")
        if self.flight is not None:
            self.flight.record_request(
                op or "?",
                getattr(local, "design", None),
                status,
                duration,
                engine=getattr(local, "engine", None),
                error_type=error_type,
            )
        if self.access_log is not None:
            self.access_log.record(
                "daemon",
                op or "?",
                getattr(local, "design", None),
                status,
                duration,
                snapshot=snapshot_doc,
                # Failed requests always log their span tree -- their
                # forensic value does not depend on being slow.
                force_spans=status == "error",
                engine=getattr(local, "engine", None),
                queue_wait_s=(
                    round(queue_wait, 6) if queue_wait is not None else None
                ),
                handle_s=round(handle_s, 6),
                error=error,
                pid=os.getpid(),
                trace_id=req_rec.trace_id if req_rec else None,
            )
        return response

    @contextmanager
    def _locked_design(self, state: _DesignState):
        """Hold the per-design lock, recording the queue wait.

        The wait from the request's arrival at the lock to acquiring it
        *is* the per-design-lock contention -- the number the ROADMAP
        "daemon concurrency" item needs data for.  It lands in both
        ``service.daemon.queue_wait_seconds`` (all analyze-path waits,
        including the near-zero snapshot hits) and
        ``service.daemon.lock_wait_seconds`` (locked path only), so the
        two histograms split lock-free from locked traffic.

        A context manager rather than an acquire/release pair: a
        handler exception between the two can never leak
        ``state.in_flight`` or keep the design locked forever.
        """
        waited_from = time.perf_counter()
        with self._state_lock:
            state.in_flight += 1
        try:
            state.lock.acquire()
        except BaseException:
            with self._state_lock:
                state.in_flight -= 1
            raise
        try:
            queue_wait = time.perf_counter() - waited_from
            self._local.queue_wait = queue_wait
            self._histogram(
                "service.daemon.queue_wait_seconds", queue_wait
            )
            self._histogram(
                "service.daemon.lock_wait_seconds", queue_wait
            )
            yield state
        finally:
            state.lock.release()
            with self._state_lock:
                state.in_flight -= 1

    # ------------------------------------------------------------------
    # state helpers
    # ------------------------------------------------------------------
    def _design(self, request: Dict[str, object]) -> _DesignState:
        netlist = request.get("netlist")
        clocks = request.get("clocks")
        if not netlist or not clocks:
            raise ValueError("request needs 'netlist' and 'clocks' paths")
        key = (str(netlist), str(clocks))
        with self._designs_lock:
            state = self._designs.get(key)
            if state is None:
                with obs.span("service.daemon.load", category="service"):
                    state = _DesignState(
                        key[0], key[1], request.get("default_clock")
                    )
                self._designs[key] = state
                self._counter("service.daemon.designs_loaded")
        self._local.design = state.network.name
        token = getattr(self._local, "wd_token", None)
        if token is not None and self.watchdog is not None:
            self.watchdog.annotate(token, design=state.network.name)
        return state

    def _analyze_state(
        self, state: _DesignState, request: Dict[str, object]
    ) -> Dict[str, object]:
        from repro.report.manifest import manifest_digest, timing_digest

        limit = request.get("slow_path_limit", self.slow_path_limit)
        tolerance = float(request.get("tolerance", 0.0) or 0.0)
        engine = "incremental-warm" if state.warm else "cold"
        self._local.engine = engine
        if engine == "incremental-warm":
            self._counter("service.daemon.incremental_hits")
        result = state.analyzer.timing_result(
            warm=True, slow_path_limit=limit, tolerance=tolerance
        )
        with self._state_lock:
            state.analyses += 1
        state.served = True
        manifest = result.manifest(
            netlist_path=state.netlist,
            clocks_path=state.clocks,
            label=request.get("label"),
        )
        if self.cache is not None:
            key = state.content_key(limit, tolerance)
            if state.mutations == 0 and key not in self.cache:
                self.cache.put(key, result.payload(), manifest)
        cluster_info = None
        if self.cluster_cache is not None:
            # Refresh the per-cluster artifacts at the *live* delay
            # state (mutations give clusters new, correct sub-keys --
            # content addressing cannot be poisoned by history) and
            # remember the map so the next mutation can invalidate a
            # single sub-entry.  Reuses the analyzer's own partition.
            config_sha = config_digest(
                analysis_config(
                    slow_path_limit=limit, tolerance=tolerance
                )
            )
            warmup = self.cluster_cache.warm(
                state.network,
                state.schedule,
                state.analyzer.delays,
                config_sha,
                clusters=state.analyzer.model.clusters,
            )
            state.cluster_map = warmup.map
            cluster_info = warmup.to_dict()
        response = {
            "ok": True,
            "engine": engine,
            "design": state.network.name,
            "intended": result.intended,
            "worst_slack": _json_num(result.worst_slack),
            "slow_paths": len(result.slow_paths),
            "iterations": result.algorithm1.iterations.total,
            "summary": result.summary(),
            "payload": result.payload(),
            "manifest": manifest,
            "manifest_digest": manifest_digest(manifest),
            "timing_digest": timing_digest(manifest),
        }
        if cluster_info is not None:
            response["cluster_cache"] = cluster_info
        self._publish_snapshot(
            state, (limit, tolerance, request.get("label")), response
        )
        return response

    def _publish_snapshot(
        self,
        state: _DesignState,
        key: tuple,
        response: Dict[str, object],
    ) -> None:
        """Publish ``response`` for lock-free repeat reads.

        The caller holds the design lock.  Copy-on-write: carry over
        the current epoch's other parameter variants, add this one, and
        install a brand-new :class:`AnalysisSnapshot` with a single
        reference assignment.  The stored dict is a pristine shallow
        copy -- :meth:`handle_line` decorates the *returned* response
        with ``"trace"``/``"id"`` and must never bleed into the cache.
        """
        if not self.snapshot_reads:
            return
        old = state.snapshot
        responses = (
            dict(old.responses)
            if old is not None and old.epoch == state.epoch
            else {}
        )
        responses[key] = dict(response)
        state.snapshot = AnalysisSnapshot(state.epoch, responses)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _snapshot(self) -> Dict[str, object]:
        """The shared liveness facts behind ping, stats and health.

        One source of truth -- ``uptime_s`` and friends cannot drift
        between the three ops (they used to be hand-rolled per op).
        """
        with self._designs_lock:
            designs_loaded = len(self._designs)
        with self._state_lock:
            return {
                "protocol": PROTOCOL_VERSION,
                "pid": os.getpid(),
                "uptime_s": round(time.time() - self.started_at, 3),
                "requests": self.requests,
                "errors": self.errors,
                "in_flight": self.in_flight,
                "designs_loaded": designs_loaded,
                "last_error": self.last_error,
            }

    def _op_ping(self, request: Dict[str, object]) -> Dict[str, object]:
        snapshot = self._snapshot()
        return {
            "ok": True,
            "pong": True,
            "protocol": snapshot["protocol"],
            "pid": snapshot["pid"],
            "uptime_s": snapshot["uptime_s"],
        }

    def _op_health(self, request: Dict[str, object]) -> Dict[str, object]:
        """Liveness probe: the same JSON ``GET /healthz`` serves."""
        return {
            "ok": True,
            "status": "ok",
            "telemetry": self.recorder is not None,
            "http": list(self.http_address) if self.http_address else None,
            **self._snapshot(),
        }

    def _op_metrics(self, request: Dict[str, object]) -> Dict[str, object]:
        """The service recorder's contents: Prometheus text + JSON."""
        from repro.obs.metrics import metrics_dict, render_prometheus

        if self.recorder is None:
            raise ValueError(
                "telemetry is disabled on this daemon (no service "
                "recorder); restart without telemetry=False"
            )
        self._sync_gauges()
        return {
            "ok": True,
            "text": render_prometheus(self.recorder),
            "metrics": metrics_dict(self.recorder),
        }

    def start_profiler(self, hz: float = 100.0) -> bool:
        """Start the in-daemon sampler (no-op if already running)."""
        with self._profiler_lock:
            if self._profiler is not None:
                return False
            profiler = SamplingProfiler(hz=hz, recorder=self.recorder)
            profiler.start()
            self._profiler = profiler
        self._counter("service.profile.starts")
        return True

    def stop_profiler(self) -> Optional[Dict[str, object]]:
        """Stop the sampler; returns (and remembers) its profile."""
        with self._profiler_lock:
            profiler, self._profiler = self._profiler, None
            if profiler is None:
                return None
            doc = profiler.stop()
            self._last_profile = doc
        self._counter("service.profile.stops")
        self._counter("service.profile.samples", doc.get("samples", 0))
        return doc

    def _op_profile(self, request: Dict[str, object]) -> Dict[str, object]:
        """Sampling-profiler control: ``action`` start / stop / fetch.

        * ``start`` (optional ``hz``, default 100) begins sampling every
          daemon thread, attributing to the service recorder's spans;
          idempotent (``started: false`` when already running).
        * ``stop`` halts sampling and returns the ``repro.profile/1``
          document.
        * ``fetch`` returns the live snapshot without stopping (or the
          last stopped profile when idle).
        """
        action = str(request.get("action", "fetch"))
        if action == "start":
            hz = float(request.get("hz", 100.0) or 100.0)
            started = self.start_profiler(hz=hz)
            return {"ok": True, "action": action, "started": started}
        if action == "stop":
            doc = self.stop_profiler()
            if doc is None:
                raise ValueError("profiler is not running")
            return {"ok": True, "action": action, "profile": doc}
        if action == "fetch":
            self._counter("service.profile.fetches")
            doc = self._profile_document()
            if doc is None:
                raise ValueError(
                    "profiler has not run (send action='start' first)"
                )
            with self._profiler_lock:
                running = self._profiler is not None
            return {
                "ok": True,
                "action": action,
                "running": running,
                "profile": doc,
            }
        raise ValueError(
            f"unknown profile action {action!r} (use start, stop or fetch)"
        )

    def _op_history(self, request: Dict[str, object]) -> Dict[str, object]:
        """The metrics ring buffer (``last`` trims to the newest N)."""
        if self.history is None:
            raise ValueError(
                "telemetry is disabled on this daemon (no metrics history)"
            )
        last = request.get("last")
        last = int(last) if last is not None else None
        self._counter("service.tsdb.reads")
        return {"ok": True, **self.history.to_dict(last=last)}

    def _op_buildinfo(self, request: Dict[str, object]) -> Dict[str, object]:
        """The same identity document ``GET /buildz`` serves."""
        return {"ok": True, **self._buildinfo()}

    def _snapshot_answer(
        self,
        state: _DesignState,
        key: tuple,
        arrival: Optional[float] = None,
    ) -> Optional[Dict[str, object]]:
        """Serve ``key`` from the current snapshot, or ``None``.

        The snapshot reference and the epoch are each a single
        attribute read (atomic under the GIL), and a published
        snapshot's ``responses`` dict is never mutated in place, so
        this is safe both lock-free (``arrival`` given: the wait is
        recorded here) and under the design lock (``arrival`` is
        ``None``: :meth:`_locked_design` already recorded it).
        """
        snap = state.snapshot
        if snap is None or snap.epoch != state.epoch:
            return None
        cached = snap.responses.get(key)
        if cached is None:
            return None
        if arrival is not None:
            queue_wait = time.perf_counter() - arrival
            self._local.queue_wait = queue_wait
            self._histogram(
                "service.daemon.queue_wait_seconds", queue_wait
            )
        self._local.engine = "snapshot"
        self._counter("service.daemon.snapshot_hits")
        with self._state_lock:
            state.analyses += 1
            state.snapshot_hits += 1
        # Shallow copy: handle_line decorates the response in place;
        # the cached original must stay pristine.
        response = dict(cached)
        response["engine"] = "snapshot"
        return response

    def _op_analyze(self, request: Dict[str, object]) -> Dict[str, object]:
        state = self._design(request)
        key = None
        if self.snapshot_reads:
            arrival = time.perf_counter()
            limit = request.get("slow_path_limit", self.slow_path_limit)
            tolerance = float(request.get("tolerance", 0.0) or 0.0)
            key = (limit, tolerance, request.get("label"))
            # Lock-free read path.  The epoch is bumped under the
            # design lock *before* a mutation touches the engine, so a
            # reader racing a mutation either sees the bumped epoch
            # (miss -> queues on the lock) or linearises before the
            # mutation (the cached answer was the design's published
            # truth at read time).
            response = self._snapshot_answer(state, key, arrival)
            if response is not None:
                return response
            self._counter("service.daemon.snapshot_misses")
        with self._locked_design(state):
            if key is not None:
                # Double-checked read: a miss that queued behind a
                # mutation usually finds the mutation's inline analysis
                # already republished the snapshot by the time the lock
                # is acquired.  Serving that copy -- not re-analysing --
                # keeps every read byte-identical to the published
                # answer (a warm no-change re-analysis would converge
                # in fewer iterations and hash differently).
                response = self._snapshot_answer(state, key)
                if response is not None:
                    return response
            with obs.span("service.daemon.analyze", category="service"):
                return self._analyze_state(state, request)

    def _op_mutate(self, request: Dict[str, object]) -> Dict[str, object]:
        state = self._design(request)
        action = str(request.get("action", ""))
        with self._locked_design(state):
            # Invalidate lock-free readers *before* the engine is
            # touched: any analyze that read the old snapshot after
            # this bump fails the epoch check and queues on the lock.
            state.epoch += 1
            self._counter("service.daemon.epoch_bumps")
            # The map built at the last analyze addresses the
            # *pre-mutation* artifacts -- exactly the sub-entries that
            # are about to go stale.  Build it on demand if a mutation
            # arrives before any analyze.
            pre_map = None
            if self.cluster_cache is not None:
                pre_map = self._ensure_cluster_map(state, request)
            touched_cluster: Optional[str] = None
            dropped_sub_keys = 0
            with obs.span("service.daemon.mutate", category="service"):
                if action == "scale_cell":
                    cell = str(request.get("cell", ""))
                    factor = float(request["factor"])
                    state.analyzer.scale_cell(cell, factor)
                    touched_cluster = state.analyzer.last_touched_cluster
                    if self.cluster_cache is not None and pre_map is not None:
                        if touched_cluster is not None:
                            # Cluster-granular: drop one sub-entry, keep
                            # every clean cluster's artifact warm.
                            self.cluster_cache.invalidate(pre_map, cell)
                            dropped_sub_keys = 1
                        else:
                            # The cell is not combinational (e.g. a
                            # synchroniser): its SyncTiming sits on the
                            # boundary of every adjacent cluster, so be
                            # conservative and drop the whole map.
                            dropped_sub_keys = (
                                self.cluster_cache.invalidate_all(pre_map)
                            )
                elif action == "scale_clocks":
                    factor = request["factor"]
                    state.schedule = state.schedule.scaled(factor)
                    self._rebuild(state)
                    if self.cluster_cache is not None and pre_map is not None:
                        # Every cluster's boundary waveforms changed.
                        dropped_sub_keys = (
                            self.cluster_cache.invalidate_all(pre_map)
                        )
                elif action == "set_pulse_width":
                    state.schedule = state.schedule.with_pulse_width(
                        str(request["clock"]), request["width"]
                    )
                    self._rebuild(state)
                    if self.cluster_cache is not None and pre_map is not None:
                        dropped_sub_keys = (
                            self.cluster_cache.invalidate_all(pre_map)
                        )
                else:
                    raise ValueError(
                        f"unknown mutate action {action!r} (use "
                        "scale_cell, scale_clocks or set_pulse_width)"
                    )
            state.cluster_map = None  # stale: rebuilt at next analyze
            state.mutations += 1
            self._counter("service.daemon.mutations")
            response: Dict[str, object] = {
                "ok": True,
                "action": action,
                "mutations": state.mutations,
                "rebuilds": state.analyzer.rebuilds,
                "swaps": state.analyzer.swaps,
            }
            if self.cluster_cache is not None:
                response["touched_cluster"] = touched_cluster
                response["dropped_sub_keys"] = dropped_sub_keys
            if request.get("analyze", True):
                response["analysis"] = self._analyze_state(state, request)
            return response

    def _ensure_cluster_map(
        self, state: _DesignState, request: Dict[str, object]
    ) -> ClusterMap:
        """The design's invalidation map at the current delay state."""
        if state.cluster_map is None:
            from repro.service.cluster_cache import build_cluster_map

            limit = request.get("slow_path_limit", self.slow_path_limit)
            tolerance = float(request.get("tolerance", 0.0) or 0.0)
            config_sha = config_digest(
                analysis_config(
                    slow_path_limit=limit, tolerance=tolerance
                )
            )
            state.cluster_map = build_cluster_map(
                state.network,
                state.schedule,
                state.analyzer.delays,
                config_sha,
                clusters=state.analyzer.model.clusters,
            )
        return state.cluster_map

    def _rebuild(self, state: _DesignState) -> None:
        """Clock edits change the instance windows: rebuild the engine
        (delays are clock-independent and reused)."""
        from repro.core.incremental import IncrementalAnalyzer

        delays = state.analyzer.delays
        state.analyzer = IncrementalAnalyzer(
            state.network, state.schedule, delays=delays
        )
        state.served = False

    def _op_report(self, request: Dict[str, object]) -> Dict[str, object]:
        state = self._design(request)
        endpoint = request.get("endpoint")
        if not endpoint:
            raise ValueError("report needs an 'endpoint'")
        with self._locked_design(state):
            result = state.analyzer.timing_result(warm=True)
            forensics = result.path_forensics()
            explained = forensics.explain(str(endpoint))
            return {
                "ok": True,
                "endpoint": str(endpoint),
                "text": forensics.render_text(explained),
                "report": json.loads(forensics.to_json([explained])),
            }

    def _op_stats(self, request: Dict[str, object]) -> Dict[str, object]:
        with self._designs_lock:
            designs = {
                state.network.name: {
                    "netlist": state.netlist,
                    "clocks": state.clocks,
                    "warm": state.warm,
                    "analyses": state.analyses,
                    "mutations": state.mutations,
                    "rebuilds": state.analyzer.rebuilds,
                    "swaps": state.analyzer.swaps,
                    "in_flight": state.in_flight,
                    "epoch": state.epoch,
                    "snapshot_hits": state.snapshot_hits,
                    "snapshot_published": state.snapshot is not None,
                }
                for state in self._designs.values()
            }
        return {
            "ok": True,
            **self._snapshot(),
            "designs": designs,
            "cache": (
                self.cache.stats.to_dict()
                if self.cache is not None
                else None
            ),
            "cluster_cache": (
                self.cluster_cache.stats.to_dict()
                if self.cluster_cache is not None
                else None
            ),
        }

    def _op_evict(self, request: Dict[str, object]) -> Dict[str, object]:
        """Drop a warm design (and optionally its cache entries)."""
        netlist = str(request.get("netlist", ""))
        clocks = str(request.get("clocks", ""))
        with self._designs_lock:
            dropped = self._designs.pop((netlist, clocks), None)
        return {"ok": True, "dropped": dropped is not None}

    def _op_alerts(self, request: Dict[str, object]) -> Dict[str, object]:
        """Alert state: ``action`` list (default) or ack.

        * ``list`` returns the full ``repro.alerts/1`` document;
        * ``ack`` (with ``name``) acknowledges a firing alert so
          dashboards can demote its banner without resolving it.
        """
        if self.alerts is None:
            raise ValueError(
                "telemetry is disabled on this daemon (no alert engine)"
            )
        action = str(request.get("action", "list"))
        if action == "list":
            return {"ok": True, **self.alerts.to_dict()}
        if action == "ack":
            name = str(request.get("name", ""))
            if not name:
                raise ValueError("ack needs an alert 'name'")
            if not self.alerts.ack(name):
                raise ValueError(f"alert {name!r} is not firing")
            self._counter("service.alerts.acked")
            return {"ok": True, "action": action, "name": name, "acked": True}
        raise ValueError(
            f"unknown alerts action {action!r} (use list or ack)"
        )

    def _op_flight(self, request: Dict[str, object]) -> Dict[str, object]:
        """The flight ring (``last`` trims to the newest N events)."""
        if self.flight is None:
            raise ValueError(
                "flight recorder is disabled on this daemon"
            )
        last = request.get("last")
        last = int(last) if last is not None else None
        return {"ok": True, **self.flight.to_dict(last=last)}

    def _op_traces(self, request: Dict[str, object]) -> Dict[str, object]:
        """The tail-sampled trace store: ``action`` list (default),
        show (with ``trace_id``) or stats."""
        if self.trace_store is None:
            raise ValueError(
                "trace store is disabled on this daemon "
                "(start it with --trace-dir)"
            )
        action = str(request.get("action", "list"))
        if action == "list":
            last = int(request.get("last", 50) or 0)
            return {
                "ok": True,
                "traces": self.trace_store.list(last=last),
                "stats": self.trace_store.stats(),
            }
        if action == "show":
            trace_id = str(request.get("trace_id", ""))
            if not trace_id:
                raise ValueError("show needs a 'trace_id'")
            document = self.trace_store.get(trace_id)
            if document is None:
                raise ValueError(f"no stored trace {trace_id!r}")
            return {"ok": True, "trace": document}
        if action == "stats":
            return {"ok": True, "stats": self.trace_store.stats()}
        raise ValueError(
            f"unknown traces action {action!r} (use list, show or stats)"
        )

    def _op_crash_report(self, request: Dict[str, object]) -> Dict[str, object]:
        """The latest ``repro.crash/1`` report (``crash: null`` if none).

        Spelled ``crash-report`` on the wire; ``?`` never errors --
        "no crash" is a healthy answer, not a failure.
        """
        latest = self.crash.latest()
        path = self.crash.latest_path()
        return {
            "ok": True,
            "crash": latest,
            "path": str(path) if path is not None else None,
            "reports_written": self.crash.reports_written,
        }

    # -- fault injection (debug_ops only; CI's self-diagnosis smoke) ---
    def _require_debug_ops(self) -> None:
        if not self.debug_ops:
            raise ValueError(
                "debug ops are disabled on this daemon (start it with "
                "REPRO_DEBUG_OPS=1 or debug_ops=True)"
            )

    def _op_fail(self, request: Dict[str, object]) -> Dict[str, object]:
        """Deliberately raise inside the handler (exercises the crash
        path end to end: structured error response, flight event,
        ``repro.crash/1`` report)."""
        self._require_debug_ops()
        raise RuntimeError(
            str(request.get("message", "injected failure (debug op)"))
        )

    def _op_sleep(self, request: Dict[str, object]) -> Dict[str, object]:
        """Deliberately hold the handler in flight (exercises the stall
        watchdog: ``daemon.stalled`` fires once ``seconds`` exceeds the
        deadline)."""
        self._require_debug_ops()
        seconds = min(60.0, float(request.get("seconds", 1.0) or 0.0))
        time.sleep(max(0.0, seconds))
        return {"ok": True, "slept_s": seconds}

    def _op_shutdown(self, request: Dict[str, object]) -> Dict[str, object]:
        return {"ok": True, "stopping": True, "__shutdown__": True}


class DaemonClient:
    """Blocking JSON-lines client for :class:`TimingDaemon`.

    >>> with DaemonClient("/tmp/repro.sock") as client:   # doctest: +SKIP
    ...     client.request({"op": "ping"})["pong"]
    True
    """

    def __init__(
        self,
        socket_path: Union[str, "os.PathLike[str]"],
        timeout: Optional[float] = 30.0,
    ) -> None:
        self.socket_path = str(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(self.socket_path)
        self._file = self._sock.makefile("rwb")

    def request(self, request: Dict[str, object]) -> Dict[str, object]:
        """Send one request object, wait for its response object.

        While the calling process records (``obs.recording()``), the
        request automatically carries a ``repro.trace/1`` context; the
        daemon handles it under a per-request recorder and ships the
        snapshot back, which is merged into the local trace -- the
        client span and the daemon's handler spans share one trace id
        in the resulting Chrome trace (see ``docs/observability.md``).
        """
        recorder = obs.active()
        ctx = None
        if recorder is not None and "trace" not in request:
            ctx = live.trace_context(recorder)
            request = dict(request)
            request["trace"] = ctx
        with obs.span(
            "service.client.request",
            category="service",
            op=str(request.get("op", "")),
            **live.span_args(ctx),
        ):
            self._file.write(
                json.dumps(
                    request, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
                + b"\n"
            )
            self._file.flush()
            line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        response = json.loads(line.decode("utf-8"))
        response.pop("__shutdown__", None)
        if ctx is not None:
            live.merge_snapshot(recorder, response.pop("trace", None))
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- convenience wrappers ------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self.request({"op": "ping"})

    def analyze(self, netlist: str, clocks: str, **kw) -> Dict[str, object]:
        return self.request(
            {"op": "analyze", "netlist": netlist, "clocks": clocks, **kw}
        )

    def mutate(
        self, netlist: str, clocks: str, action: str, **kw
    ) -> Dict[str, object]:
        return self.request(
            {
                "op": "mutate",
                "netlist": netlist,
                "clocks": clocks,
                "action": action,
                **kw,
            }
        )

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "stats"})

    def health(self) -> Dict[str, object]:
        return self.request({"op": "health"})

    def metrics(self) -> Dict[str, object]:
        return self.request({"op": "metrics"})

    def profile(self, action: str = "fetch", **kw) -> Dict[str, object]:
        return self.request({"op": "profile", "action": action, **kw})

    def history(self, last: Optional[int] = None) -> Dict[str, object]:
        request: Dict[str, object] = {"op": "history"}
        if last is not None:
            request["last"] = last
        return self.request(request)

    def buildinfo(self) -> Dict[str, object]:
        return self.request({"op": "buildinfo"})

    def alerts(self, action: str = "list", **kw) -> Dict[str, object]:
        return self.request({"op": "alerts", "action": action, **kw})

    def flight(self, last: Optional[int] = None) -> Dict[str, object]:
        request: Dict[str, object] = {"op": "flight"}
        if last is not None:
            request["last"] = last
        return self.request(request)

    def traces(self, action: str = "list", **kw) -> Dict[str, object]:
        return self.request({"op": "traces", "action": action, **kw})

    def crash_report(self) -> Dict[str, object]:
        return self.request({"op": "crash-report"})

    def shutdown(self) -> Dict[str, object]:
        return self.request({"op": "shutdown"})
