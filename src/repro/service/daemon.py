"""The timing daemon: a long-lived engine behind a Unix socket.

``repro-sta serve --socket /tmp/repro.sock`` starts a
:class:`TimingDaemon`; clients (``repro-sta query``, the
:class:`DaemonClient` helper, or ten lines of any language) speak a
**JSON-lines protocol**: one request object per line in, one response
object per line out, over a ``SOCK_STREAM`` Unix-domain socket.  A
connection may issue any number of requests.

The daemon keeps one :class:`repro.core.incremental.IncrementalAnalyzer`
warm per loaded design, so the expensive work -- parsing the netlist,
estimating delays, extracting clusters and break-open plans -- happens
once.  ``analyze`` answers from the warm engine (cold only on first
load), ``mutate`` applies delay/clock edits through the incremental
engine (cheap delay swap when outside control cones, tracked rebuild
otherwise) and the next ``analyze`` warm-starts Algorithm 1 from the
previous fixed point.  An optional :class:`repro.service.cache.
ResultCache` short-circuits repeated cold loads across daemon restarts.

Requests (see ``docs/service.md`` for the full protocol)::

    {"op": "ping"}
    {"op": "analyze", "netlist": "p.json", "clocks": "c.json"}
    {"op": "mutate",  "netlist": "p.json", "clocks": "c.json",
     "action": "scale_cell", "cell": "s0_i1", "factor": 1.5}
    {"op": "report",  "netlist": "p.json", "clocks": "c.json",
     "endpoint": "s1_l"}
    {"op": "stats"}
    {"op": "shutdown"}

Responses always carry ``"ok"``; errors come back as
``{"ok": false, "error": ..., "error_type": ...}`` -- a malformed
request never takes the daemon down.
"""

from __future__ import annotations

import json
import math
import os
import socket
import socketserver
import threading
import time
from typing import Dict, Optional, Tuple, Union

from repro import obs
from repro.service.cache import ResultCache
from repro.service.digest import (
    analysis_config,
    cache_key,
    config_digest,
    network_digest,
    schedule_digest,
)

__all__ = ["DaemonClient", "TimingDaemon", "PROTOCOL_VERSION"]

#: Bumped when the request/response shapes change incompatibly.
PROTOCOL_VERSION = 1


def _json_num(value) -> object:
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


class _DesignState:
    """One warm design: parsed network + incremental engine."""

    def __init__(self, netlist: str, clocks: str, default_clock=None):
        from repro.cells import standard_library
        from repro.clocks.serialize import load_schedule
        from repro.core.incremental import IncrementalAnalyzer
        from repro.netlist.blif import load_blif
        from repro.netlist.persistence import load_network
        from repro.netlist.verilog import load_verilog
        from pathlib import Path

        self.netlist = netlist
        self.clocks = clocks
        suffix = Path(netlist).suffix.lower()
        library = standard_library()
        if suffix == ".blif":
            self.network = load_blif(netlist, library, default_clock)
        elif suffix == ".v":
            self.network = load_verilog(netlist, library, default_clock)
        elif suffix == ".json":
            self.network = load_network(netlist, library)
        else:
            raise ValueError(
                f"unknown netlist format {suffix!r} "
                "(use .json, .blif or .v)"
            )
        self.schedule = load_schedule(clocks)
        self.analyzer = IncrementalAnalyzer(self.network, self.schedule)
        self.lock = threading.Lock()
        self.mutations = 0
        self.analyses = 0
        #: Has the *current* engine answered at least once?  Reset on a
        #: full rebuild (clock edits), kept across delay mutations.
        self.served = False

    @property
    def warm(self) -> bool:
        """Served by the live incremental engine (model reuse)?

        This is *engine* warmth -- the design is parsed and its analysis
        model built -- not fixed-point warmth: a delay mutation drops
        the cached fixed point (see
        :meth:`repro.core.incremental.IncrementalAnalyzer.scale_cell`)
        yet the next answer still comes from the incremental engine.
        """
        return self.served

    def content_key(self, slow_path_limit, tolerance) -> str:
        config = analysis_config(
            slow_path_limit=slow_path_limit, tolerance=tolerance
        )
        return cache_key(
            network_digest(self.network),
            schedule_digest(self.schedule),
            config_digest(config),
        )


class TimingDaemon:
    """Long-lived analyze/what-if/report engine on a Unix socket."""

    def __init__(
        self,
        socket_path: Union[str, "os.PathLike[str]"],
        cache: Optional[ResultCache] = None,
        slow_path_limit: Optional[int] = 50,
    ) -> None:
        self.socket_path = str(socket_path)
        self.cache = cache
        self.slow_path_limit = slow_path_limit
        self.started_at = time.time()
        self.requests = 0
        self._designs: Dict[Tuple[str, str], _DesignState] = {}
        self._designs_lock = threading.Lock()
        self._server: Optional[socketserver.ThreadingUnixStreamServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _make_server(self) -> socketserver.ThreadingUnixStreamServer:
        if os.path.exists(self.socket_path):
            # A previous daemon may have crashed without unlinking.
            os.unlink(self.socket_path)
        daemon = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # one connection, many requests
                while True:
                    line = self.rfile.readline()
                    if not line:
                        return
                    line = line.strip()
                    if not line:
                        continue
                    response = daemon.handle_line(line)
                    self.wfile.write(
                        json.dumps(
                            response, sort_keys=True,
                            separators=(",", ":"),
                        ).encode("utf-8")
                        + b"\n"
                    )
                    self.wfile.flush()
                    if response.get("__shutdown__"):
                        # Shut the server down from a helper thread so
                        # this handler can finish its response first.
                        threading.Thread(
                            target=daemon.stop, daemon=True
                        ).start()
                        return

        server = socketserver.ThreadingUnixStreamServer(
            self.socket_path, Handler
        )
        server.daemon_threads = True
        return server

    def start(self) -> None:
        """Serve in a background thread (returns once listening)."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        self._server = self._make_server()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop`/shutdown op."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        self._server = self._make_server()
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._cleanup()

    def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._cleanup()

    def _cleanup(self) -> None:
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    def __enter__(self) -> "TimingDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle_line(self, line: bytes) -> Dict[str, object]:
        """Parse one request line and answer it (never raises)."""
        started = time.perf_counter()
        self.requests += 1
        obs.counter("service.daemon.requests")
        request: Dict[str, object] = {}
        try:
            parsed = json.loads(line.decode("utf-8"))
            if not isinstance(parsed, dict):
                raise ValueError("request must be a JSON object")
            request = parsed
            op = str(request.get("op", ""))
            handler = getattr(self, f"_op_{op}", None)
            if handler is None or op.startswith("_"):
                raise ValueError(f"unknown op {op!r}")
            response = handler(request)
        except Exception as exc:  # noqa: BLE001 -- protocol boundary
            obs.counter("service.daemon.errors")
            response = {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
        if "id" in request:
            response.setdefault("id", request["id"])
        obs.histogram(
            "service.daemon.request_seconds",
            time.perf_counter() - started,
        )
        return response

    # ------------------------------------------------------------------
    # state helpers
    # ------------------------------------------------------------------
    def _design(self, request: Dict[str, object]) -> _DesignState:
        netlist = request.get("netlist")
        clocks = request.get("clocks")
        if not netlist or not clocks:
            raise ValueError("request needs 'netlist' and 'clocks' paths")
        key = (str(netlist), str(clocks))
        with self._designs_lock:
            state = self._designs.get(key)
            if state is None:
                with obs.span("service.daemon.load", category="service"):
                    state = _DesignState(
                        key[0], key[1], request.get("default_clock")
                    )
                self._designs[key] = state
                obs.counter("service.daemon.designs_loaded")
        return state

    def _analyze_state(
        self, state: _DesignState, request: Dict[str, object]
    ) -> Dict[str, object]:
        from repro.report.manifest import manifest_digest, timing_digest

        limit = request.get("slow_path_limit", self.slow_path_limit)
        tolerance = float(request.get("tolerance", 0.0) or 0.0)
        engine = "incremental-warm" if state.warm else "cold"
        if engine == "incremental-warm":
            obs.counter("service.daemon.incremental_hits")
        result = state.analyzer.timing_result(
            warm=True, slow_path_limit=limit, tolerance=tolerance
        )
        state.analyses += 1
        state.served = True
        manifest = result.manifest(
            netlist_path=state.netlist,
            clocks_path=state.clocks,
            label=request.get("label"),
        )
        if self.cache is not None:
            key = state.content_key(limit, tolerance)
            if state.mutations == 0 and key not in self.cache:
                self.cache.put(key, result.payload(), manifest)
        return {
            "ok": True,
            "engine": engine,
            "design": state.network.name,
            "intended": result.intended,
            "worst_slack": _json_num(result.worst_slack),
            "slow_paths": len(result.slow_paths),
            "iterations": result.algorithm1.iterations.total,
            "summary": result.summary(),
            "payload": result.payload(),
            "manifest": manifest,
            "manifest_digest": manifest_digest(manifest),
            "timing_digest": timing_digest(manifest),
        }

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _op_ping(self, request: Dict[str, object]) -> Dict[str, object]:
        return {
            "ok": True,
            "pong": True,
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_at, 3),
        }

    def _op_analyze(self, request: Dict[str, object]) -> Dict[str, object]:
        state = self._design(request)
        with state.lock:
            with obs.span("service.daemon.analyze", category="service"):
                return self._analyze_state(state, request)

    def _op_mutate(self, request: Dict[str, object]) -> Dict[str, object]:
        state = self._design(request)
        action = str(request.get("action", ""))
        with state.lock:
            with obs.span("service.daemon.mutate", category="service"):
                if action == "scale_cell":
                    cell = str(request.get("cell", ""))
                    factor = float(request["factor"])
                    state.analyzer.scale_cell(cell, factor)
                elif action == "scale_clocks":
                    factor = request["factor"]
                    state.schedule = state.schedule.scaled(factor)
                    self._rebuild(state)
                elif action == "set_pulse_width":
                    state.schedule = state.schedule.with_pulse_width(
                        str(request["clock"]), request["width"]
                    )
                    self._rebuild(state)
                else:
                    raise ValueError(
                        f"unknown mutate action {action!r} (use "
                        "scale_cell, scale_clocks or set_pulse_width)"
                    )
            state.mutations += 1
            obs.counter("service.daemon.mutations")
            response: Dict[str, object] = {
                "ok": True,
                "action": action,
                "mutations": state.mutations,
                "rebuilds": state.analyzer.rebuilds,
                "swaps": state.analyzer.swaps,
            }
            if request.get("analyze", True):
                response["analysis"] = self._analyze_state(state, request)
            return response

    def _rebuild(self, state: _DesignState) -> None:
        """Clock edits change the instance windows: rebuild the engine
        (delays are clock-independent and reused)."""
        from repro.core.incremental import IncrementalAnalyzer

        delays = state.analyzer.delays
        state.analyzer = IncrementalAnalyzer(
            state.network, state.schedule, delays=delays
        )
        state.served = False

    def _op_report(self, request: Dict[str, object]) -> Dict[str, object]:
        state = self._design(request)
        endpoint = request.get("endpoint")
        if not endpoint:
            raise ValueError("report needs an 'endpoint'")
        with state.lock:
            result = state.analyzer.timing_result(warm=True)
            forensics = result.path_forensics()
            explained = forensics.explain(str(endpoint))
            return {
                "ok": True,
                "endpoint": str(endpoint),
                "text": forensics.render_text(explained),
                "report": json.loads(forensics.to_json([explained])),
            }

    def _op_stats(self, request: Dict[str, object]) -> Dict[str, object]:
        with self._designs_lock:
            designs = {
                state.network.name: {
                    "netlist": state.netlist,
                    "clocks": state.clocks,
                    "warm": state.warm,
                    "analyses": state.analyses,
                    "mutations": state.mutations,
                    "rebuilds": state.analyzer.rebuilds,
                    "swaps": state.analyzer.swaps,
                }
                for state in self._designs.values()
            }
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": self.requests,
            "designs": designs,
            "cache": (
                self.cache.stats.to_dict()
                if self.cache is not None
                else None
            ),
        }

    def _op_evict(self, request: Dict[str, object]) -> Dict[str, object]:
        """Drop a warm design (and optionally its cache entries)."""
        netlist = str(request.get("netlist", ""))
        clocks = str(request.get("clocks", ""))
        with self._designs_lock:
            dropped = self._designs.pop((netlist, clocks), None)
        return {"ok": True, "dropped": dropped is not None}

    def _op_shutdown(self, request: Dict[str, object]) -> Dict[str, object]:
        return {"ok": True, "stopping": True, "__shutdown__": True}


class DaemonClient:
    """Blocking JSON-lines client for :class:`TimingDaemon`.

    >>> with DaemonClient("/tmp/repro.sock") as client:   # doctest: +SKIP
    ...     client.request({"op": "ping"})["pong"]
    True
    """

    def __init__(
        self,
        socket_path: Union[str, "os.PathLike[str]"],
        timeout: Optional[float] = 30.0,
    ) -> None:
        self.socket_path = str(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(self.socket_path)
        self._file = self._sock.makefile("rwb")

    def request(self, request: Dict[str, object]) -> Dict[str, object]:
        """Send one request object, wait for its response object."""
        self._file.write(
            json.dumps(
                request, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            + b"\n"
        )
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        response = json.loads(line.decode("utf-8"))
        response.pop("__shutdown__", None)
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- convenience wrappers ------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self.request({"op": "ping"})

    def analyze(self, netlist: str, clocks: str, **kw) -> Dict[str, object]:
        return self.request(
            {"op": "analyze", "netlist": netlist, "clocks": clocks, **kw}
        )

    def mutate(
        self, netlist: str, clocks: str, action: str, **kw
    ) -> Dict[str, object]:
        return self.request(
            {
                "op": "mutate",
                "netlist": netlist,
                "clocks": clocks,
                "action": action,
                **kw,
            }
        )

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, object]:
        return self.request({"op": "shutdown"})
