"""Fleet collector: scrapes peer sidecars into one aggregated view.

The per-daemon telemetry sidecar (PR 4-8) answers ``/healthz``,
``/metrics/history``, ``/alertz`` and ``/fabricz`` for *one* process.
This module adds the fleet layer on top:

* :func:`scrape_peer` pulls those documents from one peer over HTTP,
  degrading per the fleet contract (timeout / malformed JSON / vanished
  peer -> ``ok: False`` with the error string; a failing *auxiliary*
  endpoint leaves the peer up with that sub-document ``None``);
* :func:`scrape_fleet` sweeps a whole peer list (used by the one-shot
  ``repro-sta fleet --once`` / ``doctor --fleet`` paths);
* :class:`FleetCollector` runs that sweep on the metrics-history
  cadence in a background thread, re-reads its ``--peers-file`` when
  the file's mtime changes (``service.collector.peer_set_reloads``),
  keeps a fleet-level :class:`~repro.obs.tsdb.MetricsHistory`, and
  serves ``/fleetz``, ``/fleet/doctor``, ``/fleet/metrics``,
  ``/fleet/history`` and ``/healthz`` -- either on its own
  :class:`~repro.service.httpmon.RouteHTTPServer` (``repro-sta
  collect``) or merged into a daemon's sidecar (``serve --collect``).

Nothing in the scrape loop is allowed to raise: a bad peer becomes a
``down`` row, a bad sweep becomes ``service.collector.scrape_errors``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.obs import recorder as obs_recorder
from repro.obs.fleet import (
    build_fleet_doc,
    build_fleet_doctor,
    load_peers,
)
from repro.obs.metrics import render_prometheus
from repro.obs.recorder import Recorder
from repro.obs.tsdb import MetricsHistory
from repro.service.httpmon import RouteHTTPServer, RouteTable

__all__ = [
    "COLLECTOR_HEALTH_SCHEMA",
    "scrape_peer",
    "scrape_fleet",
    "FleetCollector",
]

#: Schema of the collector's own ``/healthz`` document.
COLLECTOR_HEALTH_SCHEMA = "repro.collector.health/1"

#: Counter namespace (see docs/observability.md).
COUNTER_PREFIX = "service.collector"

#: Endpoints scraped from every peer beyond the gating ``/healthz``.
#: Each is optional: a failure leaves the peer up with the entry None.
_AUX_ENDPOINTS = (
    ("history", "/metrics/history?last={history_last}"),
    ("alertz", "/alertz"),
    ("fabricz", "/fabricz"),
    ("crashz", "/crashz"),
)


def _count(name: str, value: float = 1.0) -> None:
    obs_recorder.counter(f"{COUNTER_PREFIX}.{name}", value)


def _get_json(url: str, timeout_s: float) -> Dict[str, object]:
    """GET ``url`` and parse the body as a JSON object (raises on any
    failure -- callers classify)."""
    with urllib.request.urlopen(url, timeout=timeout_s) as resp:
        body = resp.read()
    document = json.loads(body.decode("utf-8"))
    if not isinstance(document, dict):
        raise ValueError("response body is not a JSON object")
    return document


def scrape_peer(
    url: str,
    timeout_s: float = 2.0,
    history_last: int = 5,
) -> Dict[str, object]:
    """Scrape one peer's sidecar into a fleet scrape result.

    ``/healthz`` is the up/down gate: if it cannot be fetched and
    parsed the peer is ``down`` and nothing else is attempted.  The
    auxiliary endpoints are best-effort -- a daemon without a fabric
    has no useful ``/fabricz``, an old daemon may lack ``/crashz`` --
    so their failures leave that sub-document ``None``.
    """
    base = url.rstrip("/")
    scrape: Dict[str, object] = {
        "ok": False,
        "error": None,
        "healthz": None,
        "history": None,
        "alertz": None,
        "fabricz": None,
        "crashz": None,
    }
    try:
        scrape["healthz"] = _get_json(f"{base}/healthz", timeout_s)
    except Exception as exc:  # noqa: BLE001 -- classified into the row
        scrape["error"] = f"{type(exc).__name__}: {exc}"
        _count("scrape_errors")
        return scrape
    scrape["ok"] = True
    for key, suffix in _AUX_ENDPOINTS:
        endpoint = suffix.format(history_last=history_last)
        try:
            scrape[key] = _get_json(f"{base}{endpoint}", timeout_s)
        except Exception:  # noqa: BLE001 -- peer stays up
            scrape[key] = None
    _count("scrapes")
    return scrape


def scrape_fleet(
    peers: List[str],
    timeout_s: float = 2.0,
    history_last: int = 5,
) -> "OrderedDict[str, Dict[str, object]]":
    """Scrape every peer; insertion order follows the peers list."""
    scrapes: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
    for url in peers:
        scrapes[url] = scrape_peer(
            url, timeout_s=timeout_s, history_last=history_last
        )
    return scrapes


class FleetCollector:
    """Background fleet scraper + aggregated HTTP surface.

    Parameters
    ----------
    peers_file:
        Path parsed by :func:`repro.obs.fleet.load_peers`; re-read on
        mtime change before every sweep.
    interval_s:
        Scrape cadence -- defaults to the metrics-history cadence so
        the fleet view and the per-peer tsdb ring stay in step.
    http_port:
        Port for the collector's own HTTP server, or ``None`` to run
        embedded (``serve --collect`` merges :meth:`routes` into the
        daemon sidecar instead).
    """

    def __init__(
        self,
        peers_file: Union[str, Path],
        interval_s: float = 5.0,
        timeout_s: float = 2.0,
        history_last: int = 5,
        http_port: Optional[int] = 0,
        http_host: str = "127.0.0.1",
        history_capacity: int = 720,
    ) -> None:
        self.peers_file = Path(peers_file)
        self.interval_s = float(interval_s)
        self.timeout_s = float(timeout_s)
        self.history_last = int(history_last)
        self.peers: List[str] = load_peers(self.peers_file)
        self._peers_mtime = self._mtime()
        self.recorder = Recorder()
        self.history = MetricsHistory(
            capacity=history_capacity, interval_s=self.interval_s
        )
        self._lock = threading.Lock()
        self._fleet_doc: Optional[Dict[str, object]] = None
        self._doctor_doc: Optional[Dict[str, object]] = None
        self._sweeps = 0
        self._started = time.time()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.server: Optional[RouteHTTPServer] = None
        if http_port is not None:
            table = RouteTable()
            for path, route in self.routes().items():
                table.add_simple(path, route)
            self.server = RouteHTTPServer(
                table, port=http_port, host=http_host
            )

    # ------------------------------------------------------------------
    # peers-file reload
    # ------------------------------------------------------------------
    def _mtime(self) -> Optional[float]:
        try:
            return self.peers_file.stat().st_mtime
        except OSError:
            return None

    def maybe_reload_peers(self) -> bool:
        """Re-read the peers file when its mtime changed; True on a
        reload (counted as ``service.collector.peer_set_reloads``)."""
        mtime = self._mtime()
        if mtime is None or mtime == self._peers_mtime:
            return False
        try:
            peers = load_peers(self.peers_file)
        except (OSError, ValueError, json.JSONDecodeError):
            return False
        self._peers_mtime = mtime
        if peers == self.peers:
            return False
        self.peers = peers
        _count("peer_set_reloads")
        self.recorder.counter(f"{COUNTER_PREFIX}.peer_set_reloads")
        return True

    # ------------------------------------------------------------------
    # scrape sweep
    # ------------------------------------------------------------------
    def sweep(self) -> Dict[str, object]:
        """One scrape of every peer; updates the cached fleet + doctor
        documents, the collector gauges and the fleet history ring.
        Never raises."""
        try:
            self.maybe_reload_peers()
            scrapes = scrape_fleet(
                self.peers,
                timeout_s=self.timeout_s,
                history_last=self.history_last,
            )
            fleet_doc = build_fleet_doc(scrapes)
            doctor_doc = build_fleet_doctor(scrapes)
            summary = fleet_doc.get("summary") or {}
            self.recorder.counter(f"{COUNTER_PREFIX}.sweeps")
            self.recorder.gauge(
                "fleet.peers", float(summary.get("peers", 0))
            )
            self.recorder.gauge("fleet.up", float(summary.get("up", 0)))
            self.recorder.gauge(
                "fleet.degraded", float(summary.get("degraded", 0))
            )
            self.recorder.gauge(
                "fleet.down", float(summary.get("down", 0))
            )
            self.recorder.gauge(
                "fleet.rate_rps", float(summary.get("rate_rps", 0.0))
            )
            self.recorder.gauge(
                "fleet.alerts_firing",
                float(summary.get("alerts_firing", 0)),
            )
            self.history.record(self.recorder)
            with self._lock:
                self._fleet_doc = fleet_doc
                self._doctor_doc = doctor_doc
                self._sweeps += 1
            return fleet_doc
        except Exception:  # noqa: BLE001 -- loop must survive anything
            _count("scrape_errors")
            self.recorder.counter(f"{COUNTER_PREFIX}.scrape_errors")
            with self._lock:
                return self._fleet_doc or build_fleet_doc({})

    # ------------------------------------------------------------------
    # cached views
    # ------------------------------------------------------------------
    def fleet_doc(self) -> Dict[str, object]:
        with self._lock:
            doc = self._fleet_doc
        return doc if doc is not None else self.sweep()

    def doctor_doc(self) -> Dict[str, object]:
        with self._lock:
            doc = self._doctor_doc
        if doc is not None:
            return doc
        self.sweep()
        with self._lock:
            return self._doctor_doc or build_fleet_doctor({})

    def health(self) -> Dict[str, object]:
        with self._lock:
            sweeps = self._sweeps
        return {
            "schema": COLLECTOR_HEALTH_SCHEMA,
            "ok": True,
            "role": "collector",
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self._started, 3),
            "peers": list(self.peers),
            "peers_file": str(self.peers_file),
            "interval_s": self.interval_s,
            "sweeps": sweeps,
        }

    # ------------------------------------------------------------------
    # HTTP surface
    # ------------------------------------------------------------------
    def routes(self) -> Dict[str, Callable[[Dict[str, str]], Tuple[str, str]]]:
        """Simple sidecar routes (path -> Route); merged into either
        the collector's own server or a hosting daemon's sidecar."""

        def fleetz(params: Dict[str, str]) -> Tuple[str, str]:
            if params.get("refresh") in ("1", "true"):
                self.sweep()
            return "application/json", json.dumps(self.fleet_doc())

        def fleet_doctor(params: Dict[str, str]) -> Tuple[str, str]:
            if params.get("refresh") in ("1", "true"):
                self.sweep()
            return "application/json", json.dumps(self.doctor_doc())

        def fleet_metrics(params: Dict[str, str]) -> Tuple[str, str]:
            # The standard "repro" prefix: the fleet.* gauges come out
            # as repro_fleet_up etc., consistent with /metrics naming.
            return (
                "text/plain; version=0.0.4",
                render_prometheus(self.recorder, prefix="repro"),
            )

        def fleet_history(params: Dict[str, str]) -> Tuple[str, str]:
            last = None
            if "last" in params:
                last = int(params["last"])
            return (
                "application/json",
                json.dumps(self.history.to_dict(last)),
            )

        def healthz(params: Dict[str, str]) -> Tuple[str, str]:
            return "application/json", json.dumps(self.health())

        return {
            "/fleetz": fleetz,
            "/fleet/doctor": fleet_doctor,
            "/fleet/metrics": fleet_metrics,
            "/fleet/history": fleet_history,
            "/healthz": healthz,
        }

    def embedded_routes(
        self,
    ) -> Dict[str, Callable[[Dict[str, str]], Tuple[str, str]]]:
        """Routes for merging into a daemon sidecar -- everything
        except ``/healthz`` (the daemon already serves its own)."""
        routes = self.routes()
        routes.pop("/healthz", None)
        return routes

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Optional[Tuple[str, int]]:
        return self.server.address if self.server else None

    def start(self) -> Optional[Tuple[str, int]]:
        if self._thread is not None:
            raise RuntimeError("collector already started")
        address = self.server.start() if self.server else None
        self._stop.clear()

        def _run() -> None:
            while not self._stop.is_set():
                self.sweep()
                self._stop.wait(self.interval_s)

        self._thread = threading.Thread(
            target=_run, name="repro-fleet-collector", daemon=True
        )
        self._thread.start()
        return address

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        self._thread = None
        if thread is not None:
            thread.join(timeout=5.0)
        if self.server is not None:
            self.server.stop()
