"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

Produces the JSON Object Format of the Trace Event specification:
``{"traceEvents": [...], ...}`` where each span becomes a *complete*
event (``"ph": "X"``), each instant event an ``"i"`` event, and final
counter values a ``"C"`` sample.  Timestamps and durations are in
microseconds, as the format requires.

Open the output at ``chrome://tracing`` (load button) or
https://ui.perfetto.dev (drag and drop).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Union

from repro.obs.recorder import Recorder

_SECONDS_TO_US = 1_000_000.0


def to_chrome_trace(recorder: Recorder) -> Dict[str, object]:
    """The recorder's contents as a trace-event JSON object.

    Spans and events merged in from other processes (see
    :mod:`repro.obs.live`) keep their originating ``pid``, so a stitched
    client/daemon/worker trace renders as separate process tracks;
    :class:`~repro.obs.recorder.FlowRecord` pairs become flow arrows
    (``"ph": "s"``/``"f"``) linking parent spans to child work.
    """
    pid = os.getpid()
    events: List[Dict[str, object]] = []
    threads = set()
    for record in recorder.spans:
        record_pid = record.pid if record.pid is not None else pid
        threads.add((record_pid, record.thread_id))
        entry: Dict[str, object] = {
            "name": record.name,
            "cat": record.category,
            "ph": "X",
            "ts": record.start * _SECONDS_TO_US,
            "dur": record.duration * _SECONDS_TO_US,
            "pid": record_pid,
            "tid": record.thread_id,
        }
        if record.args:
            entry["args"] = dict(record.args)
        events.append(entry)
    for record in recorder.events:
        record_pid = record.pid if record.pid is not None else pid
        threads.add((record_pid, record.thread_id))
        entry = {
            "name": record.name,
            "cat": "event",
            "ph": "i",
            "ts": record.timestamp * _SECONDS_TO_US,
            "pid": record_pid,
            "tid": record.thread_id,
            "s": "t",
        }
        if record.args:
            entry["args"] = dict(record.args)
        events.append(entry)
    for flow in recorder.flows:
        entry = {
            "name": "trace",
            "cat": "trace",
            "ph": flow.phase,
            "id": flow.flow_id,
            "ts": flow.timestamp * _SECONDS_TO_US,
            "pid": flow.pid if flow.pid is not None else pid,
            "tid": flow.thread_id,
        }
        if flow.phase == "f":
            entry["bp"] = "e"  # bind to the enclosing slice
        events.append(entry)
    # Final counter values as one counter sample each (visible as tracks).
    final_ts = max(
        [r.start + r.duration for r in recorder.spans]
        + [r.timestamp for r in recorder.events]
        + [0.0]
    )
    for name in sorted(recorder.counters):
        events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": final_ts * _SECONDS_TO_US,
                "pid": pid,
                "args": {"value": recorder.counters[name]},
            }
        )
    # Thread/process names so Perfetto shows something meaningful.
    for thread_pid, tid in sorted(threads):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": thread_pid,
                "tid": tid,
                "args": {"name": f"thread-{tid}"},
            }
        )
    for process_pid in sorted({p for p, __ in threads}):
        label = "parent" if process_pid == pid else "child"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": process_pid,
                "tid": 0,
                "args": {"name": f"repro-{label}-{process_pid}"},
            }
        )
    other_data: Dict[str, object] = {
        "producer": "repro.obs",
        "dropped_spans": recorder.dropped_spans,
        "dropped_events": recorder.dropped_events,
    }
    if recorder.trace_id:
        other_data["trace_id"] = recorder.trace_id
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other_data,
    }


def write_chrome_trace(
    recorder: Recorder, path: Union[str, Path]
) -> Path:
    """Serialise :func:`to_chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(recorder), indent=None))
    return path


def validate_chrome_trace(data: object) -> List[str]:
    """Schema check used by tests and tooling: a list of problems
    (empty when the object is a valid trace-event JSON object)."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["top level must be a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, entry in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(entry.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        ph = entry.get("ph")
        if ph not in ("X", "B", "E", "i", "C", "M", "s", "t", "f"):
            problems.append(f"{where}: unsupported phase {ph!r}")
        if ph in ("s", "t", "f") and not isinstance(
            entry.get("id"), (str, int)
        ):
            problems.append(f"{where}: flow event needs an 'id'")
        if ph != "M":
            ts = entry.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = entry.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'dur' must be a non-negative number")
    return problems
