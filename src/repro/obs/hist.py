"""Shared histogram bucketing: recorder histograms and slack reports.

Two consumers share the arithmetic here:

* :class:`repro.obs.Recorder` fixed-bucket histograms
  (:class:`HistogramStats`, Prometheus ``_bucket``/``_sum``/``_count``
  exposition), and
* :func:`repro.core.statistics.timing_statistics` slack histograms
  (equal-width data-driven buckets via :func:`equal_width_edges` /
  :func:`bucket_counts`).

Keeping one bucketing implementation means a slack histogram printed by
``repro-sta stats`` and one exported through the metrics dump cannot
drift apart.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "HistogramStats",
    "equal_width_edges",
    "bucket_counts",
    "quantile_from_counts",
]

#: Default upper bounds for recorder histograms (slack-flavoured:
#: symmetric around zero, widening outwards).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    -100.0,
    -50.0,
    -20.0,
    -10.0,
    -5.0,
    -2.0,
    -1.0,
    -0.5,
    0.0,
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
)


#: Upper bounds for latency histograms (seconds; sub-millisecond to a
#: minute, roughly log-spaced).  Used by the service layer for request,
#: queue-wait and job-duration timings.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


def quantile_from_counts(
    bounds: Sequence[float],
    counts: Sequence[int],
    q: float,
    overflow: Optional[float] = None,
) -> float:
    """Estimate the ``q``-quantile from fixed-bucket counts.

    ``bounds`` are sorted upper bounds; ``counts`` are the per-bucket
    (non-cumulative) counts with one extra trailing ``+Inf`` overflow
    bucket, exactly the shape :meth:`HistogramStats.to_dict` exports.
    Linear interpolation inside the winning bucket (Prometheus
    ``histogram_quantile`` semantics).

    Edge cases always yield a **finite** value:

    * an empty histogram (all counts zero, or no bounds) returns
      ``0.0``;
    * a quantile landing in the ``+Inf`` overflow bucket clamps to
      ``overflow`` when given (pass the histogram's observed maximum
      for the tightest finite answer), else to the last finite bound.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    total = sum(counts)
    if total == 0 or not bounds:
        return 0.0
    clamp = float(bounds[-1])
    if overflow is not None and math.isfinite(overflow):
        clamp = max(clamp, float(overflow))
    rank = q * total
    running = 0.0
    for index, count in enumerate(counts):
        previous = running
        running += count
        if running >= rank and count:
            if index >= len(bounds):  # +Inf overflow bucket
                return clamp
            upper = float(bounds[index])
            lower = float(bounds[index - 1]) if index else min(0.0, upper)
            fraction = (rank - previous) / count
            return lower + (upper - lower) * fraction
    return clamp


def equal_width_edges(
    low: float, high: float, bins: int
) -> List[float]:
    """``bins + 1`` equal-width bucket edges from ``low`` to ``high``.

    The last edge is exactly ``high`` (no floating-point creep), so the
    maximum value always lands in the last bucket.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    step = (high - low) / bins
    edges = [low + index * step for index in range(bins)]
    edges.append(high)
    return edges


def bucket_counts(
    values: Sequence[float], edges: Sequence[float]
) -> List[int]:
    """Count ``values`` into the buckets delimited by ``edges``.

    Bucket ``i`` holds ``edges[i] <= v < edges[i + 1]``; the final
    bucket is right-inclusive so the maximum is not dropped.
    """
    bins = len(edges) - 1
    counts = [0] * bins
    last = bins - 1
    for value in values:
        for index in range(bins):
            lower = edges[index]
            upper = edges[index + 1]
            if lower <= value < upper or (index == last and value == upper):
                counts[index] += 1
                break
    return counts


class HistogramStats:
    """Fixed-bucket aggregation of observed values.

    ``bounds`` are sorted *upper* bounds (Prometheus ``le`` semantics:
    bucket ``i`` counts values ``<= bounds[i]``); an implicit ``+Inf``
    overflow bucket catches everything beyond the last bound.
    """

    __slots__ = (
        "bounds",
        "counts",
        "count",
        "total",
        "minimum",
        "maximum",
        "exemplars",
    )

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(sorted(float(b) for b in bounds))
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = ordered
        #: Per-bucket (non-cumulative) counts; index len(bounds) = +Inf.
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        #: OpenMetrics-style exemplars: bucket index -> the most recent
        #: labelled observation in that bucket, e.g.
        #: ``{"trace_id": ..., "value": 0.41, "ts": 1700000000.0}``.
        self.exemplars: Dict[int, Dict[str, object]] = {}

    def observe(
        self, value: float, exemplar: Optional[Dict[str, object]] = None
    ) -> None:
        index = bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if exemplar:
            self.exemplars[index] = dict(exemplar, value=value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (see :func:`quantile_from_counts`).

        The observed maximum clamps quantiles that land in the ``+Inf``
        overflow bucket, so the estimate stays finite even when every
        sample exceeded the last bound.
        """
        overflow = self.maximum if self.count else None
        return quantile_from_counts(
            self.bounds, self.counts, q, overflow=overflow
        )

    def merge(self, other: "HistogramStats") -> None:
        """Fold ``other``'s observations into this histogram.

        Matching bounds merge bucket-by-bucket (exact); mismatched
        bounds re-bucket the other histogram's counts at each of its
        upper bounds (a conservative approximation used when a child
        process chose different buckets).
        """
        if other.bounds == self.bounds:
            for index, count in enumerate(other.counts):
                self.counts[index] += count
        else:  # re-bucket at the other histogram's upper bounds
            for bound, count in zip(other.bounds, other.counts):
                if count:
                    index = bisect_left(self.bounds, bound)
                    self.counts[index] += count
            self.counts[-1] += other.counts[-1]  # +Inf overflow
        self.count += other.count
        self.total += other.total
        if other.count:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)
        if other.bounds == self.bounds:
            for index, exemplar in other.exemplars.items():
                self.exemplars[index] = dict(exemplar)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HistogramStats":
        """Rebuild from a :meth:`to_dict` document (snapshot restore)."""
        stats = cls(data["bounds"])  # type: ignore[arg-type]
        counts = list(data.get("counts") or ())
        if len(counts) != len(stats.counts):
            raise ValueError("histogram counts do not match bounds")
        stats.counts = [int(c) for c in counts]
        stats.count = int(data.get("count", sum(stats.counts)))
        stats.total = float(data.get("sum", 0.0))
        if stats.count:
            stats.minimum = float(data.get("min", 0.0))
            stats.maximum = float(data.get("max", 0.0))
        for key, exemplar in (data.get("exemplars") or {}).items():
            if isinstance(exemplar, dict):
                try:
                    stats.exemplars[int(key)] = dict(exemplar)
                except (TypeError, ValueError):
                    continue
        return stats

    def cumulative(self) -> List[Tuple[str, int]]:
        """Prometheus-style cumulative ``(le, count)`` rows ending with
        ``+Inf``."""
        rows: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            rows.append((f"{bound:g}", running))
        rows.append(("+Inf", self.count))
        return rows

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
        }
        if self.exemplars:
            doc["exemplars"] = {
                str(index): dict(exemplar)
                for index, exemplar in self.exemplars.items()
            }
        return doc
