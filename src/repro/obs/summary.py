"""Human-readable phase-tree summaries of a recording.

Reconstructs span nesting from the completion records (children complete
before their parents, and carry their nesting depth) and renders an
indented tree with durations, self-times and call counts, followed by
the counter table.  This is what ``repro-sta ... --verbose`` prints.

Also renders the sampling profiler's phase x function self-time table
(:func:`profile_table` / :func:`render_profile_table`), the text
companion to the flamegraph exporters in :mod:`repro.obs.profile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.recorder import Recorder, SpanRecord


@dataclass
class _Node:
    record: Optional[SpanRecord]
    children: List["_Node"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        if self.record is not None:
            return self.record.duration
        return sum(child.duration for child in self.children)

    @property
    def self_time(self) -> float:
        return self.duration - sum(c.duration for c in self.children)


def build_phase_tree(recorder: Recorder) -> List[_Node]:
    """Root nodes of the span forest, in chronological order."""
    by_thread: Dict[int, List[SpanRecord]] = {}
    for record in recorder.spans:
        by_thread.setdefault(record.thread_id, []).append(record)
    roots: List[_Node] = []
    for records in by_thread.values():
        # Completion order: children precede parents.  Walk records and
        # attach pending deeper spans to the first shallower span seen.
        pending: List[_Node] = []
        for record in sorted(records, key=lambda r: r.index):
            node = _Node(record)
            children = [
                p for p in pending if p.record.depth == record.depth + 1
            ]
            if children:
                node.children = sorted(
                    children, key=lambda n: n.record.start
                )
                pending = [
                    p for p in pending if p.record.depth <= record.depth
                ]
            if record.depth == 0:
                roots.append(node)
            else:
                pending.append(node)
        # Orphans (parents dropped past max_spans) surface as roots.
        roots.extend(p for p in pending)
    return sorted(roots, key=lambda n: n.record.start)


def _render_node(
    node: _Node, lines: List[str], total: float, indent: int
) -> None:
    record = node.record
    share = 100.0 * node.duration / total if total > 0 else 0.0
    label = record.name if record is not None else "<dropped>"
    args = ""
    if record is not None and record.args:
        rendered = ", ".join(f"{k}={v}" for k, v in record.args)
        args = f"  [{rendered}]"
    lines.append(
        f"{'  ' * indent}{label:<{max(40 - 2 * indent, 8)}} "
        f"{node.duration * 1e3:>10.3f} ms "
        f"{share:>5.1f}%  self {node.self_time * 1e3:>9.3f} ms{args}"
    )
    for child in node.children:
        _render_node(child, lines, total, indent + 1)


def render_phase_tree(
    recorder: Recorder, include_counters: bool = True
) -> str:
    """The recording as an indented phase tree plus counters."""
    roots = build_phase_tree(recorder)
    total = sum(root.duration for root in roots)
    lines: List[str] = []
    header = (
        f"{'phase':<40} {'duration':>13} {'share':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for root in roots:
        _render_node(root, lines, total, 0)
    if not roots:
        lines.append("(no spans recorded)")
    if recorder.dropped_spans:
        lines.append(f"... {recorder.dropped_spans} span(s) dropped")
    if include_counters and recorder.counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(recorder.counters):
            lines.append(f"  {name:<44} {recorder.counters[name]:g}")
    if include_counters and recorder.gauges:
        lines.append("gauges:")
        for name in sorted(recorder.gauges):
            lines.append(f"  {name:<44} {recorder.gauges[name]:g}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# phase x function self-time table (profiler companion)
# ----------------------------------------------------------------------
def profile_table(
    doc: Dict[str, object], limit: int = 20
) -> List[Dict[str, object]]:
    """Top self-time rows of a ``repro.profile/1`` document.

    *Self time* in sampling terms: a function owns the samples in which
    it is the **leaf** frame.  Rows key on (innermost span, leaf
    function), aggregate across processes, and report the share against
    the document's total stack samples.
    """
    totals: Dict[Tuple[str, str], int] = {}
    grand = 0
    for row in doc.get("stacks") or ():
        if not isinstance(row, dict):
            continue
        frames = row.get("frames") or ()
        count = int(row.get("count") or 0)
        if not frames or not count:
            continue
        span_path = str(row.get("span", "(no span)"))
        phase = span_path.rsplit(";", 1)[-1]
        leaf = str(frames[-1])
        totals[(phase, leaf)] = totals.get((phase, leaf), 0) + count
        grand += count
    rows = [
        {
            "phase": phase,
            "function": leaf,
            "samples": count,
            "share": round(count / grand, 4) if grand else 0.0,
        }
        for (phase, leaf), count in sorted(
            totals.items(), key=lambda item: (-item[1], item[0])
        )
    ]
    return rows[:limit] if limit else rows


def render_profile_table(doc: Dict[str, object], limit: int = 20) -> str:
    """The phase x function self-time table as aligned text."""
    rows = profile_table(doc, limit=limit)
    samples = int(doc.get("samples") or 0)
    attributed = int(doc.get("attributed") or 0)
    header = (
        f"profile: {samples} samples @ {doc.get('hz', '?')} Hz over "
        f"{float(doc.get('duration_s') or 0.0):.3f}s | attributed "
        f"{attributed}/{samples}"
        + (f" ({attributed / samples:.0%})" if samples else "")
    )
    lines = [header]
    title = (
        f"{'phase':<30} {'self function':<44} {'samples':>8} {'share':>6}"
    )
    lines.append(title)
    lines.append("-" * len(title))
    for row in rows:
        lines.append(
            f"{str(row['phase'])[:30]:<30} "
            f"{str(row['function'])[:44]:<44} "
            f"{row['samples']:>8} {row['share']:>6.1%}"
        )
    if not rows:
        lines.append("(no samples)")
    return "\n".join(lines)
