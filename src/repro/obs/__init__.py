"""``repro.obs`` -- zero-dependency instrumentation for the analysis
pipeline.

* :mod:`repro.obs.recorder` -- :class:`Recorder`, :class:`Span`,
  counters/gauges/events and the process-wide enable switch,
* :mod:`repro.obs.chrome_trace` -- ``chrome://tracing`` / Perfetto
  trace-event JSON export,
* :mod:`repro.obs.metrics` -- flat metrics JSON and Prometheus text,
* :mod:`repro.obs.summary` -- human-readable phase trees
  (``repro-sta ... --verbose``) and the profiler self-time table,
* :mod:`repro.obs.profile` -- span-attributed sampling profiler with
  collapsed-stack / speedscope exporters (``repro.profile/1``),
* :mod:`repro.obs.tsdb` -- ring-buffer metrics history served by the
  daemon (``repro.metrics.history/1``),
* :mod:`repro.obs.alerts` -- declarative alert rules evaluated against
  the metrics history (``repro.alerts/1``),
* :mod:`repro.obs.flight` -- flight recorder ring, structured error /
  crash reports and the stall watchdog (``repro.flight/1``,
  ``repro.error/1``, ``repro.crash/1``),
* :mod:`repro.obs.tracestore` -- tail-sampled on-disk trace ring
  (``repro.tracedoc/1``) whose kept ids surface as exemplars in the
  Prometheus latency histograms,
* :mod:`repro.obs.fleet` -- pure fleet-level aggregation of per-daemon
  telemetry (``repro.fleet/1``, ``repro.fleetdoctor/1``) behind
  ``repro-sta fleet`` / ``doctor --fleet`` and the collector.

Recording is **disabled by default**: every instrumentation site in the
analysis pipeline degrades to a single global read (see
``docs/observability.md`` for the overhead notes and the metric name
catalogue).  Enable it around any workload with::

    from repro import obs

    with obs.recording() as rec:
        Hummingbird(network, schedule).analyze()
    obs.write_chrome_trace(rec, "out.trace.json")
    print(obs.render_phase_tree(rec))
"""

from repro.obs import live
from repro.obs.accesslog import ACCESS_LOG_SCHEMA, AccessLog
from repro.obs.chrome_trace import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    WELL_KNOWN_COUNTERS,
    metrics_dict,
    render_prometheus,
    write_metrics_json,
)
from repro.obs.hist import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    HistogramStats,
    bucket_counts,
    equal_width_edges,
    quantile_from_counts,
)
from repro.obs.profile import (
    PROFILE_SCHEMA,
    SamplingProfiler,
    merge_profiles,
    to_collapsed,
    to_speedscope,
    write_speedscope,
)
from repro.obs.recorder import (
    NULL_SPAN,
    EventRecord,
    FlowRecord,
    Recorder,
    Span,
    SpanRecord,
    SpanStats,
    active,
    bind_recorder,
    bound,
    counter,
    event,
    gauge,
    histogram,
    recording,
    set_recorder,
    span,
)
from repro.obs.summary import (
    build_phase_tree,
    profile_table,
    render_phase_tree,
    render_profile_table,
)
from repro.obs.tsdb import HISTORY_SCHEMA, MetricsHistory, resolve_metric
from repro.obs.alerts import (
    ALERTS_SCHEMA,
    AlertEngine,
    AlertRule,
    DEFAULT_RULES,
    load_rules,
)
from repro.obs.flight import (
    CRASH_SCHEMA,
    ERROR_SCHEMA,
    FLIGHT_SCHEMA,
    CrashHandler,
    FlightRecorder,
    StallWatchdog,
    error_document,
    exception_frames,
    thread_stacks,
)
from repro.obs.tracestore import (
    TRACE_DOC_SCHEMA,
    TailSampler,
    TraceStore,
)
from repro.obs.fleet import (
    FLEET_DOCTOR_SCHEMA,
    FLEET_SCHEMA,
    build_fleet_doc,
    build_fleet_doctor,
    fleet_doctor_exit_code,
    load_peers,
    render_fleet,
    render_fleet_doctor,
)

__all__ = [
    "Recorder",
    "Span",
    "SpanRecord",
    "SpanStats",
    "EventRecord",
    "FlowRecord",
    "HistogramStats",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "bucket_counts",
    "equal_width_edges",
    "quantile_from_counts",
    "live",
    "AccessLog",
    "ACCESS_LOG_SCHEMA",
    "NULL_SPAN",
    "active",
    "bind_recorder",
    "bound",
    "set_recorder",
    "recording",
    "span",
    "counter",
    "gauge",
    "event",
    "histogram",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "metrics_dict",
    "write_metrics_json",
    "render_prometheus",
    "WELL_KNOWN_COUNTERS",
    "build_phase_tree",
    "render_phase_tree",
    "PROFILE_SCHEMA",
    "SamplingProfiler",
    "merge_profiles",
    "to_collapsed",
    "to_speedscope",
    "write_speedscope",
    "profile_table",
    "render_profile_table",
    "HISTORY_SCHEMA",
    "MetricsHistory",
    "resolve_metric",
    "ALERTS_SCHEMA",
    "AlertEngine",
    "AlertRule",
    "DEFAULT_RULES",
    "load_rules",
    "ERROR_SCHEMA",
    "FLIGHT_SCHEMA",
    "CRASH_SCHEMA",
    "FlightRecorder",
    "CrashHandler",
    "StallWatchdog",
    "error_document",
    "exception_frames",
    "thread_stacks",
    "TRACE_DOC_SCHEMA",
    "TailSampler",
    "TraceStore",
    "FLEET_SCHEMA",
    "FLEET_DOCTOR_SCHEMA",
    "build_fleet_doc",
    "build_fleet_doctor",
    "fleet_doctor_exit_code",
    "load_peers",
    "render_fleet",
    "render_fleet_doctor",
]
