"""In-process ring-buffer metrics history (``repro.metrics.history/1``).

The daemon's ``/metrics`` endpoint and ``metrics`` op expose *current*
counter and histogram values; anything trending -- request rate ramping,
cache hit rate decaying after an edit storm, p95 creeping -- is
invisible unless the operator polls and diffs by hand.
:class:`MetricsHistory` closes that gap with the smallest thing that
works: a fixed-capacity :class:`collections.deque` of periodic
snapshots taken from a live :class:`~repro.obs.recorder.Recorder`,
readable as JSON for the ``history`` daemon op, the
``GET /metrics/history`` sidecar endpoint, and the sparkline columns in
``repro-sta top``.

Each snapshot point is flat and small on purpose::

    {"ts": 1754650000.0,
     "counters": {"service.daemon.requests": 41, ...},
     "gauges": {"service.daemon.in_flight": 0, ...},
     "histograms": {"service.daemon.request_seconds":
                    {"count": 41, "p50": 0.004, "p95": 0.021}, ...}}

Full bucket vectors stay out of the ring so a day of 5-second cadence
(17k points) is still only a few MB.  Use :meth:`MetricsHistory.start`
for the self-driving background thread (the daemon does), or call
:meth:`record` from an existing loop.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.obs.recorder import Recorder

__all__ = ["HISTORY_SCHEMA", "MetricsHistory", "resolve_metric"]

#: Schema identifier of a serialised history document.
HISTORY_SCHEMA = "repro.metrics.history/1"


def resolve_metric(point: Dict[str, object], name: str) -> Optional[float]:
    """Resolve a metric name against one snapshot point.

    Counters win over gauges; ``<histogram>.p50`` / ``.p95`` /
    ``.count`` reach into histogram rows.  Returns ``None`` when the
    point has no such metric -- the distinction between "absent" and
    "0.0" matters to absence alert rules, which is why this lives here
    rather than inside :meth:`MetricsHistory.series` (that keeps its
    0.0-fill contract so series always align with points).
    """
    counters = point.get("counters") or {}
    if name in counters:
        return float(counters[name])
    gauges = point.get("gauges") or {}
    if name in gauges:
        return float(gauges[name])
    base, dot, field = name.rpartition(".")
    if dot:
        histograms = point.get("histograms") or {}
        row = histograms.get(base)
        if row is not None and field in row:
            return float(row[field])
    return None


class MetricsHistory:
    """Fixed-capacity ring buffer of periodic metrics snapshots.

    Parameters
    ----------
    capacity:
        Points retained (oldest evicted first, default 720 -- one hour
        at the default 5-second cadence).
    interval_s:
        Snapshot cadence of the background thread (default 5.0); also
        recorded in the exported document so consumers can label the
        x-axis.
    """

    def __init__(self, capacity: int = 720, interval_s: float = 5.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.capacity = int(capacity)
        self.interval_s = float(interval_s)
        self._points: Deque[Dict[str, object]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.snapshots = 0
        # Monotonic-anchored timestamps: wall clock sampled once at
        # construction, advanced by the monotonic clock.  A wall-clock
        # step (NTP slew, operator date change) between two points would
        # corrupt every rate delta computed from ``ts`` -- ``top``
        # sparklines and burn-rate alert rules divide by ts deltas.
        self._epoch_wall = time.time()
        self._epoch_mono = time.monotonic()

    def _now(self) -> float:
        """Wall-clock-looking timestamp immune to wall-clock steps."""
        return self._epoch_wall + (time.monotonic() - self._epoch_mono)

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, recorder: Recorder) -> Dict[str, object]:
        """Append one snapshot point taken from ``recorder``.

        Counter/gauge dicts and histogram quantiles are copied under
        the recorder's lock, so a point is internally consistent even
        while worker threads keep writing.
        """
        with recorder._lock:
            counters = dict(recorder.counters)
            gauges = dict(recorder.gauges)
            histograms = {
                name: {
                    "count": stats.count,
                    "p50": round(stats.quantile(0.5), 6),
                    "p95": round(stats.quantile(0.95), 6),
                }
                for name, stats in recorder.histograms.items()
            }
        point: Dict[str, object] = {
            "ts": self._now(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        with self._lock:
            self._points.append(point)
            self.snapshots += 1
        return point

    # ------------------------------------------------------------------
    # background thread
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(
        self,
        recorder: Recorder,
        before_point: Optional[Callable[[], None]] = None,
        on_point: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> "MetricsHistory":
        """Snapshot ``recorder`` every ``interval_s`` until :meth:`stop`.

        One boot point is recorded immediately so readers see a
        non-empty history without waiting out the first interval.
        ``before_point`` runs just before each snapshot (the daemon
        syncs its derived gauges there so every point carries them) and
        ``on_point`` receives each freshly recorded point (the alert
        engine evaluates there, giving alerting the same cadence as the
        history it reads).  Both hooks are best-effort: an exception
        skips the hook, never the snapshot loop.
        """
        if self._thread is not None:
            raise RuntimeError("history thread already started")
        self._stop.clear()

        def _tick() -> None:
            if before_point is not None:
                try:
                    before_point()
                except Exception:  # pragma: no cover -- never kill host
                    pass
            try:
                point = self.record(recorder)
            except Exception:  # pragma: no cover -- never kill host
                return
            if on_point is not None:
                try:
                    on_point(point)
                except Exception:  # pragma: no cover -- never kill host
                    pass

        def _run() -> None:
            _tick()
            while not self._stop.wait(self.interval_s):
                _tick()

        self._thread = threading.Thread(
            target=_run, name="repro-tsdb", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def points(self, last: Optional[int] = None) -> List[Dict[str, object]]:
        """The most recent ``last`` points, oldest first (all if None)."""
        with self._lock:
            points = list(self._points)
        if last is not None and last >= 0:
            points = points[-last:] if last else []
        return points

    def series(
        self, name: str, last: Optional[int] = None
    ) -> List[float]:
        """One metric's values over time, oldest first.

        ``name`` resolves against counters first, then gauges; for a
        histogram use ``<name>.p50`` / ``<name>.p95`` / ``<name>.count``.
        Points that lack the metric contribute ``0.0`` so the series
        always aligns with :meth:`points`.
        """
        values: List[float] = []
        for point in self.points(last):
            value = resolve_metric(point, name)
            values.append(0.0 if value is None else value)
        return values

    def to_dict(self, last: Optional[int] = None) -> Dict[str, object]:
        """The ``repro.metrics.history/1`` document."""
        points = self.points(last)
        return {
            "schema": HISTORY_SCHEMA,
            "interval_s": self.interval_s,
            "capacity": self.capacity,
            "snapshots": self.snapshots,
            "points": points,
        }
