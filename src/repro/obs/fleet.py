"""Fleet-level aggregation of per-daemon observability documents.

PR 8 made the service multi-host; this module makes the *telemetry*
multi-host.  Everything here is **pure**: the HTTP scraping lives in
:mod:`repro.service.collector`, and these functions turn the scraped
per-peer documents (``/healthz``, ``/metrics/history``, ``/alertz``,
``/fabricz``) into:

* a **fleet document** (schema ``repro.fleet/1``) -- one row per peer
  with its up/down/degraded state, request rate, latency quantiles,
  cache/fabric hit rates and firing alerts, plus a fleet summary --
  served on ``GET /fleetz`` and rendered by ``repro-sta fleet``;
* a **fleet doctor document** (schema ``repro.fleetdoctor/1``) --
  every peer's triage verdict aggregated into one exit code
  (``repro-sta doctor --fleet``).

Degradation contract (satellite requirement): a peer that times out,
returns malformed JSON or vanishes mid-scrape is marked ``down`` with
its error string; the other peers' rows are unaffected, and nothing in
here raises into the collector loop.

Peer state ladder:

* ``up`` -- scrape succeeded, no alerts firing;
* ``degraded`` -- scrape succeeded but the peer reports firing alerts
  (or its alert engine is unreachable while health is fine);
* ``down`` -- the scrape itself failed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = [
    "FLEET_SCHEMA",
    "FLEET_DOCTOR_SCHEMA",
    "load_peers",
    "peer_row",
    "build_fleet_doc",
    "render_fleet",
    "build_fleet_doctor",
    "fleet_doctor_exit_code",
    "render_fleet_doctor",
]

#: Schema of the aggregated fleet view (``GET /fleetz``).
FLEET_SCHEMA = "repro.fleet/1"
#: Schema of the aggregated triage document (``doctor --fleet``).
FLEET_DOCTOR_SCHEMA = "repro.fleetdoctor/1"

#: Counter whose per-point deltas give the request rate.
_REQUESTS = "service.daemon.requests"
#: Histogram whose quantiles feed the latency columns.
_LATENCY = "service.daemon.request_seconds"


def load_peers(path: Union[str, Path]) -> List[str]:
    """Parse a peers file into a normalised, deduplicated URL list.

    Two formats are accepted (the fabric and the collector share this
    parser, so one ``--peers-file`` drives both):

    * plain text -- one base URL per line, ``#`` comments and blank
      lines ignored;
    * JSON -- either a bare list of URLs or ``{"peers": [...]}``.

    URLs are normalised (surrounding whitespace and trailing ``/``
    stripped) and deduplicated preserving first-seen order, matching
    :class:`repro.service.fabric.ShardRouter`'s normalisation so the
    two views of the peer set cannot drift.
    """
    text = Path(path).read_text()
    stripped = text.lstrip()
    raw: Sequence[object]
    if stripped.startswith(("[", "{")):
        parsed = json.loads(text)
        if isinstance(parsed, dict):
            parsed = parsed.get("peers") or []
        if not isinstance(parsed, list):
            raise ValueError(
                "JSON peers file must be a list or {'peers': [...]}"
            )
        raw = parsed
    else:
        raw = [
            line.partition("#")[0]
            for line in text.splitlines()
        ]
    peers: List[str] = []
    seen = set()
    for entry in raw:
        url = str(entry).strip().rstrip("/")
        if url and url not in seen:
            seen.add(url)
            peers.append(url)
    return peers


def _rate_from_history(
    history: Optional[Dict[str, object]]
) -> float:
    """Requests/s from the two newest history points (rebased on
    counter resets -- a restarted peer reports its count-since-restart
    over the window instead of a clamped zero)."""
    points = (history or {}).get("points") or []
    if len(points) < 2:
        return 0.0
    earlier, later = points[-2], points[-1]
    try:
        dt = float(later["ts"]) - float(earlier["ts"])
        now = float((later.get("counters") or {}).get(_REQUESTS, 0.0))
        before = float((earlier.get("counters") or {}).get(_REQUESTS, 0.0))
    except (KeyError, TypeError, ValueError):
        return 0.0
    if dt <= 0.0:
        return 0.0
    delta = now - before
    if delta < 0.0:
        delta = now
    return delta / dt


def _latency_from_history(
    history: Optional[Dict[str, object]]
) -> Dict[str, float]:
    points = (history or {}).get("points") or []
    if not points:
        return {"p50_s": 0.0, "p95_s": 0.0, "count": 0}
    row = ((points[-1].get("histograms") or {}).get(_LATENCY)) or {}
    try:
        return {
            "p50_s": float(row.get("p50", 0.0)),
            "p95_s": float(row.get("p95", 0.0)),
            "count": int(row.get("count", 0)),
        }
    except (TypeError, ValueError):
        return {"p50_s": 0.0, "p95_s": 0.0, "count": 0}


def _last_point(
    history: Optional[Dict[str, object]]
) -> Dict[str, object]:
    points = (history or {}).get("points") or []
    return points[-1] if points else {}


def _cache_hit_rate(point: Dict[str, object]) -> Optional[float]:
    counters = point.get("counters") or {}
    try:
        hits = float(counters.get("service.cache.hits", 0.0))
        misses = float(counters.get("service.cache.misses", 0.0))
    except (TypeError, ValueError):
        return None
    total = hits + misses
    return hits / total if total > 0 else None


def _firing_names(alertz: Optional[Dict[str, object]]) -> List[str]:
    if not alertz or not alertz.get("ok", True):
        return []
    return [
        str(row.get("name", "?"))
        for row in alertz.get("alerts") or []
        if isinstance(row, dict) and row.get("state") == "firing"
    ]


def peer_row(
    url: str, scrape: Dict[str, object]
) -> Dict[str, object]:
    """One ``repro.fleet/1`` peer row from a scrape result.

    ``scrape`` is what :func:`repro.service.collector.scrape_peer`
    returns: ``{"ok", "error", "healthz", "history", "alertz",
    "fabricz"}`` with failed sub-documents ``None``.
    """
    if not scrape.get("ok"):
        return {
            "url": url,
            "state": "down",
            "error": scrape.get("error") or "unreachable",
        }
    healthz = scrape.get("healthz") or {}
    history = scrape.get("history")
    fabricz = scrape.get("fabricz")
    firing = _firing_names(scrape.get("alertz"))
    point = _last_point(history)
    row: Dict[str, object] = {
        "url": url,
        "state": "degraded" if firing else "up",
        "error": None,
        "pid": healthz.get("pid"),
        "uptime_s": healthz.get("uptime_s"),
        "requests": healthz.get("requests"),
        "errors": healthz.get("errors"),
        "in_flight": healthz.get("in_flight"),
        "designs": healthz.get("designs_loaded"),
        "rate_rps": round(_rate_from_history(history), 3),
        "latency": _latency_from_history(history),
        "cache_hit_rate": _cache_hit_rate(point),
        "alerts_firing": firing,
    }
    if isinstance(fabricz, dict):
        gauges = point.get("gauges") or {}
        row["fabric"] = {
            "hit_rate": gauges.get("service.fabric.remote_hit_rate"),
            "peers": gauges.get("service.fabric.peers"),
            "down": gauges.get("service.fabric.degraded"),
        }
    return row


def build_fleet_doc(
    scrapes: Dict[str, Dict[str, object]],
    ts: Optional[float] = None,
) -> Dict[str, object]:
    """The ``repro.fleet/1`` document for one scrape sweep.

    ``scrapes`` maps peer URL -> scrape result (insertion order is the
    peers-file order and is preserved in the rows).
    """
    rows = [peer_row(url, scrape) for url, scrape in scrapes.items()]
    states = [str(row.get("state")) for row in rows]
    return {
        "schema": FLEET_SCHEMA,
        "ts": ts if ts is not None else time.time(),
        "peers": rows,
        "summary": {
            "peers": len(rows),
            "up": states.count("up"),
            "degraded": states.count("degraded"),
            "down": states.count("down"),
            "rate_rps": round(
                sum(float(row.get("rate_rps") or 0.0) for row in rows), 3
            ),
            "alerts_firing": sum(
                len(row.get("alerts_firing") or ()) for row in rows
            ),
        },
    }


def _fmt_ms(value: object) -> str:
    try:
        return f"{float(value) * 1000.0:7.1f}"
    except (TypeError, ValueError):
        return f"{'-':>7}"


def _fmt_pct(value: object) -> str:
    try:
        return f"{float(value):6.1%}"
    except (TypeError, ValueError):
        return f"{'-':>6}"


_STATE_MARK = {"up": "  ", "degraded": "!!", "down": "??"}


def render_fleet(doc: Dict[str, object], width: int = 100) -> str:
    """Render one fleet document as a multi-peer dashboard (pure)."""
    summary = doc.get("summary") or {}
    lines: List[str] = []
    lines.append(
        f"repro fleet | {summary.get('peers', 0)} peers: "
        f"{summary.get('up', 0)} up, "
        f"{summary.get('degraded', 0)} degraded, "
        f"{summary.get('down', 0)} down | "
        f"{float(summary.get('rate_rps') or 0.0):.1f} req/s total | "
        f"{summary.get('alerts_firing', 0)} alerts firing"
    )
    lines.append("-" * width)
    lines.append(
        f"   {'PEER':<28}{'STATE':<10}{'REQ/S':>7}{'P50ms':>8}"
        f"{'P95ms':>8}{'CACHE':>7}{'FABRIC':>7}  ALERTS"
    )
    for row in doc.get("peers") or []:
        state = str(row.get("state", "?"))
        mark = _STATE_MARK.get(state, "  ")
        if state == "down":
            lines.append(
                f"{mark} {str(row.get('url', '?')):<28}{state:<10}"
                f"{'-':>7}{'-':>8}{'-':>8}{'-':>7}{'-':>7}  "
                f"({row.get('error') or 'unreachable'})"[:width]
            )
            continue
        latency = row.get("latency") or {}
        fabric = row.get("fabric") or {}
        firing = row.get("alerts_firing") or []
        lines.append(
            f"{mark} {str(row.get('url', '?')):<28}{state:<10}"
            f"{float(row.get('rate_rps') or 0.0):7.1f}"
            f"{_fmt_ms(latency.get('p50_s'))}"
            f"{_fmt_ms(latency.get('p95_s'))}"
            f"{_fmt_pct(row.get('cache_hit_rate'))}"
            f"{_fmt_pct(fabric.get('hit_rate'))}  "
            f"{', '.join(firing) if firing else '-'}"[:width]
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# fleet doctor
# ----------------------------------------------------------------------
def _peer_verdict(scrape: Dict[str, object]) -> Dict[str, object]:
    """Per-peer triage: exit-code contribution + human reasons."""
    if not scrape.get("ok"):
        return {
            "code": 1,
            "reasons": [f"down: {scrape.get('error') or 'unreachable'}"],
        }
    reasons: List[str] = []
    code = 0
    crashz = scrape.get("crashz") or {}
    if isinstance(crashz.get("crash"), dict):
        crash = crashz["crash"]
        error = crash.get("error") or {}
        reasons.append(
            f"crash report on disk: {crash.get('kind', '?')} "
            f"[{error.get('error_type', '?')}]"
        )
        code = 2
    firing = _firing_names(scrape.get("alertz"))
    if firing:
        reasons.append(f"alerts firing: {', '.join(firing)}")
        code = max(code, 1)
    return {"code": code, "reasons": reasons}


def build_fleet_doctor(
    scrapes: Dict[str, Dict[str, object]],
    ts: Optional[float] = None,
) -> Dict[str, object]:
    """The ``repro.fleetdoctor/1`` document: per-peer verdicts + the
    fleet-wide exit code (the worst peer wins; a down peer is at least
    exit 1)."""
    peers = []
    worst = 0
    for url, scrape in scrapes.items():
        verdict = _peer_verdict(scrape)
        worst = max(worst, int(verdict["code"]))
        healthz = scrape.get("healthz") or {}
        peers.append(
            {
                "url": url,
                "state": (
                    "down"
                    if not scrape.get("ok")
                    else ("degraded" if verdict["code"] else "up")
                ),
                "code": verdict["code"],
                "reasons": verdict["reasons"],
                "pid": healthz.get("pid"),
                "uptime_s": healthz.get("uptime_s"),
            }
        )
    return {
        "schema": FLEET_DOCTOR_SCHEMA,
        "ts": ts if ts is not None else time.time(),
        "peers": peers,
        "exit_code": worst,
    }


def fleet_doctor_exit_code(doc: Dict[str, object]) -> int:
    try:
        return int(doc.get("exit_code", 0))
    except (TypeError, ValueError):
        return 1


_VERDICTS = {
    0: "verdict: HEALTHY (exit 0)",
    1: "verdict: DEGRADED (exit 1)",
    2: "verdict: CRASHED (exit 2)",
}


def render_fleet_doctor(doc: Dict[str, object], width: int = 80) -> str:
    """Render one fleet doctor document as triage text (pure)."""
    code = fleet_doctor_exit_code(doc)
    peers = doc.get("peers") or []
    lines = [
        f"repro fleet doctor | {len(peers)} peers",
        _VERDICTS.get(code, _VERDICTS[1]),
        "-" * width,
    ]
    for row in peers:
        state = str(row.get("state", "?"))
        mark = _STATE_MARK.get(state, "  ")
        head = (
            f"{mark} {str(row.get('url', '?')):<28}{state:<10}"
            f"exit {row.get('code', '?')}"
        )
        lines.append(head)
        for reason in row.get("reasons") or []:
            lines.append(f"     - {reason}"[:width])
    return "\n".join(lines)
