"""Declarative alerting over the metrics-history ring (``repro.alerts/1``).

The daemon's :class:`~repro.obs.tsdb.MetricsHistory` already keeps a
trend of every counter, gauge and histogram quantile; this module adds
the judgment layer: a small set of declarative :class:`AlertRule`\\ s
evaluated in-process on every history snapshot, with Prometheus-style
``pending -> firing -> resolved`` state transitions.  No external
alertmanager, no network -- a fired alert is just a row in the
``repro.alerts/1`` document, visible on ``GET /alertz``, in the
``alerts`` daemon op, as a banner in ``repro-sta top`` and in crash
reports.

Rule kinds:

``threshold``
    Compare the latest value of one metric (counter, gauge or
    ``<hist>.p50/.p95/.count``) against a bound, e.g.
    ``service.daemon.handle_seconds.p95 > 0.5 for 30s``.  The breach
    must persist ``for_s`` seconds before the alert fires (0 fires on
    the first breach).
``absence``
    Fire when the metric is *missing* from the latest snapshot for
    ``for_s`` seconds -- a dead telemetry pipeline looks exactly like a
    healthy silent one unless something checks for presence.
``burn_rate``
    Ratio of counter *increments* over a trailing ``window_s`` window:
    ``sum(delta(numerator)) / sum(delta(denominator)) > threshold``.
    Deltas clamp at zero per series so a counter reset (daemon
    restart) never produces a negative or spuriously huge burn.
    ``denominator`` may list several series (summed), which is how
    hit-rate collapse is phrased: ``misses / (hits + misses)``.
``event``
    Fired and resolved imperatively via :meth:`AlertEngine.fire` /
    :meth:`AlertEngine.clear` -- the stall watchdog drives
    ``daemon.stalled`` this way.

Rules load from TOML (Python >= 3.11, :mod:`tomllib`) or JSON files
(``repro.alertrules/1``) via :func:`load_rules`; by default file rules
*extend* :data:`DEFAULT_RULES` unless the file sets
``replace_defaults = true``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.tsdb import MetricsHistory, resolve_metric

__all__ = [
    "ALERTS_SCHEMA",
    "RULES_SCHEMA",
    "AlertRule",
    "AlertEngine",
    "DEFAULT_RULES",
    "load_rules",
]

#: Schema of an exported alert-state document.
ALERTS_SCHEMA = "repro.alerts/1"
#: Schema of a JSON rule file.
RULES_SCHEMA = "repro.alertrules/1"

_KINDS = ("threshold", "absence", "burn_rate", "event")
_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}
_SEVERITIES = ("info", "warning", "critical")
#: Sort weight: critical alerts first.
_SEVERITY_RANK = {"critical": 0, "warning": 1, "info": 2}
_STATE_RANK = {"firing": 0, "pending": 1, "resolved": 2, "ok": 3}


@dataclass(frozen=True)
class AlertRule:
    """One declarative alerting rule (see module docstring for kinds)."""

    name: str
    kind: str = "threshold"
    metric: Optional[str] = None
    op: str = ">"
    threshold: float = 0.0
    for_s: float = 0.0
    window_s: float = 60.0
    numerator: Tuple[str, ...] = ()
    denominator: Tuple[str, ...] = ()
    min_denominator: float = 1.0
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("rule needs a name")
        if self.kind not in _KINDS:
            raise ValueError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(_KINDS)})"
            )
        if self.op not in _OPS:
            raise ValueError(
                f"rule {self.name!r}: unknown op {self.op!r} "
                f"(expected one of {', '.join(_OPS)})"
            )
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"rule {self.name!r}: unknown severity {self.severity!r} "
                f"(expected one of {', '.join(_SEVERITIES)})"
            )
        if self.kind in ("threshold", "absence") and not self.metric:
            raise ValueError(f"rule {self.name!r}: kind {self.kind} needs a metric")
        if self.kind == "burn_rate":
            if not self.numerator or not self.denominator:
                raise ValueError(
                    f"rule {self.name!r}: burn_rate needs numerator "
                    "and denominator series"
                )
            if self.window_s <= 0:
                raise ValueError(f"rule {self.name!r}: window_s must be > 0")
        if self.for_s < 0:
            raise ValueError(f"rule {self.name!r}: for_s must be >= 0")
        # Normalise str -> 1-tuple so rule files can write either form.
        for attr in ("numerator", "denominator"):
            value = getattr(self, attr)
            if isinstance(value, str):
                object.__setattr__(self, attr, (value,))
            else:
                object.__setattr__(self, attr, tuple(value))

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "AlertRule":
        """Build a rule from a parsed file entry; typos are errors."""
        if not isinstance(raw, dict):
            raise ValueError(f"rule entry must be a table/object, got {raw!r}")
        known = {f.name for f in dataclass_fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ValueError(
                f"rule {raw.get('name', '?')!r}: unknown keys {unknown} "
                f"(known: {sorted(known)})"
            )
        return cls(**raw)  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "severity": self.severity,
        }
        if self.kind in ("threshold", "absence"):
            doc["metric"] = self.metric
        if self.kind == "threshold":
            doc["op"] = self.op
        if self.kind in ("threshold", "burn_rate"):
            doc["threshold"] = self.threshold
        if self.kind == "burn_rate":
            doc["numerator"] = list(self.numerator)
            doc["denominator"] = list(self.denominator)
            doc["window_s"] = self.window_s
            doc["min_denominator"] = self.min_denominator
        if self.for_s:
            doc["for_s"] = self.for_s
        if self.description:
            doc["description"] = self.description
        return doc


#: Built-in rules every daemon evaluates unless a rule file replaces
#: them.  Metric names match ``docs/observability.md``.
DEFAULT_RULES: Tuple[AlertRule, ...] = (
    AlertRule(
        name="daemon.handle_p95_high",
        kind="threshold",
        metric="service.daemon.handle_seconds.p95",
        op=">",
        threshold=0.5,
        for_s=30.0,
        severity="warning",
        description="request handler p95 above 500 ms for 30s",
    ),
    AlertRule(
        name="daemon.error_burn",
        kind="burn_rate",
        numerator=("service.daemon.errors",),
        denominator=("service.daemon.requests",),
        threshold=0.1,
        window_s=60.0,
        min_denominator=5.0,
        severity="critical",
        description="more than 10% of requests errored over the last minute",
    ),
    AlertRule(
        name="cache.hit_rate_collapse",
        kind="burn_rate",
        numerator=("service.cache.misses",),
        denominator=("service.cache.hits", "service.cache.misses"),
        threshold=0.5,
        window_s=120.0,
        min_denominator=10.0,
        severity="warning",
        description="result-cache hit rate below 50% over the last 2 minutes",
    ),
    AlertRule(
        name="profiler.dropped_ticks",
        kind="burn_rate",
        numerator=("service.daemon.profiler_dropped_ticks",),
        denominator=("service.daemon.profiler_samples",),
        threshold=0.25,
        window_s=60.0,
        min_denominator=20.0,
        severity="info",
        description="profiler dropping >25% of its ticks (sampling overload)",
    ),
    AlertRule(
        name="telemetry.no_heartbeat",
        kind="absence",
        metric="service.daemon.uptime_seconds",
        for_s=120.0,
        severity="warning",
        description="daemon gauges absent from metrics history for 2 minutes",
    ),
    AlertRule(
        name="daemon.stalled",
        kind="event",
        severity="critical",
        description="a request exceeded the stall watchdog deadline",
    ),
    AlertRule(
        name="fabric.peer_down",
        kind="threshold",
        metric="service.fabric.degraded",
        op=">",
        threshold=0.0,
        for_s=0.0,
        severity="warning",
        description=(
            "one or more cache-fabric peers unreachable "
            "(degraded to local-only caching)"
        ),
    ),
)


class AlertEngine:
    """Evaluate rules against a :class:`MetricsHistory`; track state.

    Parameters
    ----------
    rules:
        The rule set (default :data:`DEFAULT_RULES`).  Duplicate names
        are rejected -- the last file rule would silently shadow a
        built-in otherwise.
    on_transition:
        Optional hook ``(rule, old_state, new_state, alert_row)``
        called on every state change (the daemon appends these to the
        flight ring and counts them).  Exceptions are swallowed.
    """

    def __init__(
        self,
        rules: Optional[Iterable[AlertRule]] = None,
        on_transition: Optional[
            Callable[[AlertRule, str, str, Dict[str, object]], None]
        ] = None,
    ) -> None:
        self.rules: Tuple[AlertRule, ...] = tuple(
            rules if rules is not None else DEFAULT_RULES
        )
        names = [rule.name for rule in self.rules]
        duplicates = sorted(
            {name for name in names if names.count(name) > 1}
        )
        if duplicates:
            raise ValueError(f"duplicate alert rule names: {duplicates}")
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._states: Dict[str, Dict[str, object]] = {
            rule.name: {
                "state": "ok",
                "since": None,
                "pending_since": None,
                "value": None,
                "message": "",
                "acked": False,
                "fired_ts": None,
                "resolved_ts": None,
                "transitions": 0,
            }
            for rule in self.rules
        }
        self.evaluations = 0

    def rule(self, name: str) -> Optional[AlertRule]:
        for rule in self.rules:
            if rule.name == name:
                return rule
        return None

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, history: MetricsHistory, now: Optional[float] = None
    ) -> List[Dict[str, object]]:
        """One evaluation pass; returns rows that changed state."""
        now = time.time() if now is None else now
        points = history.points()
        latest = points[-1] if points else None
        changed: List[Dict[str, object]] = []
        with self._lock:
            self.evaluations += 1
        for rule in self.rules:
            if rule.kind == "event":
                continue  # driven by fire()/clear()
            breached, value, message = self._judge(rule, points, latest, now)
            row = self._step(rule, breached, value, message, now)
            if row is not None:
                changed.append(row)
        return changed

    def _judge(
        self,
        rule: AlertRule,
        points: List[Dict[str, object]],
        latest: Optional[Dict[str, object]],
        now: float,
    ) -> Tuple[bool, Optional[float], str]:
        if rule.kind == "threshold":
            value = (
                resolve_metric(latest, rule.metric or "")
                if latest is not None
                else None
            )
            if value is None:
                return False, None, ""
            breached = _OPS[rule.op](value, rule.threshold)
            message = (
                f"{rule.metric} = {value:g} "
                f"({rule.op} {rule.threshold:g} breached)"
                if breached
                else ""
            )
            return breached, value, message
        if rule.kind == "absence":
            value = (
                resolve_metric(latest, rule.metric or "")
                if latest is not None
                else None
            )
            breached = value is None
            message = f"{rule.metric} absent from latest snapshot" if breached else ""
            return breached, value, message
        # burn_rate
        window = [p for p in points if p.get("ts", 0) >= now - rule.window_s]
        if len(window) < 2:
            return False, None, ""
        first, last = window[0], window[-1]
        num = sum(
            self._delta(first, last, name) for name in rule.numerator
        )
        den = sum(
            self._delta(first, last, name) for name in rule.denominator
        )
        if den < rule.min_denominator:
            return False, None, ""
        ratio = num / den if den else 0.0
        breached = _OPS[rule.op](ratio, rule.threshold)
        message = (
            f"{'+'.join(rule.numerator)} / {'+'.join(rule.denominator)} "
            f"= {ratio:.3f} over {rule.window_s:g}s "
            f"({rule.op} {rule.threshold:g} breached)"
            if breached
            else ""
        )
        return breached, round(ratio, 6), message

    @staticmethod
    def _delta(
        first: Dict[str, object], last: Dict[str, object], name: str
    ) -> float:
        """Counter increment across the window, clamped at zero.

        A restarted daemon resets counters; ``max(0, ...)`` makes the
        window contribute nothing instead of a negative burn.
        """
        a = resolve_metric(first, name)
        b = resolve_metric(last, name)
        if a is None or b is None:
            return 0.0
        return max(0.0, b - a)

    def _step(
        self,
        rule: AlertRule,
        breached: bool,
        value: Optional[float],
        message: str,
        now: float,
    ) -> Optional[Dict[str, object]]:
        """Advance one rule's state machine; returns the row if changed."""
        with self._lock:
            state = self._states[rule.name]
            old = state["state"]
            if breached:
                if old in ("ok", "resolved"):
                    state["pending_since"] = now
                    if rule.for_s > 0:
                        self._transition(rule, state, "pending", now)
                    else:
                        self._fire_locked(rule, state, now)
                elif old == "pending":
                    pending_since = state["pending_since"]
                    if pending_since is None:  # not `or`: ts 0.0 is real
                        pending_since = now
                    if now - pending_since >= rule.for_s:
                        self._fire_locked(rule, state, now)
                state["value"] = value
                if message:
                    state["message"] = message
            else:
                state["value"] = value
                if old == "pending":
                    state["pending_since"] = None
                    self._transition(rule, state, "ok", now)
                elif old == "firing":
                    state["pending_since"] = None
                    state["resolved_ts"] = now
                    state["acked"] = False
                    self._transition(rule, state, "resolved", now)
            new = state["state"]
            row = self._row(rule, state) if new != old else None
        if row is not None:
            self._notify(rule, old, new, row)
        return row

    def _fire_locked(
        self, rule: AlertRule, state: Dict[str, object], now: float
    ) -> None:
        state["fired_ts"] = now
        state["resolved_ts"] = None
        state["acked"] = False
        self._transition(rule, state, "firing", now)

    @staticmethod
    def _transition(
        rule: AlertRule, state: Dict[str, object], new: str, now: float
    ) -> None:
        state["state"] = new
        state["since"] = now
        state["transitions"] = int(state["transitions"]) + 1

    def _notify(
        self,
        rule: AlertRule,
        old: str,
        new: str,
        row: Dict[str, object],
    ) -> None:
        if self.on_transition is None:
            return
        try:
            self.on_transition(rule, old, new, row)
        except Exception:  # noqa: BLE001 -- hooks must not break eval
            pass

    # ------------------------------------------------------------------
    # event-kind rules (watchdog, tests)
    # ------------------------------------------------------------------
    def fire(
        self,
        name: str,
        message: str = "",
        value: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Optional[Dict[str, object]]:
        """Fire an ``event``-kind rule directly; returns the row if new."""
        rule = self.rule(name)
        if rule is None:
            return None
        now = time.time() if now is None else now
        with self._lock:
            state = self._states[name]
            old = state["state"]
            if message:
                state["message"] = message
            if value is not None:
                state["value"] = value
            if old == "firing":
                return None
            self._fire_locked(rule, state, now)
            row = self._row(rule, state)
        self._notify(rule, old, "firing", row)
        return row

    def clear(
        self, name: str, now: Optional[float] = None
    ) -> Optional[Dict[str, object]]:
        """Resolve an ``event``-kind rule; returns the row if it fired."""
        rule = self.rule(name)
        if rule is None:
            return None
        now = time.time() if now is None else now
        with self._lock:
            state = self._states[name]
            old = state["state"]
            if old != "firing":
                return None
            state["resolved_ts"] = now
            state["acked"] = False
            self._transition(rule, state, "resolved", now)
            row = self._row(rule, state)
        self._notify(rule, old, "resolved", row)
        return row

    def ack(self, name: str) -> bool:
        """Acknowledge a firing alert (banner demotes); False if not firing."""
        with self._lock:
            state = self._states.get(name)
            if state is None or state["state"] != "firing":
                return False
            state["acked"] = True
            return True

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _row(
        self, rule: AlertRule, state: Dict[str, object]
    ) -> Dict[str, object]:
        row: Dict[str, object] = {
            "name": rule.name,
            "kind": rule.kind,
            "severity": rule.severity,
            "description": rule.description,
            "state": state["state"],
            "since": state["since"],
            "value": state["value"],
            "message": state["message"],
            "acked": bool(state["acked"]),
            "fired_ts": state["fired_ts"],
            "resolved_ts": state["resolved_ts"],
            "transitions": state["transitions"],
        }
        if rule.kind in ("threshold", "burn_rate"):
            row["threshold"] = rule.threshold
        if rule.metric:
            row["metric"] = rule.metric
        return row

    def rows(self) -> List[Dict[str, object]]:
        """All alert rows, most urgent first (firing > pending > ...)."""
        with self._lock:
            rows = [
                self._row(rule, self._states[rule.name])
                for rule in self.rules
            ]
        rows.sort(
            key=lambda r: (
                _STATE_RANK.get(str(r["state"]), 9),
                _SEVERITY_RANK.get(str(r["severity"]), 9),
                str(r["name"]),
            )
        )
        return rows

    def active(self) -> List[Dict[str, object]]:
        """Only the firing rows."""
        return [row for row in self.rows() if row["state"] == "firing"]

    def firing_count(self) -> int:
        with self._lock:
            return sum(
                1
                for state in self._states.values()
                if state["state"] == "firing"
            )

    def to_dict(self) -> Dict[str, object]:
        """The ``repro.alerts/1`` document."""
        rows = self.rows()
        return {
            "schema": ALERTS_SCHEMA,
            "ts": time.time(),
            "evaluations": self.evaluations,
            "rules": len(self.rules),
            "firing": sum(1 for r in rows if r["state"] == "firing"),
            "alerts": rows,
        }


# ----------------------------------------------------------------------
# rule files
# ----------------------------------------------------------------------
def load_rules(
    path: Union[str, Path],
    defaults: Sequence[AlertRule] = DEFAULT_RULES,
) -> Tuple[AlertRule, ...]:
    """Load rules from a TOML or JSON file.

    The file's rules *extend* ``defaults`` unless it sets
    ``replace_defaults = true``; a file rule whose name matches a
    default *overrides* that default (so thresholds are tunable without
    replacing the whole set).  TOML needs Python >= 3.11
    (:mod:`tomllib`); JSON always works.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # Python 3.10: no tomllib
            raise ValueError(
                f"{path}: TOML rule files need Python >= 3.11 (tomllib); "
                "use the JSON form on this interpreter"
            ) from exc
        raw = tomllib.loads(path.read_text())
    else:
        raw = json.loads(path.read_text())
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: expected a JSON object at top level")
        schema = raw.get("schema")
        if schema is not None and schema != RULES_SCHEMA:
            raise ValueError(
                f"{path}: schema {schema!r} is not {RULES_SCHEMA!r}"
            )
    entries = raw.get("rules")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: missing [[rules]] entries / 'rules' list")
    file_rules = [AlertRule.from_dict(entry) for entry in entries]
    if raw.get("replace_defaults"):
        return tuple(file_rules)
    by_name = {rule.name: rule for rule in defaults}
    for rule in file_rules:
        by_name[rule.name] = rule
    return tuple(by_name.values())
