"""Flight recorder, crash forensics and stall watchdog.

``repro-sta top`` shows the *present*; :mod:`repro.obs.tsdb` keeps a
numeric *past*; but when a daemon request blows up (or never returns)
the numbers alone cannot answer "what was the process doing just
before?".  This module closes that gap with three cooperating pieces,
all standard library:

* :class:`FlightRecorder` -- a bounded, always-on ring of recent
  request summaries, completed root spans, log lines and exception
  events per process.  Appends are one deque op under a lock held for
  nanoseconds, so the ring can stay on in the hot path
  (``repro.flight/1`` export).
* ``repro.error/1`` / ``repro.crash/1`` builders --
  :func:`exception_frames` turns an exception's traceback into
  structured ``{file, line, function, code}`` frames (instead of a bare
  ``str(exc)``), :func:`thread_stacks` walks every live thread with the
  same frame labels as the PR-6 sampling profiler, and
  :class:`CrashHandler` assembles both plus the flight ring, active
  alerts and buildinfo into a crash report written to a ``crashes/``
  directory.  ``install()`` chains ``sys.excepthook`` /
  ``threading.excepthook``, enables :mod:`faulthandler` into the crash
  directory for fatal signals, and registers an ``atexit`` sweep that
  removes empty faulthandler logs.
* :class:`StallWatchdog` -- a daemon thread watching an in-flight
  request registry; a request older than ``deadline_s`` emits a stall
  event (with the stuck thread's stack) exactly once, and clears when
  the request finally finishes.

Nothing here imports the service layer; the daemon wires the
callbacks (``on_stall`` fires the ``daemon.stalled`` alert, crash
reports embed ``repro.alerts/1``) so the pieces stay testable in
isolation.
"""

from __future__ import annotations

import atexit
import faulthandler
import json
import os
import sys
import threading
import time
import traceback
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, Iterable, List, Optional, Union

from repro.obs.profile import _frame_label

__all__ = [
    "ERROR_SCHEMA",
    "FLIGHT_SCHEMA",
    "CRASH_SCHEMA",
    "exception_frames",
    "error_document",
    "thread_stacks",
    "FlightRecorder",
    "CrashHandler",
    "StallWatchdog",
]

#: Schema of a structured error (exception + traceback frames).
ERROR_SCHEMA = "repro.error/1"
#: Schema of an exported flight-recorder ring.
FLIGHT_SCHEMA = "repro.flight/1"
#: Schema of a crash report (error + threads + flight + alerts).
CRASH_SCHEMA = "repro.crash/1"

#: Event kinds a flight ring may hold (free-form kinds also allowed).
EVENT_KINDS = ("request", "span", "error", "log", "stall")


# ----------------------------------------------------------------------
# structured errors (repro.error/1)
# ----------------------------------------------------------------------
def exception_frames(
    exc: BaseException, limit: int = 32
) -> List[Dict[str, object]]:
    """Structured traceback frames, outermost first.

    Each frame is ``{"file", "line", "function", "code"}`` with the
    same short two-component file paths as the profiler's labels, so a
    crash report and a flamegraph agree on names.  ``limit`` keeps the
    innermost frames when the traceback is deeper.
    """
    frames: List[Dict[str, object]] = []
    try:
        extracted = traceback.extract_tb(exc.__traceback__)
    except Exception:  # pragma: no cover -- hostile __traceback__
        return frames
    for entry in extracted[-limit:]:
        parts = (entry.filename or "?").replace("\\", "/").rsplit("/", 2)
        short = "/".join(parts[-2:]) if len(parts) > 1 else entry.filename
        frames.append(
            {
                "file": short,
                "line": int(entry.lineno or 0),
                "function": entry.name or "?",
                "code": (entry.line or "").strip(),
            }
        )
    return frames


def error_document(
    exc: BaseException, limit: int = 32
) -> Dict[str, object]:
    """The ``repro.error/1`` document for ``exc``."""
    return {
        "schema": ERROR_SCHEMA,
        "error": str(exc),
        "error_type": type(exc).__name__,
        "frames": exception_frames(exc, limit=limit),
    }


def thread_stacks(
    max_depth: int = 64,
    exclude: Iterable[int] = (),
) -> List[Dict[str, object]]:
    """Every live thread's stack via the profiler's frame walker.

    Returns one row per thread -- ``{"thread_id", "name", "daemon",
    "frames"}`` with frames root-first in the profiler's
    ``func (pkg/module.py:lineno)`` label format -- so a crash report
    shows *all* threads, not just the one that raised.
    """
    names = {t.ident: t for t in threading.enumerate()}
    skip = frozenset(exclude)
    rows: List[Dict[str, object]] = []
    try:
        current = sys._current_frames()
    except Exception:  # pragma: no cover -- interpreter teardown
        return rows
    for tid, frame in sorted(current.items()):
        if tid in skip:
            continue
        stack: List[str] = []
        depth = 0
        cursor = frame
        while cursor is not None and depth < max_depth:
            stack.append(_frame_label(cursor))
            cursor = cursor.f_back
            depth += 1
        stack.reverse()  # root-first, same order as collapsed stacks
        thread = names.get(tid)
        rows.append(
            {
                "thread_id": tid,
                "name": thread.name if thread is not None else "?",
                "daemon": bool(thread.daemon) if thread is not None else None,
                "frames": stack,
            }
        )
    return rows


# ----------------------------------------------------------------------
# flight recorder (repro.flight/1)
# ----------------------------------------------------------------------
class FlightRecorder:
    """Bounded always-on ring of recent observable moments.

    Parameters
    ----------
    capacity:
        Events retained, oldest evicted first (default 256 -- enough to
        reconstruct the last minutes of a busy daemon while keeping the
        export a few tens of KB).

    Appending is a dict build plus one :class:`collections.deque`
    append under a lock -- cheap enough to run on every request.
    Events that fall off the ring are counted in :attr:`dropped` so an
    export says how much history it *doesn't* show.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._events: Deque[Dict[str, object]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self.total = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring since construction."""
        with self._lock:
            return self.total - len(self._events)

    # ------------------------------------------------------------------
    # appends (never raise)
    # ------------------------------------------------------------------
    def record(self, kind: str, **fields: object) -> Dict[str, object]:
        """Append one event; returns it.  Never raises."""
        event: Dict[str, object] = {"ts": time.time(), "kind": str(kind)}
        for key, value in fields.items():
            if value is not None:
                event[key] = value
        try:
            with self._lock:
                self._events.append(event)
                self.total += 1
        except Exception:  # pragma: no cover -- must not hurt the host
            pass
        return event

    def record_request(
        self,
        op: Optional[str],
        design: Optional[str],
        status: str,
        duration_s: float,
        **facts: object,
    ) -> Dict[str, object]:
        """Summarise one finished request into the ring."""
        return self.record(
            "request",
            op=op,
            design=design,
            status=status,
            duration_ms=round(duration_s * 1000.0, 3),
            **facts,
        )

    def record_span(
        self, name: str, duration_s: float, thread_id: Optional[int] = None
    ) -> Dict[str, object]:
        """Record one completed *root* span (depth 0)."""
        return self.record(
            "span",
            name=name,
            duration_ms=round(duration_s * 1000.0, 3),
            thread_id=thread_id,
        )

    def record_error(
        self,
        exc: BaseException,
        op: Optional[str] = None,
        design: Optional[str] = None,
        **facts: object,
    ) -> Dict[str, object]:
        """Record an exception with its ``repro.error/1`` frames."""
        return self.record(
            "error",
            op=op,
            design=design,
            error=error_document(exc),
            **facts,
        )

    def record_log(self, message: str, **facts: object) -> Dict[str, object]:
        """Record a notable free-form moment (startup, eviction, ...)."""
        return self.record("log", message=str(message), **facts)

    def subscribe_spans(self, recorder) -> None:
        """Feed ``recorder``'s completed root spans into the ring.

        Installs this ring as the recorder's ``on_root_span`` hook (one
        attribute; last subscriber wins) so every depth-0 span lands
        here without the recorder importing this module.
        """
        ring = self

        def _on_root_span(name: str, duration: float, tid: int) -> None:
            ring.record_span(name, duration, thread_id=tid)

        recorder.on_root_span = _on_root_span

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def events(
        self, last: Optional[int] = None, kind: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """The most recent events, oldest first (optionally filtered)."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.get("kind") == kind]
        if last is not None and last >= 0:
            events = events[-last:] if last else []
        return events

    def to_dict(self, last: Optional[int] = None) -> Dict[str, object]:
        """The ``repro.flight/1`` document."""
        with self._lock:
            events = list(self._events)
            total = self.total
        dropped = total - len(events)
        if last is not None and last >= 0:
            events = events[-last:] if last else []
        return {
            "schema": FLIGHT_SCHEMA,
            "pid": os.getpid(),
            "capacity": self.capacity,
            "total": total,
            "dropped": dropped,
            "events": events,
        }


# ----------------------------------------------------------------------
# crash reports (repro.crash/1)
# ----------------------------------------------------------------------
class CrashHandler:
    """Assemble and persist ``repro.crash/1`` reports.

    Parameters
    ----------
    crash_dir:
        Directory crash reports (and the faulthandler log for fatal
        signals) are written to; ``None`` keeps reports in memory only.
    flight:
        Optional :class:`FlightRecorder` whose ring is embedded in
        every report.
    alerts:
        Optional zero-arg callable returning the active-alert list to
        embed (the daemon passes ``lambda: engine.active()``).
    buildinfo:
        Optional zero-arg callable returning the buildinfo dict.
    keep:
        On-disk reports retained; older ones are pruned (default 20).
    """

    def __init__(
        self,
        crash_dir: Optional[Union[str, Path]] = None,
        flight: Optional[FlightRecorder] = None,
        alerts: Optional[Callable[[], List[Dict[str, object]]]] = None,
        buildinfo: Optional[Callable[[], Dict[str, object]]] = None,
        keep: int = 20,
    ) -> None:
        self.crash_dir = Path(crash_dir) if crash_dir is not None else None
        self.flight = flight
        self.alerts = alerts
        self.buildinfo = buildinfo
        self.keep = max(1, int(keep))
        self.reports_written = 0
        self.last_report: Optional[Dict[str, object]] = None
        self.last_path: Optional[Path] = None
        self._lock = threading.Lock()
        self._installed = False
        self._prev_excepthook = None
        self._prev_threading_excepthook = None
        self._faulthandler_file = None
        self._faulthandler_path: Optional[Path] = None

    # ------------------------------------------------------------------
    # report assembly
    # ------------------------------------------------------------------
    def build(
        self,
        exc: Optional[BaseException] = None,
        kind: str = "exception",
        op: Optional[str] = None,
        thread: Optional[str] = None,
        **extra: object,
    ) -> Dict[str, object]:
        """Build (without persisting) a ``repro.crash/1`` document."""
        report: Dict[str, object] = {
            "schema": CRASH_SCHEMA,
            "ts": time.time(),
            "pid": os.getpid(),
            "kind": str(kind),
            "op": op,
            "thread": thread,
            "error": error_document(exc) if exc is not None else None,
            "threads": thread_stacks(),
        }
        try:
            report["flight"] = (
                self.flight.to_dict() if self.flight is not None else None
            )
        except Exception:  # pragma: no cover -- forensics must not raise
            report["flight"] = None
        try:
            report["alerts"] = self.alerts() if self.alerts is not None else []
        except Exception:  # pragma: no cover
            report["alerts"] = []
        try:
            report["buildinfo"] = (
                self.buildinfo() if self.buildinfo is not None else None
            )
        except Exception:  # pragma: no cover
            report["buildinfo"] = None
        for key, value in extra.items():
            report[key] = value
        return report

    def report(
        self,
        exc: Optional[BaseException] = None,
        kind: str = "exception",
        op: Optional[str] = None,
        thread: Optional[str] = None,
        **extra: object,
    ) -> Dict[str, object]:
        """Build, remember and (when ``crash_dir`` is set) persist."""
        doc = self.build(exc, kind=kind, op=op, thread=thread, **extra)
        with self._lock:
            self.last_report = doc
            self.reports_written += 1
            serial = self.reports_written
        if self.crash_dir is not None:
            try:
                self.crash_dir.mkdir(parents=True, exist_ok=True)
                name = f"crash-{int(doc['ts'])}-{os.getpid()}-{serial}.json"
                path = self.crash_dir / name
                path.write_text(
                    json.dumps(doc, sort_keys=True, default=str) + "\n"
                )
                with self._lock:
                    self.last_path = path
                self._prune()
            except Exception:  # pragma: no cover -- disk full, perms...
                pass
        return doc

    def latest(self) -> Optional[Dict[str, object]]:
        """The most recent report: in-memory first, then newest on disk."""
        with self._lock:
            if self.last_report is not None:
                return self.last_report
        path = self.latest_path()
        if path is None:
            return None
        try:
            doc = json.loads(path.read_text())
        except Exception:
            return None
        return doc if isinstance(doc, dict) else None

    def latest_path(self) -> Optional[Path]:
        """Newest persisted ``crash-*.json``, or ``None``."""
        with self._lock:
            if self.last_path is not None and self.last_path.exists():
                return self.last_path
        if self.crash_dir is None or not self.crash_dir.is_dir():
            return None
        candidates = sorted(self.crash_dir.glob("crash-*.json"))
        return candidates[-1] if candidates else None

    def _prune(self) -> None:
        if self.crash_dir is None:
            return
        reports = sorted(self.crash_dir.glob("crash-*.json"))
        for stale in reports[: -self.keep]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover -- racing prune
                pass

    # ------------------------------------------------------------------
    # process hooks (opt-in; ``repro-sta serve`` installs them)
    # ------------------------------------------------------------------
    def install(self) -> "CrashHandler":
        """Chain into the process-level unhandled-exception hooks.

        * ``sys.excepthook`` / ``threading.excepthook`` write a crash
          report, then delegate to the previous hook;
        * :mod:`faulthandler` is enabled into
          ``<crash_dir>/faulthandler-<pid>.log`` so fatal signals
          (SEGV, ABRT, FPE...) leave all-thread stacks even though
          Python code cannot run then;
        * an ``atexit`` sweep closes the faulthandler log and removes
          it when empty (a clean shutdown leaves no debris).

        Safe to call once per handler; :meth:`uninstall` restores the
        previous hooks (tests rely on that).
        """
        if self._installed:
            return self
        self._installed = True
        handler = self

        self._prev_excepthook = sys.excepthook

        def _excepthook(exc_type, exc, tb) -> None:
            try:
                if exc is not None:
                    exc.__traceback__ = tb
                    handler.report(exc, kind="unhandled_exception")
            except Exception:  # pragma: no cover -- never mask the crash
                pass
            prev = handler._prev_excepthook or sys.__excepthook__
            prev(exc_type, exc, tb)

        sys.excepthook = _excepthook

        self._prev_threading_excepthook = threading.excepthook

        def _threading_excepthook(args) -> None:
            try:
                if args.exc_value is not None:
                    handler.report(
                        args.exc_value,
                        kind="unhandled_thread_exception",
                        thread=getattr(args.thread, "name", None),
                    )
            except Exception:  # pragma: no cover
                pass
            prev = (
                handler._prev_threading_excepthook
                or threading.__excepthook__
            )
            prev(args)

        threading.excepthook = _threading_excepthook

        if self.crash_dir is not None:
            try:
                self.crash_dir.mkdir(parents=True, exist_ok=True)
                self._faulthandler_path = (
                    self.crash_dir / f"faulthandler-{os.getpid()}.log"
                )
                self._faulthandler_file = open(
                    self._faulthandler_path, "w"
                )
                faulthandler.enable(self._faulthandler_file)
                atexit.register(self._sweep_faulthandler)
            except Exception:  # pragma: no cover -- read-only dir
                self._faulthandler_file = None
                self._faulthandler_path = None
        return self

    def uninstall(self) -> None:
        """Restore the previous hooks (idempotent)."""
        if not self._installed:
            return
        self._installed = False
        if self._prev_excepthook is not None:
            sys.excepthook = self._prev_excepthook
            self._prev_excepthook = None
        if self._prev_threading_excepthook is not None:
            threading.excepthook = self._prev_threading_excepthook
            self._prev_threading_excepthook = None
        self._sweep_faulthandler()

    def _sweep_faulthandler(self) -> None:
        handle, self._faulthandler_file = self._faulthandler_file, None
        path, self._faulthandler_path = self._faulthandler_path, None
        if handle is None:
            return
        try:
            if faulthandler.is_enabled():
                faulthandler.disable()
            handle.close()
            if path is not None and path.exists() and path.stat().st_size == 0:
                path.unlink()
        except Exception:  # pragma: no cover -- teardown best effort
            pass


# ----------------------------------------------------------------------
# stall watchdog
# ----------------------------------------------------------------------
class StallWatchdog:
    """Detect in-flight requests stuck beyond a deadline.

    Callers :meth:`track` work when it starts and :meth:`untrack` it in
    a ``finally``; a background thread scans the registry every
    ``interval_s`` and, for any entry older than ``deadline_s``, calls
    ``on_stall(info)`` exactly once with the entry (including the stuck
    thread's stack).  When a stalled entry finally finishes --
    or :meth:`scan` notices it is gone -- ``on_clear(info)`` runs, and
    once *no* stalled entries remain ``on_all_clear()`` runs (the
    daemon resolves the ``daemon.stalled`` alert there).

    ``scan(now)`` is public so tests (and the daemon's own diagnostics)
    can run a deterministic sweep without waiting out the interval.
    """

    def __init__(
        self,
        deadline_s: float = 30.0,
        interval_s: Optional[float] = None,
        on_stall: Optional[Callable[[Dict[str, object]], None]] = None,
        on_clear: Optional[Callable[[Dict[str, object]], None]] = None,
        on_all_clear: Optional[Callable[[], None]] = None,
    ) -> None:
        if deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        self.deadline_s = float(deadline_s)
        self.interval_s = (
            float(interval_s)
            if interval_s is not None
            else max(0.05, min(1.0, self.deadline_s / 4.0))
        )
        self.on_stall = on_stall
        self.on_clear = on_clear
        self.on_all_clear = on_all_clear
        self._lock = threading.Lock()
        self._inflight: Dict[int, Dict[str, object]] = {}
        self._next_token = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.stalls = 0

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def track(
        self, op: Optional[str] = None, design: Optional[str] = None
    ) -> int:
        """Register in-flight work; returns a token for :meth:`untrack`."""
        entry: Dict[str, object] = {
            "op": op,
            "design": design,
            "thread_id": threading.get_ident(),
            "started_ts": time.time(),
            "started_perf": time.perf_counter(),
            "stalled": False,
        }
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._inflight[token] = entry
        return token

    def annotate(self, token: int, **fields: object) -> None:
        """Attach late-known facts (e.g. the design) to an entry."""
        with self._lock:
            entry = self._inflight.get(token)
            if entry is not None:
                entry.update(fields)

    def untrack(self, token: int) -> None:
        """Work finished; fires ``on_clear`` if this entry had stalled."""
        with self._lock:
            entry = self._inflight.pop(token, None)
            stalled_left = any(
                e.get("stalled") for e in self._inflight.values()
            )
        if entry is not None and entry.get("stalled"):
            entry["waited_s"] = round(
                time.perf_counter() - entry["started_perf"], 6
            )
            self._emit(self.on_clear, entry)
            if not stalled_left:
                self._emit_all_clear()

    def inflight(self) -> List[Dict[str, object]]:
        """A snapshot of in-flight entries (oldest first)."""
        with self._lock:
            entries = [dict(e) for e in self._inflight.values()]
        return sorted(entries, key=lambda e: e["started_perf"])

    def stalled_count(self) -> int:
        with self._lock:
            return sum(
                1 for e in self._inflight.values() if e.get("stalled")
            )

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------
    def scan(self, now: Optional[float] = None) -> List[Dict[str, object]]:
        """One sweep; returns newly stalled entries (possibly empty)."""
        now = time.perf_counter() if now is None else now
        fresh: List[Dict[str, object]] = []
        with self._lock:
            for entry in self._inflight.values():
                waited = now - entry["started_perf"]
                if waited >= self.deadline_s and not entry.get("stalled"):
                    entry["stalled"] = True
                    info = dict(entry)
                    info["waited_s"] = round(waited, 6)
                    fresh.append(info)
            self.stalls += len(fresh)
        for info in fresh:
            info["stack"] = self._stack_of(info.get("thread_id"))
            self._emit(self.on_stall, info)
        return fresh

    @staticmethod
    def _stack_of(thread_id: object) -> List[str]:
        for row in thread_stacks():
            if row["thread_id"] == thread_id:
                return list(row["frames"])
        return []

    def _emit(
        self,
        hook: Optional[Callable[[Dict[str, object]], None]],
        info: Dict[str, object],
    ) -> None:
        if hook is None:
            return
        try:
            hook(info)
        except Exception:  # pragma: no cover -- hooks must not kill us
            pass

    def _emit_all_clear(self) -> None:
        if self.on_all_clear is None:
            return
        try:
            self.on_all_clear()
        except Exception:  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "StallWatchdog":
        if self._thread is not None:
            raise RuntimeError("watchdog already started")
        self._stop.clear()

        def _run() -> None:
            while not self._stop.wait(self.interval_s):
                try:
                    self.scan()
                except Exception:  # pragma: no cover -- never die
                    pass

        self._thread = threading.Thread(
            target=_run, name="repro-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)

    def __enter__(self) -> "StallWatchdog":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
