"""Cross-process trace propagation and recorder snapshots.

PR 1 gave the pipeline in-process spans; PR 3 put the pipeline behind a
daemon and a worker pool.  This module stitches the two together so a
client -> daemon -> warm-analyzer round trip (or a batch plan ->
worker -> cache-store fan-out) renders as **one** Chrome trace tree:

* **trace context** (wire schema ``repro.trace/1``) -- a ``trace_id``
  plus the ``parent_span`` id the remote work should hang under,
  carried inside :class:`repro.service.daemon.DaemonClient` requests
  and :class:`repro.service.batch.BatchEngine` job specs;
* **snapshots** (schema ``repro.obs.snapshot/1``) -- a JSON-safe dump
  of a child :class:`~repro.obs.recorder.Recorder` that ships back in
  the response/result document;
* **merge** -- :func:`merge_snapshot` folds a child snapshot into the
  parent recorder: spans/events keep their originating ``pid``,
  counters sum, histograms merge bucket-by-bucket, and a *flow link*
  (:class:`~repro.obs.recorder.FlowRecord` pair) connects the parent
  span to the child's first span so Perfetto draws the arrow.

Typical client-side pattern::

    ctx = live.trace_context()                  # None when not recording
    with obs.span("service.client.request", category="service",
                  **live.span_args(ctx)):
        response = send(request | {"trace": ctx})
    live.merge_snapshot(obs.active(), response.get("trace"))

and worker-side::

    rec = live.child_recorder(spec.get("trace"))
    with obs.recording(rec):
        ...do the work...
    document["trace"] = live.snapshot(rec)

Clock alignment uses the recorders' wall-clock epochs
(``Recorder.epoch_wall``), so merged timestamps are accurate to
cross-process wall-clock skew -- good enough to see queue waits and
worker overlap, which is the point.
"""

from __future__ import annotations

import os
import secrets
from typing import Dict, List, Optional, Tuple

from repro.obs.hist import HistogramStats
from repro.obs.recorder import (
    EventRecord,
    FlowRecord,
    Recorder,
    SpanRecord,
    SpanStats,
)

__all__ = [
    "TRACE_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "new_trace_id",
    "new_span_id",
    "trace_context",
    "span_args",
    "child_recorder",
    "adopt",
    "snapshot",
    "merge_snapshot",
]

#: Wire schema of the trace context carried in requests/job specs.
TRACE_SCHEMA = "repro.trace/1"
#: Schema of a serialised recorder snapshot.
SNAPSHOT_SCHEMA = "repro.obs.snapshot/1"


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 hex chars)."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh 64-bit span id (16 hex chars)."""
    return secrets.token_hex(8)


def trace_context(
    recorder: Optional[Recorder] = None,
    parent_span: Optional[str] = None,
) -> Optional[Dict[str, str]]:
    """Build a ``repro.trace/1`` wire context from ``recorder``.

    Uses the process-wide recorder when ``recorder`` is omitted;
    returns ``None`` when recording is disabled (no context is
    propagated, remote telemetry stays off the wire).  Lazily assigns
    the recorder its ``trace_id`` and mints a fresh ``parent_span`` id
    unless one is given -- tag the local span wrapping the remote call
    with it (:func:`span_args`) so the merge can anchor the flow arrow.
    """
    if recorder is None:
        from repro.obs.recorder import active

        recorder = active()
    if recorder is None:
        return None
    if recorder.trace_id is None:
        recorder.trace_id = new_trace_id()
    return {
        "schema": TRACE_SCHEMA,
        "trace_id": recorder.trace_id,
        "parent_span": parent_span or new_span_id(),
    }


def span_args(ctx: Optional[Dict[str, str]]) -> Dict[str, str]:
    """Span kwargs tagging a local span as the parent of ``ctx``."""
    if not ctx:
        return {}
    return {"span_id": ctx["parent_span"]}


def child_recorder(
    ctx: Optional[Dict[str, object]] = None,
    max_spans: int = 20_000,
    max_events: int = 5_000,
) -> Recorder:
    """A fresh recorder for remote work, adopting ``ctx`` when given.

    Bounds default much lower than the in-process recorder's: the
    snapshot travels over a socket / pickle boundary, so a runaway
    child degrades to aggregates instead of a megabyte response.
    """
    recorder = Recorder(max_spans=max_spans, max_events=max_events)
    adopt(recorder, ctx)
    return recorder


def adopt(recorder: Recorder, ctx: Optional[Dict[str, object]]) -> Recorder:
    """Join ``recorder`` to the trace described by ``ctx`` (if any)."""
    if ctx:
        trace_id = ctx.get("trace_id")
        if trace_id:
            recorder.trace_id = str(trace_id)
        parent = ctx.get("parent_span")
        if parent:
            recorder.parent_span_id = str(parent)
    if recorder.trace_id is None:
        recorder.trace_id = new_trace_id()
    return recorder


def _safe(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _args_out(args) -> Optional[Dict[str, object]]:
    if not args:
        return None
    return {str(key): _safe(value) for key, value in args}


def snapshot(recorder: Recorder) -> Dict[str, object]:
    """Serialise ``recorder`` as a ``repro.obs.snapshot/1`` document.

    JSON-safe and picklable: plain dicts/lists/scalars only, so it can
    ride in a daemon response line or a worker result document.
    """
    with recorder._lock:
        return {
            "schema": SNAPSHOT_SCHEMA,
            "trace_id": recorder.trace_id,
            "parent_span": recorder.parent_span_id,
            "pid": os.getpid(),
            "epoch_wall": recorder.epoch_wall,
            "spans": [
                {
                    "name": record.name,
                    "cat": record.category,
                    "start": record.start,
                    "dur": record.duration,
                    "depth": record.depth,
                    "tid": record.thread_id,
                    "args": _args_out(record.args),
                }
                for record in recorder.spans
            ],
            "events": [
                {
                    "name": record.name,
                    "ts": record.timestamp,
                    "tid": record.thread_id,
                    "args": _args_out(record.args),
                }
                for record in recorder.events
            ],
            "counters": dict(recorder.counters),
            "gauges": dict(recorder.gauges),
            "histograms": {
                name: stats.to_dict()
                for name, stats in recorder.histograms.items()
            },
            "span_stats": {
                name: {
                    "count": stats.count,
                    "total": stats.total,
                    "min": stats.minimum if stats.count else 0.0,
                    "max": stats.maximum,
                }
                for name, stats in recorder.span_stats.items()
            },
            "dropped_spans": recorder.dropped_spans,
            "dropped_events": recorder.dropped_events,
        }


def _find_anchor(
    recorder: Recorder, span_id: str
) -> Optional[Tuple[float, int, Optional[int]]]:
    """Locate the (ts, tid, pid) of the span/event tagged ``span_id``."""
    for record in reversed(recorder.spans):
        if record.args:
            for key, value in record.args:
                if key == "span_id" and value == span_id:
                    return record.start, record.thread_id, record.pid
    for record in reversed(recorder.events):
        if record.args:
            for key, value in record.args:
                if key == "span_id" and value == span_id:
                    return record.timestamp, record.thread_id, record.pid
    return None


def merge_snapshot(
    recorder: Optional[Recorder],
    snap: Optional[Dict[str, object]],
) -> int:
    """Fold a child snapshot into ``recorder``; returns spans merged.

    No-ops (returning 0) on a missing recorder, a missing/malformed
    snapshot, or a trace-id mismatch -- a telemetry bug must never take
    down the serving path.  Aggregates (counters, histograms, span
    stats) always merge in full; per-span records respect the parent's
    ``max_spans`` bound.
    """
    if recorder is None or not isinstance(snap, dict):
        return 0
    if snap.get("schema") != SNAPSHOT_SCHEMA:
        return 0
    snap_trace = snap.get("trace_id")
    if recorder.trace_id is None and snap_trace:
        recorder.trace_id = str(snap_trace)
    elif snap_trace and recorder.trace_id != snap_trace:
        return 0  # different trace: refuse to interleave
    pid = snap.get("pid")
    pid = int(pid) if isinstance(pid, (int, float)) else None
    try:
        offset = float(snap.get("epoch_wall", 0.0)) - recorder.epoch_wall
    except (TypeError, ValueError):
        offset = 0.0
    if offset < 0.0:
        offset = 0.0
    merged = 0
    first_child: Optional[Tuple[float, int]] = None
    with recorder._lock:
        for entry in snap.get("spans") or ():
            try:
                start = float(entry["start"]) + offset
                record = SpanRecord(
                    name=str(entry["name"]),
                    category=str(entry.get("cat", "repro")),
                    start=start,
                    duration=float(entry["dur"]),
                    depth=int(entry.get("depth", 0)),
                    thread_id=int(entry.get("tid", 0)),
                    index=recorder._next_index,
                    args=(
                        tuple(sorted(entry["args"].items()))
                        if entry.get("args")
                        else None
                    ),
                    pid=pid,
                )
            except (KeyError, TypeError, ValueError):
                continue
            if first_child is None or start < first_child[0]:
                first_child = (start, record.thread_id)
            if len(recorder.spans) >= recorder.max_spans:
                recorder.dropped_spans += 1
                continue
            recorder._next_index += 1
            recorder.spans.append(record)
            merged += 1
        for entry in snap.get("events") or ():
            try:
                record = EventRecord(
                    name=str(entry["name"]),
                    timestamp=float(entry["ts"]) + offset,
                    thread_id=int(entry.get("tid", 0)),
                    args=(
                        tuple(sorted(entry["args"].items()))
                        if entry.get("args")
                        else None
                    ),
                    pid=pid,
                )
            except (KeyError, TypeError, ValueError):
                continue
            if len(recorder.events) >= recorder.max_events:
                recorder.dropped_events += 1
                continue
            recorder.events.append(record)
        for name, value in (snap.get("counters") or {}).items():
            try:
                recorder.counters[name] = (
                    recorder.counters.get(name, 0.0) + float(value)
                )
            except (TypeError, ValueError):
                continue
        for name, value in (snap.get("gauges") or {}).items():
            try:
                recorder.gauges.setdefault(name, float(value))
            except (TypeError, ValueError):
                continue
        for name, data in (snap.get("histograms") or {}).items():
            try:
                incoming = HistogramStats.from_dict(data)
            except (KeyError, TypeError, ValueError):
                continue
            existing = recorder.histograms.get(name)
            if existing is None:
                recorder.histograms[name] = incoming
            else:
                existing.merge(incoming)
        for name, data in (snap.get("span_stats") or {}).items():
            try:
                count = int(data["count"])
                total = float(data["total"])
                minimum = float(data.get("min", 0.0))
                maximum = float(data.get("max", 0.0))
            except (KeyError, TypeError, ValueError):
                continue
            stats = recorder.span_stats.get(name)
            if stats is None:
                stats = recorder.span_stats[name] = SpanStats()
            stats.count += count
            stats.total += total
            if count:
                stats.minimum = min(stats.minimum, minimum)
                stats.maximum = max(stats.maximum, maximum)
        recorder.dropped_spans += int(snap.get("dropped_spans") or 0)
        recorder.dropped_events += int(snap.get("dropped_events") or 0)
        recorder.counters["obs.snapshots_merged"] = (
            recorder.counters.get("obs.snapshots_merged", 0.0) + 1.0
        )
    # Parent/child flow link (outside the lock: only appends).
    parent_span = snap.get("parent_span")
    if parent_span and first_child is not None:
        anchor = _find_anchor(recorder, str(parent_span))
        if anchor is not None:
            flow_id = str(parent_span)
            recorder.flows.append(
                FlowRecord(
                    phase="s",
                    flow_id=flow_id,
                    timestamp=anchor[0],
                    thread_id=anchor[1],
                    pid=anchor[2],
                )
            )
            recorder.flows.append(
                FlowRecord(
                    phase="f",
                    flow_id=flow_id,
                    timestamp=first_child[0],
                    thread_id=first_child[1],
                    pid=pid,
                )
            )
    return merged
