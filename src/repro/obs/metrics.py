"""Flat metric export: JSON dump and Prometheus-style text.

The metric *name catalogue* (see ``docs/observability.md``) is stable
across PRs so benchmark regressions can diff dumps from different
revisions.  :data:`WELL_KNOWN_COUNTERS` names the counters every dump
contains (zero-filled when the instrumented code path did not run), so
downstream tooling never has to special-case missing keys.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.obs.recorder import Recorder

#: Counters guaranteed to appear in every metrics dump (zero-filled).
WELL_KNOWN_COUNTERS = (
    # Algorithm 1 fixed-point accounting (Section 6/8).
    "alg1.runs",
    "alg1.forward_cycles",
    "alg1.backward_cycles",
    "alg1.partial_forward_cycles",
    "alg1.partial_backward_cycles",
    "alg1.iterations_total",
    # Slack-transfer operators (per operation kind, Section 6).
    "transfer.complete_forward.sweeps",
    "transfer.complete_forward.transfers",
    "transfer.complete_forward.moved",
    "transfer.complete_backward.sweeps",
    "transfer.complete_backward.transfers",
    "transfer.complete_backward.moved",
    "transfer.partial_forward.sweeps",
    "transfer.partial_forward.transfers",
    "transfer.partial_forward.moved",
    "transfer.partial_backward.sweeps",
    "transfer.partial_backward.transfers",
    "transfer.partial_backward.moved",
    "transfer.snatch_forward.sweeps",
    "transfer.snatch_forward.transfers",
    "transfer.snatch_forward.moved",
    "transfer.snatch_backward.sweeps",
    "transfer.snatch_backward.transfers",
    "transfer.snatch_backward.moved",
    # Block-method slack evaluation (Section 7).
    "slack.evaluations",
    "slack.cluster_passes",
    "slack.forward_sweeps",
    "slack.backward_sweeps",
    "slack.nodes_visited",
    # Break-open pass selection (Section 7).
    "breakopen.searches",
    "breakopen.combos_tried",
    "breakopen.greedy_fallbacks",
    "breakopen.passes_selected",
    # Incremental re-analysis (Algorithm 3 substrate).
    "incremental.warm_hits",
    "incremental.cold_starts",
    "incremental.rebuilds",
    "incremental.swaps",
    # Redesign / sizing loops (Section 8).
    "resynthesis.rounds",
    "sizing.passes",
    "sizing.cells_resized",
    # Delay estimation.
    "delay.cells_estimated",
    "delay.arcs_estimated",
    # Serving layer (repro.service; docs/service.md).
    "service.cache.hits",
    "service.cache.misses",
    "service.cache.stores",
    "service.cache.evictions",
    "service.cache.corrupt",
    "service.batch.jobs",
    "service.batch.retries",
    "service.batch.timeouts",
    "service.batch.worker_crashes",
    "service.batch.serial_fallbacks",
    "service.batch.failures",
    "service.daemon.requests",
    "service.daemon.errors",
    "service.daemon.designs_loaded",
    "service.daemon.mutations",
    "service.daemon.incremental_hits",
    # Lock-free snapshot read path (PR 10; docs/service.md).
    "service.daemon.snapshot_hits",
    "service.daemon.snapshot_misses",
    "service.daemon.epoch_bumps",
    # Service-level telemetry (PR 4; docs/observability.md).
    "service.daemon.http_requests",
    "service.daemon.slow_requests",
    "service.accesslog.lines",
    "obs.snapshots_merged",
    # Continuous profiling + metrics history (PR 6;
    # docs/observability.md).
    "service.profile.starts",
    "service.profile.stops",
    "service.profile.fetches",
    "service.profile.samples",
    "service.tsdb.reads",
    # Fleet observability (PR 9; docs/observability.md).
    "service.tracestore.kept",
    "service.tracestore.kept_error",
    "service.tracestore.kept_slow",
    "service.tracestore.dropped",
    "service.tracestore.evicted",
    "service.tracestore.write_errors",
    "service.collector.scrapes",
    "service.collector.scrape_errors",
    "service.collector.peer_set_reloads",
    "service.fabric.peer_set_reloads",
)


def metrics_dict(recorder: Recorder) -> Dict[str, object]:
    """Flatten the recorder into a JSON-serialisable metrics document."""
    counters = {name: 0.0 for name in WELL_KNOWN_COUNTERS}
    counters.update(recorder.counters)
    spans = {
        name: {
            "count": stats.count,
            "total_s": stats.total,
            "min_s": stats.minimum if stats.count else 0.0,
            "max_s": stats.maximum,
            "mean_s": stats.mean,
        }
        for name, stats in sorted(recorder.span_stats.items())
    }
    histograms = {
        name: stats.to_dict()
        for name, stats in sorted(recorder.histograms.items())
    }
    return {
        "schema": "repro.obs.metrics/1",
        "trace_id": recorder.trace_id,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(recorder.gauges.items())),
        "histograms": histograms,
        "spans": spans,
        "dropped_spans": recorder.dropped_spans,
        "dropped_events": recorder.dropped_events,
    }


def write_metrics_json(
    recorder: Recorder, path: Union[str, Path]
) -> Path:
    """Write :func:`metrics_dict` as JSON to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(metrics_dict(recorder), indent=2))
    return path


def _sanitise(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    return "".join(out)


def render_prometheus(recorder: Recorder, prefix: str = "repro") -> str:
    """Prometheus exposition-format text for the recorder's contents.

    Counters become ``<prefix>_<name>_total``, gauges ``<prefix>_<name>``
    and span aggregates ``<prefix>_<name>_seconds_{count,sum}``.
    """
    data = metrics_dict(recorder)
    lines = []
    for name, value in data["counters"].items():
        metric = f"{prefix}_{_sanitise(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value:g}")
    for name, value in data["gauges"].items():
        metric = f"{prefix}_{_sanitise(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value:g}")
    for name, stats in data["spans"].items():
        metric = f"{prefix}_{_sanitise(name)}_seconds"
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {stats['count']}")
        lines.append(f"{metric}_sum {stats['total_s']:.9f}")
    for name, hist in sorted(recorder.histograms.items()):
        metric = f"{prefix}_{_sanitise(name)}"
        lines.append(f"# TYPE {metric} histogram")
        for index, (le, cumulative) in enumerate(hist.cumulative()):
            line = f'{metric}_bucket{{le="{le}"}} {cumulative}'
            exemplar = hist.exemplars.get(index)
            if exemplar and exemplar.get("trace_id"):
                # OpenMetrics exemplar suffix: the trace behind a recent
                # observation in this bucket (retrievable via
                # ``repro-sta traces show <trace_id>``).
                line += (
                    f' # {{trace_id="{exemplar["trace_id"]}"}}'
                    f' {float(exemplar.get("value", 0.0)):g}'
                    f' {float(exemplar.get("ts", 0.0)):.3f}'
                )
            lines.append(line)
        lines.append(f"{metric}_sum {hist.total:g}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + "\n"
