"""Instrumentation core: spans, counters, gauges, events.

Design goals (see ``docs/observability.md``):

* **zero dependencies** -- standard library only;
* **no-op when disabled** -- the process-wide recorder is ``None`` by
  default; every instrumentation site guards on :func:`active` (one
  global read) or uses :func:`span`, which returns a shared null object,
  so the disabled overhead is a few nanoseconds per call site;
* **bounded memory** -- per-span records and events stop accumulating
  past ``max_spans`` / ``max_events`` (aggregates keep counting), so a
  long Algorithm-3 loop cannot exhaust memory;
* **monotonic clocks** -- all timings use :func:`time.perf_counter`
  (wall-clock, monotonic), not ``process_time``, so I/O-bound and
  multi-threaded phases are reported consistently.

Typical usage::

    from repro import obs

    with obs.recording() as rec:
        with obs.span("analysis", category="analyzer"):
            ...
        obs.counter("alg1.forward_cycles")
    print(rec.counters["alg1.forward_cycles"])
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.hist import DEFAULT_BUCKETS, HistogramStats

__all__ = [
    "Recorder",
    "Span",
    "SpanRecord",
    "EventRecord",
    "FlowRecord",
    "SpanStats",
    "HistogramStats",
    "NULL_SPAN",
    "active",
    "set_recorder",
    "bind_recorder",
    "bound",
    "recording",
    "span",
    "counter",
    "gauge",
    "event",
    "histogram",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span (timings in seconds since the recorder epoch)."""

    name: str
    category: str
    start: float
    duration: float
    depth: int
    thread_id: int
    index: int
    args: Optional[Tuple[Tuple[str, object], ...]] = None
    #: Originating process, set only for records merged in from another
    #: process's snapshot (``None`` means "this process").
    pid: Optional[int] = None


@dataclass(frozen=True)
class EventRecord:
    """One instant event."""

    name: str
    timestamp: float
    thread_id: int
    args: Optional[Tuple[Tuple[str, object], ...]] = None
    #: Originating process (see :class:`SpanRecord`).
    pid: Optional[int] = None


@dataclass(frozen=True)
class FlowRecord:
    """One endpoint of a cross-process parent/child link.

    A pair of flow records sharing ``flow_id`` -- one ``phase="s"``
    (start, at the parent span) and one ``phase="f"`` (finish, at the
    first child span) -- renders as an arrow between processes in
    Perfetto.  Produced by :func:`repro.obs.live.merge_snapshot`.
    """

    phase: str  # "s" (start) | "f" (finish)
    flow_id: str
    timestamp: float
    thread_id: int
    pid: Optional[int] = None


@dataclass
class SpanStats:
    """Aggregate statistics for all spans sharing one name."""

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def observe(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration < self.minimum:
            self.minimum = duration
        if duration > self.maximum:
            self.maximum = duration


class Recorder:
    """Process-wide collection point for spans, counters, gauges, events.

    Thread-safe for counters/gauges/completions (a single lock guards the
    shared structures); span *nesting depth* is tracked per thread.
    """

    def __init__(
        self, max_spans: int = 200_000, max_events: int = 50_000
    ) -> None:
        self.epoch = time.perf_counter()
        self.epoch_wall = time.time()
        self.max_spans = max_spans
        self.max_events = max_events
        #: Cross-process trace identity (``None`` until the recorder
        #: joins a trace -- see :mod:`repro.obs.live`).
        self.trace_id: Optional[str] = None
        #: Parent span id this recorder's work hangs under (wire field
        #: ``parent_span`` of ``repro.trace/1``); set in child processes.
        self.parent_span_id: Optional[str] = None
        #: Cross-process parent/child links added by snapshot merges.
        self.flows: List[FlowRecord] = []
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramStats] = {}
        self.span_stats: Dict[str, SpanStats] = {}
        self.dropped_spans = 0
        self.dropped_events = 0
        self._lock = threading.Lock()
        self._depths: Dict[int, int] = {}
        #: Per-thread stack of *open* spans ``(name, category)``.  Only
        #: the owning thread mutates its list (append on enter, pop on
        #: exit); the sampling profiler reads it from another thread, so
        #: entries are immutable tuples and readers copy the whole list
        #: in one step (atomic under the GIL, at worst one span stale).
        self._span_stacks: Dict[int, List[Tuple[str, str]]] = {}
        self._next_index = 0
        #: Optional hook ``(name, duration_s, thread_id)`` called when a
        #: depth-0 span completes (the flight recorder subscribes here
        #: to keep a ring of recent root spans).  Must not raise; called
        #: outside the recorder lock.
        self.on_root_span = None

    # ------------------------------------------------------------------
    # span lifecycle (called by Span)
    # ------------------------------------------------------------------
    def _enter_span(self, name: str, category: str) -> Tuple[int, int]:
        tid = threading.get_ident()
        depth = self._depths.get(tid, 0)
        self._depths[tid] = depth + 1
        stack = self._span_stacks.get(tid)
        if stack is None:
            stack = self._span_stacks[tid] = []
        stack.append((name, category))
        return tid, depth

    def _exit_span(
        self,
        name: str,
        category: str,
        start: float,
        duration: float,
        depth: int,
        tid: int,
        args: Optional[Dict[str, object]],
    ) -> None:
        self._depths[tid] = depth
        stack = self._span_stacks.get(tid)
        if stack:
            stack.pop()
        if depth == 0 and self.on_root_span is not None:
            try:
                self.on_root_span(name, duration, tid)
            except Exception:  # noqa: BLE001 -- hook must not break spans
                pass
        with self._lock:
            stats = self.span_stats.get(name)
            if stats is None:
                stats = self.span_stats[name] = SpanStats()
            stats.observe(duration)
            if len(self.spans) >= self.max_spans:
                self.dropped_spans += 1
                return
            index = self._next_index
            self._next_index += 1
            self.spans.append(
                SpanRecord(
                    name=name,
                    category=category,
                    start=start - self.epoch,
                    duration=duration,
                    depth=depth,
                    thread_id=tid,
                    index=index,
                    args=tuple(sorted(args.items())) if args else None,
                )
            )

    # ------------------------------------------------------------------
    # counters / gauges / events
    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the monotonically increasing counter ``name``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the point-in-time gauge ``name`` to ``value``."""
        with self._lock:
            self.gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Raise the gauge ``name`` to ``value`` if larger."""
        with self._lock:
            if value > self.gauges.get(name, float("-inf")):
                self.gauges[name] = float(value)

    def histogram(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        exemplar: Optional[Dict[str, object]] = None,
    ) -> None:
        """Observe ``value`` in the fixed-bucket histogram ``name``.

        ``buckets`` (sorted upper bounds, Prometheus ``le`` semantics)
        is only consulted on the first observation of a name; later
        observations reuse the histogram's existing bounds.
        ``exemplar`` (e.g. ``{"trace_id": ..., "ts": ...}``) labels the
        bucket this observation lands in -- the metrics exposition
        renders it OpenMetrics-style so an operator can jump from a fat
        latency bucket to a retrievable trace.
        """
        with self._lock:
            stats = self.histograms.get(name)
            if stats is None:
                stats = self.histograms[name] = HistogramStats(buckets)
            stats.observe(value, exemplar=exemplar)

    def event(self, name: str, **args: object) -> None:
        """Record an instant event (a point on the trace timeline)."""
        with self._lock:
            if len(self.events) >= self.max_events:
                self.dropped_events += 1
                return
            self.events.append(
                EventRecord(
                    name=name,
                    timestamp=time.perf_counter() - self.epoch,
                    thread_id=threading.get_ident(),
                    args=tuple(sorted(args.items())) if args else None,
                )
            )

    # ------------------------------------------------------------------
    # profiler hooks (read from the sampling-profiler thread)
    # ------------------------------------------------------------------
    def active_span_stack(
        self, thread_id: int
    ) -> Tuple[Tuple[str, str], ...]:
        """The open ``(name, category)`` spans of ``thread_id``,
        outermost first.

        Safe to call from any thread without taking the recorder lock:
        the per-thread list is only appended/popped by its owner, and
        the single-step copy is atomic under the GIL -- a concurrent
        enter/exit makes the result at most one span out of date, never
        torn.  Returns ``()`` for threads with no open span.
        """
        stack = self._span_stacks.get(thread_id)
        if not stack:
            return ()
        return tuple(stack)

    def active_span(self, thread_id: int) -> Optional[Tuple[str, str]]:
        """The innermost open span of ``thread_id`` (or ``None``)."""
        stack = self._span_stacks.get(thread_id)
        if not stack:
            return None
        try:
            return stack[-1]
        except IndexError:  # popped between the check and the read
            return None

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "repro", **args: object) -> "Span":
        return Span(self, name, category, args or None)

    def total_span_seconds(self, name: str) -> float:
        stats = self.span_stats.get(name)
        return stats.total if stats is not None else 0.0


class Span:
    """Context-manager timer; records a :class:`SpanRecord` on exit."""

    __slots__ = ("_recorder", "name", "category", "args", "_start", "_tid", "_depth")

    def __init__(
        self,
        recorder: Recorder,
        name: str,
        category: str = "repro",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self._recorder = recorder
        self.name = name
        self.category = category
        self.args = args

    def __enter__(self) -> "Span":
        self._tid, self._depth = self._recorder._enter_span(
            self.name, self.category
        )
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        self._recorder._exit_span(
            self.name,
            self.category,
            self._start,
            end - self._start,
            self._depth,
            self._tid,
            self.args,
        )


class _NullSpan:
    """Shared no-op stand-in returned while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()

#: The process-wide recorder; ``None`` means "disabled" (the default).
_recorder: Optional[Recorder] = None

#: Per-thread recorder override.  A thread with a binding records into
#: its own recorder regardless of the process-wide one; every other
#: thread is untouched.  This is what lets a daemon handle many traced
#: requests concurrently -- each handler thread binds its per-request
#: recorder for the duration of the request instead of swapping the
#: process-wide recorder behind a global lock.
_bindings = threading.local()

#: Sentinel distinguishing "no thread-local binding" from "explicitly
#: bound to None" (a thread may opt *out* of an ambient recorder).
_UNBOUND = object()


def active() -> Optional[Recorder]:
    """The recorder this thread records into, or ``None`` when disabled.

    A thread-local binding (:func:`bind_recorder` / :func:`bound`) wins
    over the process-wide recorder.  Hot loops should fetch this once
    (``rec = obs.active()``) and guard their instrumentation on
    ``rec is not None``.
    """
    bound_rec = getattr(_bindings, "recorder", _UNBOUND)
    if bound_rec is not _UNBOUND:
        return bound_rec
    return _recorder


def set_recorder(recorder: Optional[Recorder]) -> Optional[Recorder]:
    """Install (or, with ``None``, remove) the process-wide recorder.

    Returns the previously installed recorder.
    """
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


def bind_recorder(recorder) -> object:
    """Bind ``recorder`` as *this thread's* recorder.

    Only the calling thread is affected; other threads keep recording
    into the process-wide recorder (or their own bindings).  Pass the
    returned token back to restore the previous state -- including the
    "no binding" state, which an explicit ``bind_recorder(None)``
    (record nothing on this thread) is distinct from.

    Prefer the :func:`bound` context manager; this low-level pair
    exists for frameworks that cannot use a ``with`` block.
    """
    previous = getattr(_bindings, "recorder", _UNBOUND)
    if recorder is _UNBOUND:
        # Restoring the "no binding" token: drop the attribute so the
        # process-wide recorder shows through again.
        try:
            del _bindings.recorder
        except AttributeError:
            pass
    else:
        _bindings.recorder = recorder
    return previous


@contextmanager
def bound(recorder: Optional[Recorder]) -> Iterator[Optional[Recorder]]:
    """Bind ``recorder`` to the calling thread for the ``with`` block.

    The thread-scoped sibling of :func:`recording`: spans, counters and
    events emitted by *this thread* land in ``recorder`` while every
    other thread keeps its own recorder.  ``bound(None)`` silences the
    calling thread even when a process-wide recorder is installed.
    """
    token = bind_recorder(recorder)
    try:
        yield recorder
    finally:
        bind_recorder(token)


@contextmanager
def recording(
    recorder: Optional[Recorder] = None,
) -> Iterator[Recorder]:
    """Enable recording for the duration of the ``with`` block.

    Installs ``recorder`` (a fresh :class:`Recorder` when omitted) as the
    process-wide recorder and restores the previous one afterwards.
    """
    rec = recorder if recorder is not None else Recorder()
    previous = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)


def span(name: str, category: str = "repro", **args: object):
    """A timing span against the active recorder (no-op when recording
    is disabled on this thread)."""
    rec = active()
    if rec is None:
        return NULL_SPAN
    return Span(rec, name, category, args or None)


def counter(name: str, value: float = 1.0) -> None:
    """Increment a counter on the active recorder (no-op when disabled)."""
    rec = active()
    if rec is not None:
        rec.counter(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active recorder (no-op when disabled)."""
    rec = active()
    if rec is not None:
        rec.gauge(name, value)


def event(name: str, **args: object) -> None:
    """Record an instant event on the active recorder (no-op when
    disabled)."""
    rec = active()
    if rec is not None:
        rec.event(name, **args)


def histogram(
    name: str,
    value: float,
    buckets: Sequence[float] = DEFAULT_BUCKETS,
    exemplar: Optional[Dict[str, object]] = None,
) -> None:
    """Observe into a histogram on the active recorder (no-op when
    disabled)."""
    rec = active()
    if rec is not None:
        rec.histogram(name, value, buckets, exemplar=exemplar)
