"""Span-attributed sampling profiler (``repro.profile/1``).

The observability stack so far answers *how long* (spans, histograms)
but never *which frames*: when a phase is slow, nothing says whether
the milliseconds go to ``dmax_p`` sweeps, dict churn or JSON encoding.
:class:`SamplingProfiler` closes that gap with a background thread that
walks :func:`sys._current_frames` at a configurable rate (default
100 Hz) and attributes every sampled stack to the **innermost active
span** of the target thread, read lock-free from the recorder's
per-thread span stack (:meth:`repro.obs.recorder.Recorder.
active_span_stack`).

Design constraints:

* **standard library only** -- no native sampler, no signals; the GIL
  makes ``sys._current_frames()`` a consistent snapshot per thread;
* **bounded** -- at most ``max_stacks`` distinct (span, stack) keys
  accumulate; beyond that new stacks fold into a ``(truncated)`` row so
  a pathological workload cannot exhaust memory;
* **cheap when off** -- the only always-on cost is the recorder's
  span-stack push/pop (two list ops per span);
* **self-excluding** -- the sampler never samples its own thread, and
  samples whose thread is parked in a known waiter frame (``select``,
  ``wait``, ``accept`` ...) with no open span count as *idle*, not as
  unattributed work.

The profile document (schema ``repro.profile/1``) is JSON-safe and
merge-able across processes (workers ship theirs back next to the
``repro.obs.snapshot/1`` trace snapshot), and exports to collapsed-
stack text (FlameGraph / ``flamegraph.pl`` input) and speedscope JSON
(https://www.speedscope.app -- one sampled profile per process).

Typical in-process usage::

    from repro import obs
    from repro.obs.profile import SamplingProfiler, write_speedscope

    with obs.recording() as rec:
        with SamplingProfiler(hz=100, recorder=rec) as prof:
            Hummingbird(network, schedule).analyze()
    write_speedscope(prof.result(), "analyze.speedscope.json")
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.recorder import Recorder, active

__all__ = [
    "PROFILE_SCHEMA",
    "SamplingProfiler",
    "merge_profiles",
    "to_collapsed",
    "to_speedscope",
    "write_speedscope",
]

#: Schema identifier of a serialised profile document.
PROFILE_SCHEMA = "repro.profile/1"

#: Leaf function names that mean "this thread is parked, not working".
#: A sample whose thread has no open span *and* rests in one of these
#: is counted as idle instead of unattributed -- daemon accept loops
#: and sidecar servers would otherwise drown the profile in wait
#: frames.
_WAITER_LEAVES = frozenset(
    {
        "wait",
        "select",
        "poll",
        "epoll",
        "accept",
        "readline",
        "readinto",
        "recv",
        "recv_into",
        "sleep",
        "settimeout",
        "serve_forever",
        "get",
        "acquire",
        "_recv_msg",
        "kevent",
    }
)

#: Label used when a sample has no open span to attach to.
UNATTRIBUTED = "(no span)"

#: Synthetic stack row that absorbs samples past ``max_stacks``.
_TRUNCATED_KEY = ("(truncated)", ("(truncated)",))


def _frame_label(frame) -> str:
    """``func (pkg/module.py:lineno)`` -- short, stable, greppable."""
    code = frame.f_code
    filename = code.co_filename
    parts = filename.replace("\\", "/").rsplit("/", 2)
    short = "/".join(parts[-2:]) if len(parts) > 1 else filename
    return f"{code.co_name} ({short}:{frame.f_lineno})"


class SamplingProfiler:
    """Background-thread sampling profiler with span attribution.

    Parameters
    ----------
    hz:
        Target sampling rate (samples per second, default 100).
    recorder:
        The :class:`~repro.obs.recorder.Recorder` whose per-thread span
        stacks attribute samples; defaults to the process-wide recorder
        *at start time* (``None`` means samples are unattributed).
    max_stacks:
        Bound on distinct (span, stack) keys kept (default 10000).
    max_depth:
        Frames kept per sample, leaf-deepest truncated (default 128).
    threads:
        Optional explicit thread-id allowlist; default samples every
        thread except the profiler's own.
    """

    def __init__(
        self,
        hz: float = 100.0,
        recorder: Optional[Recorder] = None,
        max_stacks: int = 10_000,
        max_depth: int = 128,
        threads: Optional[Iterable[int]] = None,
    ) -> None:
        if hz <= 0:
            raise ValueError("hz must be > 0")
        self.hz = float(hz)
        self._recorder = recorder
        self.max_stacks = int(max_stacks)
        self.max_depth = int(max_depth)
        self._threads = frozenset(threads) if threads is not None else None
        #: (span_path, frames_root_first) -> sample count.
        self._counts: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples = 0
        self.attributed = 0
        self.idle = 0
        self.dropped_ticks = 0
        self.started_wall: Optional[float] = None
        self._started_perf: Optional[float] = None
        self.duration_s = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self._recorder is None:
            self._recorder = active()
        self.started_wall = time.time()
        self._started_perf = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Dict[str, object]:
        """Stop sampling; returns the final profile document."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
            if self._started_perf is not None:
                self.duration_s = time.perf_counter() - self._started_perf
        return self.result()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # sampling loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_ident = threading.get_ident()
        next_tick = time.perf_counter() + interval
        while not self._stop.is_set():
            delay = next_tick - time.perf_counter()
            if delay > 0:
                if self._stop.wait(delay):
                    break
            else:
                # Fell behind (sampling cost > interval): skip the
                # missed ticks instead of bursting to catch up.
                missed = int(-delay / interval)
                self.dropped_ticks += missed
                next_tick += missed * interval
            next_tick += interval
            self._sample_once(own_ident)

    def _sample_once(self, own_ident: int) -> None:
        recorder = self._recorder
        try:
            frames = sys._current_frames()
        except Exception:  # pragma: no cover -- interpreter teardown
            return
        for tid, frame in frames.items():
            if tid == own_ident:
                continue
            if self._threads is not None and tid not in self._threads:
                continue
            stack: List[str] = []
            depth = 0
            current = frame
            while current is not None and depth < self.max_depth:
                stack.append(_frame_label(current))
                current = current.f_back
                depth += 1
            if not stack:
                continue
            span_stack = (
                recorder.active_span_stack(tid)
                if recorder is not None
                else ()
            )
            if span_stack:
                span_path = ";".join(name for name, __ in span_stack)
            else:
                leaf = frame.f_code.co_name
                if leaf in _WAITER_LEAVES:
                    self.idle += 1
                    continue
                span_path = UNATTRIBUTED
            stack.reverse()  # root-first, collapsed-stack order
            key = (span_path, tuple(stack))
            with self._lock:
                self.samples += 1
                if span_stack:
                    self.attributed += 1
                count = self._counts.get(key)
                if count is not None:
                    self._counts[key] = count + 1
                elif len(self._counts) < self.max_stacks:
                    self._counts[key] = 1
                else:
                    self._counts[_TRUNCATED_KEY] = (
                        self._counts.get(_TRUNCATED_KEY, 0) + 1
                    )

    # ------------------------------------------------------------------
    # result
    # ------------------------------------------------------------------
    def result(self) -> Dict[str, object]:
        """The ``repro.profile/1`` document (callable while running)."""
        if self._started_perf is not None and self.running:
            duration = time.perf_counter() - self._started_perf
        else:
            duration = self.duration_s
        with self._lock:
            stacks = [
                {
                    "span": span_path,
                    "frames": list(frames),
                    "count": count,
                }
                for (span_path, frames), count in sorted(
                    self._counts.items(),
                    key=lambda item: -item[1],
                )
            ]
            samples = self.samples
            attributed = self.attributed
        return {
            "schema": PROFILE_SCHEMA,
            "pid": os.getpid(),
            "hz": self.hz,
            "started_wall": self.started_wall,
            "duration_s": round(duration, 6),
            "samples": samples,
            "attributed": attributed,
            "idle": self.idle,
            "dropped_ticks": self.dropped_ticks,
            "stacks": stacks,
        }


def _valid(doc: Optional[Dict[str, object]]) -> bool:
    return isinstance(doc, dict) and doc.get("schema") == PROFILE_SCHEMA


def merge_profiles(
    docs: Iterable[Optional[Dict[str, object]]],
) -> Dict[str, object]:
    """Fold ``repro.profile/1`` documents into one multi-process doc.

    Stacks from different processes stay distinct (each merged stack
    row carries its originating ``pid``), aggregates sum, and malformed
    or ``None`` entries are skipped -- a worker that failed to profile
    never poisons the merge.  The merged document is itself a valid
    ``repro.profile/1`` (with a ``pids`` list instead of implying one
    process).
    """
    merged: Dict[str, object] = {
        "schema": PROFILE_SCHEMA,
        "pid": os.getpid(),
        "pids": [],
        "hz": None,
        "started_wall": None,
        "duration_s": 0.0,
        "samples": 0,
        "attributed": 0,
        "idle": 0,
        "dropped_ticks": 0,
        "stacks": [],
    }
    pids: List[int] = []
    for doc in docs:
        if not _valid(doc):
            continue
        pid = doc.get("pid")
        pid = int(pid) if isinstance(pid, (int, float)) else None
        if pid is not None and pid not in pids:
            pids.append(pid)
        if merged["hz"] is None:
            merged["hz"] = doc.get("hz")
        started = doc.get("started_wall")
        if isinstance(started, (int, float)):
            first = merged["started_wall"]
            if first is None or started < first:
                merged["started_wall"] = started
        for field in ("samples", "attributed", "idle", "dropped_ticks"):
            try:
                merged[field] += int(doc.get(field) or 0)
            except (TypeError, ValueError):
                pass
        try:
            merged["duration_s"] = round(
                float(merged["duration_s"])
                + float(doc.get("duration_s") or 0.0),
                6,
            )
        except (TypeError, ValueError):
            pass
        for row in doc.get("stacks") or ():
            if not isinstance(row, dict):
                continue
            out = {
                "span": str(row.get("span", UNATTRIBUTED)),
                "frames": [str(f) for f in (row.get("frames") or ())],
                "count": int(row.get("count") or 0),
            }
            row_pid = row.get("pid", pid)
            if row_pid is not None:
                out["pid"] = int(row_pid)
            merged["stacks"].append(out)
    merged["pids"] = pids
    return merged


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def to_collapsed(doc: Dict[str, object]) -> str:
    """Collapsed-stack text: ``span;frame;frame count`` per line.

    The span path is prepended as synthetic frames, so a flamegraph
    groups samples by analysis phase before code location (the whole
    point of span attribution).  Directly consumable by
    ``flamegraph.pl`` or speedscope's collapsed importer.
    """
    lines = []
    for row in doc.get("stacks") or ():
        span_path = str(row.get("span", UNATTRIBUTED))
        frames = [str(f) for f in (row.get("frames") or ())]
        parts = [f"[span] {name}" for name in span_path.split(";")]
        parts.extend(frames)
        prefix = ""
        if "pid" in row:
            prefix = f"pid {row['pid']};"
        lines.append(f"{prefix}{';'.join(parts)} {row.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_speedscope(
    doc: Dict[str, object], name: str = "repro profile"
) -> Dict[str, object]:
    """Convert to speedscope's sampled-profile JSON file format.

    One speedscope profile per originating process (merged multi-pid
    documents render as side-by-side tabs), weights in seconds
    (``count / hz``), span names prepended as ``[span]`` frames.
    """
    hz = float(doc.get("hz") or 100.0)
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, str]] = []

    def _index(label: str) -> int:
        idx = frame_index.get(label)
        if idx is None:
            idx = frame_index[label] = len(frames)
            frames.append({"name": label})
        return idx

    by_pid: Dict[object, List[Dict[str, object]]] = {}
    for row in doc.get("stacks") or ():
        by_pid.setdefault(row.get("pid", doc.get("pid")), []).append(row)
    if not by_pid:
        # Zero samples (short run, idle process): still emit one empty
        # profile so the file opens in speedscope.
        by_pid[doc.get("pid")] = []
    profiles = []
    for pid in sorted(by_pid, key=lambda p: (p is None, p)):
        samples: List[List[int]] = []
        weights: List[float] = []
        total = 0.0
        for row in by_pid[pid]:
            span_path = str(row.get("span", UNATTRIBUTED))
            stack = [
                _index(f"[span] {part}")
                for part in span_path.split(";")
            ]
            stack.extend(
                _index(str(f)) for f in (row.get("frames") or ())
            )
            weight = int(row.get("count") or 0) / hz
            samples.append(stack)
            weights.append(weight)
            total += weight
        profiles.append(
            {
                "type": "sampled",
                "name": f"pid {pid}" if pid is not None else "profile",
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro.obs.profile",
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def write_speedscope(
    doc: Dict[str, object],
    path: Union[str, Path],
    name: Optional[str] = None,
) -> Path:
    """Write the speedscope export of ``doc`` to ``path``."""
    path = Path(path)
    path.write_text(
        json.dumps(
            to_speedscope(doc, name=name or path.stem),
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n"
    )
    return path
